"""Shared configuration for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper and
*prints* the rows/series the paper reports (run with ``-s`` to see them,
e.g. ``pytest benchmarks/ --benchmark-only -s``).  Set ``REPRO_BENCH_FULL=1``
for publication-sized sweeps (more replications, longer horizons).
"""

import os

import pytest


def full_mode() -> bool:
    """Whether to run publication-sized experiment configurations."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (whole simulation campaigns);
    repeating them for statistical timing would multiply runtimes
    without adding information, so one round is deliberate.
    """
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)
    return run
