"""Performance cost and dependability gain — the paper's "keeping the
performance cost low" claim and its stated follow-up quantification,
measured.

Prints (a) the per-scheme overhead table (blocking time, storage
traffic, protocol messages) on an identical fault-free workload, and
(b) model-vs-measured goodput under a hardware fault load, showing the
coordination's dependability gain over write-through.
"""

from repro.analysis.dependability import (
    FaultLoad,
    goodput,
    goodput_comparison,
    measure_goodput,
)
from repro.analysis.model import ModelParams
from repro.app.faults import HardwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.experiments.overhead import OverheadConfig, format_overhead, run_overhead
from repro.experiments.reporting import format_table
from repro.sim.rng import RngRegistry
from repro.tb.blocking import TbConfig


def test_overhead_comparison(bench_once):
    observations = bench_once(run_overhead, OverheadConfig())
    print()
    print(format_overhead(observations))
    coordinated = observations["coordinated"]
    mdcd_only = observations["mdcd-only"]
    naive = observations["naive"]
    # The paper's cost claims, as assertions:
    # blocking stays a small fraction of process time;
    assert coordinated.blocked_time_fraction < 0.01
    # the modified protocol checkpoints *less* often than the original
    # (Type-2 establishment eliminated);
    assert coordinated.volatile_saves_per_hour < mdcd_only.volatile_saves_per_hour
    # coordination adds no blocking beyond the TB protocol it adapts
    # (tau(1) exceeds tau(0) by only t_max + t_min);
    assert coordinated.blocked_time_fraction < 2.0 * naive.blocked_time_fraction
    # and no additional coordination messages exist at all — the
    # notification traffic is identical across schemes.
    assert coordinated.notifications_per_app_message == \
        mdcd_only.notifications_per_app_message
    assert coordinated.at_runs == mdcd_only.at_runs


def _measured_goodput(scheme: Scheme, horizon: float = 30_000.0) -> float:
    system = build_system(SystemConfig(
        scheme=scheme, seed=91, horizon=horizon,
        tb=TbConfig(interval=6.0),
        workload1=WorkloadConfig(internal_rate=0.001, external_rate=0.01,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.001, external_rate=0.002,
                                 step_rate=0.01, horizon=horizon),
        trace_enabled=False))
    rng = RngRegistry(91).stream("bench.goodput.crashes")
    t = rng.expovariate(1.0 / 400.0)
    while t < horizon * 0.95:
        system.inject_crash(HardwareFaultPlan(
            node_id=rng.choice(["N1a", "N1b", "N2"]), crash_at=t,
            repair_time=5.0))
        t += max(50.0, rng.expovariate(1.0 / 400.0))
    system.run()
    return measure_goodput(system, horizon)


def test_dependability_gain(bench_once):
    params = ModelParams(internal_rate1=0.001, external_rate1=0.01,
                         internal_rate2=0.001, external_rate2=0.002,
                         tb_interval=6.0)
    load = FaultLoad(hw_rate=1.0 / 400.0, repair_time=5.0)
    predicted = goodput_comparison(params, load)

    measured_co = bench_once(_measured_goodput, Scheme.COORDINATED)
    measured_wt = _measured_goodput(Scheme.WRITE_THROUGH)

    print()
    print(format_table(
        ["scheme", "model goodput", "measured goodput"],
        [["coordinated", f"{predicted['coordinated']:.4f}", f"{measured_co:.4f}"],
         ["write-through", f"{predicted['write-through']:.4f}", f"{measured_wt:.4f}"]],
        title="Dependability: surviving-work fraction under a hardware "
              "fault load (1 crash / ~400 s, 5 s repair)"))
    # Coordination loses visibly less work.
    assert measured_co > measured_wt
    assert predicted["coordinated"] > predicted["write-through"]
    # Model and measurement agree to a few percent.
    assert abs(measured_co - predicted["coordinated"]) < 0.05
    assert abs(measured_wt - predicted["write-through"]) < 0.08
