"""Warm-start prefix-resume speedup vs cold replay, with equivalence gates.

Measures, via :mod:`repro.experiments.warmstart_bench`:

* wall-clock of a late-divergence boundary audit campaign, cold vs
  warm (``run_audit(..., warmstart=True)``) — asserting the headline
  claim that prefix-resume is **at least 3x** faster;
* wall-clock of shrinking every violator the campaign found, cold vs
  warm — the same **3x** bar (shrink replays all share the violator's
  prefix, the warm-start best case);
* wall-clock of a dense near-boundary campaign run warm vs flock
  (``run_audit(..., flock=True)``) — asserting that suffix-forking off
  a resident template beats the prefix-resume path by **at least 3x**
  in its regime;
* that acceleration is invisible: identical violation sets, identical
  error sets, identical shrink results (schedule, replays, memo hits),
  identical full-run canonical trace digests on a schedule sample, and
  unchanged pinned Fig. 6 golden digests.

Runnable directly for the CI smoke artifact::

    PYTHONPATH=src python benchmarks/bench_warmstart.py --json BENCH_warmstart.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.warmstart_bench import (
    bench_record,
    format_record,
    write_record,
)

#: The acceptance bar: warm-start vs cold replay, campaign and shrink.
MIN_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_warmstart_speedup_and_equivalence(bench_once):
    record = bench_once(bench_record)
    print()
    print(format_record(record))
    campaign, shrink = record["campaign"], record["shrink"]
    flock = record["flock"]
    # The equivalence gates first: a fast wrong answer is worthless.
    assert campaign["violations_identical"], "warm campaign changed findings"
    assert campaign["errors_identical"], "warm campaign changed errors"
    assert campaign["violations"] > 0, "bench campaign found no violators"
    assert shrink["results_identical"], "warm shrink changed results"
    assert record["digests"]["identical"], record["digests"]["cases"]
    assert flock["violations_identical"], "flock campaign changed findings"
    assert flock["errors_identical"], "flock campaign changed errors"
    assert flock["digests_identical"], "flock traces diverged from cold"
    assert record["golden"]["identical"] is not False, "golden digests moved"
    # The acceptance criteria: >= 3x on campaign and shrink (warm vs
    # cold) and on the flock slice (fork vs warm).
    assert campaign["speedup"] >= MIN_SPEEDUP, campaign
    assert shrink["speedup"] >= MIN_SPEEDUP, shrink
    assert flock["speedup"] >= MIN_SPEEDUP, flock


# ----------------------------------------------------------------------
# CI smoke artifact
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the measurement record to PATH")
    parser.add_argument("--horizon", type=float, default=None,
                        help="campaign horizon override (seconds)")
    parser.add_argument("--golden", metavar="PATH", default=None,
                        help="pinned golden digests path override")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.golden is not None:
        kwargs["golden_path"] = args.golden
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))

    failed = False
    for phase in ("campaign", "shrink", "flock"):
        speedup = record[phase]["speedup"]
        if speedup < MIN_SPEEDUP:
            print(f"FAIL: {phase} speedup {speedup:.2f}x < {MIN_SPEEDUP}x",
                  file=sys.stderr)
            failed = True
    if not record["equivalent"]:
        print("FAIL: accelerated execution diverged from cold "
              "(findings, shrink results, or digests)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
