"""Figure 1 — the original MDCD checkpoint pattern.

Regenerates the paper's Fig. 1 semantics as a measured trace: Type-1 and
Type-2 volatile checkpoints strictly alternating on the high-confidence
processes, none on ``P1_act``, and prints the checkpoint timeline.
"""

from repro.experiments.scenarios import figure1_checkpoint_pattern
from repro.experiments.timeline import render_timeline


def test_fig1_checkpoint_pattern(bench_once):
    result = bench_once(figure1_checkpoint_pattern)
    print()
    print(result)
    for pid, seq in result.data.items():
        if pid == "system":
            continue
        print(f"  {pid}: {len(seq)} checkpoints: {' '.join(seq[:16])}"
              f"{' ...' if len(seq) > 16 else ''}")
    system = result.data["system"]
    print()
    print(render_timeline(system.trace,
                          [p.process_id for p in system.process_list()],
                          since=200.0, until=2200.0, width=100))
    assert result.passed, result.details
