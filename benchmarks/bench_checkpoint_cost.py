"""Checkpoint capture cost under the sectioned snapshot pipeline.

Measures, on the Fig. 7 default workload (coordinated scheme, the
middle of the swept internal-rate range), what one checkpoint costs:

* steady-state (fault-free) volatile/stable bytes per save, full
  pickling versus incremental (delta) capture — asserting the
  pipeline's headline claim that incremental capture cuts volatile
  checkpoint bytes by **at least 2x**;
* the same volume under every registered codec;
* that codec choice and capture mode are pure representation: a
  crash-recovery campaign's sample sequence is bit-for-bit identical
  across codecs, across full/incremental capture, and across serial
  vs ``workers=2`` execution.

Runnable directly for the CI smoke artifact::

    PYTHONPATH=src python benchmarks/bench_checkpoint_cost.py --json cost.json
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import json
import sys
from typing import Dict, List, Optional

from repro.coordination.scheme import Scheme, build_system
from repro.experiments.figure7 import Figure7Config, _crash_plans, _system_config
from repro.experiments.runner import run_campaign
from repro.snapshot import available_codecs

#: Fig. 7 default sweep midpoint and master seed.
RATE = 100
SEED = 2001
STEADY_HORIZON = 20_000.0
CAMPAIGN_HORIZON = 8_000.0


def _steady_config(codec: str, incremental: bool,
                   horizon: float = STEADY_HORIZON):
    base = _system_config(Figure7Config(), RATE, Scheme.COORDINATED, SEED)
    return dataclasses.replace(base, horizon=horizon,
                               volatile_codec=codec, stable_codec=codec,
                               incremental_snapshots=incremental)


def measure_capture(codec: str = "pickle", incremental: bool = True,
                    horizon: float = STEADY_HORIZON) -> Dict[str, object]:
    """Fault-free steady-state checkpoint volume for one configuration."""
    system = build_system(_steady_config(codec, incremental, horizon))
    system.run()
    processes = system.process_list()
    by_section: Dict[str, int] = {}
    for p in processes:
        for section, nbytes in p.node.volatile.bytes_by_section.items():
            by_section[section] = by_section.get(section, 0) + nbytes
    volatile_saves = sum(p.node.volatile.saves for p in processes)
    volatile_bytes = sum(p.node.volatile.bytes_written for p in processes)
    stable_saves = sum(p.node.stable.saves for p in processes)
    stable_bytes = sum(p.node.stable.bytes_written for p in processes)
    return {
        "codec": codec,
        "incremental": incremental,
        "volatile_saves": volatile_saves,
        "volatile_bytes": volatile_bytes,
        "volatile_bytes_per_save": volatile_bytes / max(volatile_saves, 1),
        "volatile_bytes_by_section": by_section,
        "stable_saves": stable_saves,
        "stable_bytes": stable_bytes,
        "stable_bytes_per_save": stable_bytes / max(stable_saves, 1),
    }


def _campaign_cell(codec: str, incremental: bool, seed: int) -> List[float]:
    """One replication of the determinism campaign: the Fig. 7 fault
    load at the bench point, returning rollback distances.  Module-level
    so ``workers=2`` runs can ship it to worker processes."""
    fig = dataclasses.replace(Figure7Config(), horizon=CAMPAIGN_HORIZON)
    config = dataclasses.replace(
        _system_config(fig, RATE, Scheme.COORDINATED, seed),
        volatile_codec=codec, stable_codec=codec,
        incremental_snapshots=incremental)
    system = build_system(config)
    for plan in _crash_plans(fig, seed):
        system.inject_crash(plan)
    system.run()
    assert system.hw_recovery is not None
    return system.hw_recovery.distances()


def campaign_samples(codec: str, incremental: bool,
                     workers: Optional[int] = None,
                     replications: int = 2) -> List[float]:
    """The campaign's full sample sequence for one configuration."""
    return run_campaign(
        "bench.checkpoint_cost", SEED, replications,
        functools.partial(_campaign_cell, codec, incremental),
        workers=workers).samples


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_incremental_capture_halves_volatile_bytes(bench_once):
    full = bench_once(measure_capture, "pickle", False)
    incremental = measure_capture("pickle", True)
    ratio = full["volatile_bytes"] / max(incremental["volatile_bytes"], 1)
    print()
    print(f"full:        {full['volatile_bytes_per_save']:.0f} B/save "
          f"over {full['volatile_saves']} saves")
    print(f"incremental: {incremental['volatile_bytes_per_save']:.0f} B/save "
          f"over {incremental['volatile_saves']} saves")
    print(f"reduction:   {ratio:.2f}x")
    # The acceptance criterion: >= 2x fewer steady-state volatile bytes.
    assert ratio >= 2.0
    # Identical capture schedule — the encoder only changes representation.
    assert full["volatile_saves"] == incremental["volatile_saves"]


def test_codec_choice_is_pure_representation():
    """The campaign sample sequence is bit-for-bit identical across
    codecs, capture modes, and serial vs 2-worker execution."""
    reference = campaign_samples("pickle", True)
    assert reference, "campaign produced no samples"
    assert campaign_samples("pickle", False) == reference
    for codec in available_codecs():
        assert campaign_samples(codec, True) == reference, codec
    assert campaign_samples("pickle", True, workers=2) == reference


# ----------------------------------------------------------------------
# CI smoke artifact
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the measurement record to PATH")
    parser.add_argument("--horizon", type=float, default=STEADY_HORIZON)
    args = parser.parse_args(argv)

    runs = [measure_capture(codec, incremental, args.horizon)
            for codec in available_codecs()
            for incremental in (False, True)]
    full = next(r for r in runs
                if r["codec"] == "pickle" and not r["incremental"])
    incr = next(r for r in runs
                if r["codec"] == "pickle" and r["incremental"])
    ratio = full["volatile_bytes"] / max(incr["volatile_bytes"], 1)

    reference = campaign_samples("pickle", True)
    deterministic = (campaign_samples("zpickle", True) == reference
                     and campaign_samples("pickle", False) == reference
                     and campaign_samples("pickle", True, workers=2)
                     == reference)

    record = {
        "workload": {"experiment": "figure7", "rate": RATE, "seed": SEED,
                     "scheme": Scheme.COORDINATED.value,
                     "horizon": args.horizon},
        "runs": runs,
        "volatile_reduction_ratio": ratio,
        "campaign_deterministic": deterministic,
    }
    text = json.dumps(record, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    if ratio < 2.0:
        print(f"FAIL: volatile reduction {ratio:.2f}x < 2x", file=sys.stderr)
        return 1
    if not deterministic:
        print("FAIL: codec choice perturbed the campaign sample sequence",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
