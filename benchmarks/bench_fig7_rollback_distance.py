"""Figure 7 — expected rollback distance: coordination vs write-through.

The headline quantitative claim: ``E[D_co]`` is significantly smaller
than ``E[D_wt]`` across the internal-message-rate sweep (log-scale gap).
Prints the measured series alongside the closed-form model, renders a
text log-plot, and asserts the shape: the coordinated scheme wins at
every x by a wide factor, and the measured means track the model.

``REPRO_BENCH_FULL=1`` runs the full 8-point sweep with more
replications; the default is a 4-point sweep sized for CI.
"""

from conftest import full_mode

from repro.experiments.figure7 import Figure7Config, format_figure7, run_figure7


def _config() -> Figure7Config:
    if full_mode():
        return Figure7Config()
    return Figure7Config(internal_rates=(60, 100, 140, 200),
                         horizon=30_000.0, replications=2)


def test_fig7_rollback_distance(bench_once):
    config = _config()
    points = bench_once(run_figure7, config)
    print()
    print(format_figure7(points))
    for point in points:
        # Who wins: coordination, at every swept rate, by a wide margin.
        assert point.e_d_co < point.e_d_wt, point
        assert point.measured_factor > 3.0, point
        # Measured means track the closed-form model.  The band is wide
        # because E[D_co] is a rare-event-dominated mean (a crash must
        # land inside a dirty window to sample the large term).
        assert 0.25 * point.model_co < point.e_d_co < 4.0 * point.model_co, point
        assert 0.5 * point.model_wt < point.e_d_wt < 2.0 * point.model_wt, point
    # The coordinated distance grows with the internal rate (the dirty
    # fraction grows), while write-through stays roughly flat.
    assert points[-1].model_co > points[0].model_co
