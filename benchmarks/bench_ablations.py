"""Ablations — removing each load-bearing design choice.

Not in the paper; DESIGN.md calls these out.  Each ablation prints a
table and asserts the mechanism's measured value:

* the mid-blocking swap prevents Fig. 4(b) line corruption;
* the ``Ndc`` gate prevents wrong-epoch knowledge application;
* the blocking period prevents consistency violations;
* acceptance-test coverage below 1.0 lets contamination hide behind a
  clean dirty bit;
* the Fig. 7 gap erodes as the dirty fraction approaches 1 (regime
  boundary of the headline result).
"""

from conftest import full_mode

from repro.experiments.ablations import (
    ablate_at_coverage,
    ablate_blocking,
    ablate_dirty_fraction,
    ablate_interval,
    ablate_ndc_gating,
    ablate_swap,
    format_ablation,
)


def test_ablation_swap(bench_once):
    rows = bench_once(ablate_swap, 40 if full_mode() else 12)
    print()
    print(format_ablation("Ablation 1 — mid-blocking content swap", rows))
    off = next(r for r in rows if r.label == "swap disabled")
    on = next(r for r in rows if r.label == "swap enabled")
    assert off.metrics["fig4b windows"] > 0
    assert off.metrics["invalid lines"] > 0
    assert on.metrics["invalid lines"] == 0


def test_ablation_ndc_gating(bench_once):
    rows = bench_once(ablate_ndc_gating, 4 if full_mode() else 2, 2000.0)
    print()
    print(format_ablation("Ablation 2 — Ndc gating of passed-AT handling", rows))
    on = next(r for r in rows if "on" in r.label)
    off = next(r for r in rows if "off" in r.label)
    assert on.metrics["violations"] == "none"
    assert off.metrics["violations"] != "none"
    assert on.metrics["gated (mismatched-epoch) notifications"] > 0


def test_ablation_blocking(bench_once):
    rows = bench_once(ablate_blocking, 4 if full_mode() else 2, 1000.0)
    print()
    print(format_ablation("Ablation 3 — blocking period", rows))
    on = next(r for r in rows if "on" in r.label)
    off = next(r for r in rows if "off" in r.label)
    assert on.metrics["violations"] == "none"
    assert off.metrics["violations"] != "none"


def test_ablation_at_coverage(bench_once):
    coverages = (1.0, 0.9, 0.6, 0.3) if full_mode() else (1.0, 0.5)
    rows = bench_once(ablate_at_coverage, coverages, 4, 3000.0)
    print()
    print(format_ablation("Ablation 4 — acceptance-test coverage", rows))
    perfect = rows[0]
    weakest = rows[-1]
    key = "undetected contamination in believed-clean state"
    assert perfect.metrics[key] == 0
    assert weakest.metrics[key] > 0


def test_ablation_dirty_fraction(bench_once):
    mults = (1, 5, 20, 80, 300) if full_mode() else (1, 20, 300)
    rows = bench_once(ablate_dirty_fraction, mults)
    print()
    print(format_ablation("Ablation 5 — dirty-fraction regime (Fig. 7 boundary)",
                          rows))
    factors = [r.metrics["measured wt/co"] for r in rows]
    # The gap collapses monotonically toward ~1 as f_d -> 1.
    assert factors[0] > 3.0
    assert factors[-1] < factors[0] / 2.0
    assert factors[-1] < 2.5


def test_ablation_interval(bench_once):
    rows = bench_once(ablate_interval,
                      (2.0, 6.0, 12.0, 24.0) if full_mode() else (2.0, 24.0))
    print()
    print(format_ablation("Ablation 6 — checkpoint interval (Delta/2 trade)",
                          rows))
    co = [r.metrics["E[D_co]"] for r in rows]
    wt = [r.metrics["E[D_wt]"] for r in rows]
    # E[D_co] grows with the interval; write-through is interval-blind.
    assert co[-1] > co[0]
    assert wt[0] == wt[-1]
    # The model's Delta/2 slope: widening Delta by 22 s should add
    # roughly 11 s (loose band for the rare-event estimator).
    assert 4.0 < (co[-1] - co[0]) < 25.0
