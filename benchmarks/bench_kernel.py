"""Discrete-event kernel throughput vs the pinned pre-optimization kernel.

Measures, via :mod:`repro.experiments.kernel_bench`:

* events/sec on a timer-like **churn** microbench and a lazy-deletion
  **cancel storm**, for the current kernel (pooled and unpooled)
  against a frozen copy of the seed implementation — asserting the
  headline claim that the slotted-event kernel is **at least 1.5x**
  faster on churn;
* wall-clock of one Fig. 7 replication at the default bench point;
* that the kernel representation knobs are pure: a crash-recovery
  campaign's sample sequence is bit-for-bit identical with tracing
  enabled/disabled, event pooling enabled/disabled, and serial vs
  ``workers=2`` execution.

Runnable directly for the CI smoke artifact::

    PYTHONPATH=src python benchmarks/bench_kernel.py --json BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.kernel_bench import (
    CHURN_EVENTS,
    STORM_EVENTS,
    bench_record,
    check_determinism,
    churn_workload,
    format_record,
    measure_microbench,
    write_record,
)

#: The acceptance bar: current kernel vs the pinned legacy kernel on
#: the churn microbench.
MIN_SPEEDUP = 1.5


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_kernel_speedup_over_legacy(bench_once):
    current = bench_once(measure_microbench, churn_workload, "current",
                         CHURN_EVENTS)
    legacy = measure_microbench(churn_workload, "legacy", CHURN_EVENTS)
    speedup = current["events_per_sec"] / legacy["events_per_sec"]
    print()
    print(f"legacy:  {legacy['events_per_sec']:>10,.0f} events/s")
    print(f"current: {current['events_per_sec']:>10,.0f} events/s")
    print(f"speedup: {speedup:.2f}x")
    # Same callback sequence, or the timing comparison is meaningless.
    assert current["events_executed"] == legacy["events_executed"]
    # The acceptance criterion: >= 1.5x events/sec over the seed kernel.
    assert speedup >= MIN_SPEEDUP


def test_kernel_knobs_are_pure_representation():
    """Tracing, pooling, and sharding change nothing observable: the
    campaign sample sequence is bit-for-bit identical."""
    verdict = check_determinism()
    assert verdict["all"], verdict


# ----------------------------------------------------------------------
# CI smoke artifact
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the measurement record to PATH")
    parser.add_argument("--events", type=int, default=CHURN_EVENTS,
                        help="microbench event count")
    parser.add_argument("--horizon", type=float, default=None,
                        help="campaign horizon override (seconds)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    kwargs = dict(churn_events=args.events,
                  storm_events=min(args.events, STORM_EVENTS),
                  repeats=args.repeats)
    if args.horizon is not None:
        kwargs["campaign_horizon"] = args.horizon
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))

    speedup = record["microbench"]["churn"]["speedup_current_vs_legacy"]
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: churn speedup {speedup:.2f}x < {MIN_SPEEDUP}x",
              file=sys.stderr)
        return 1
    if not record["determinism"]["all"]:
        print("FAIL: kernel knobs perturbed the campaign sample sequence",
              file=sys.stderr)
        return 1
    if not all(bench["identical_execution"]
               for bench in record["microbench"].values()):
        print("FAIL: kernels executed different event sequences",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
