"""Serial vs sharded-parallel campaign execution.

The `repro.parallel` subsystem promises two things at once: a wall-clock
speedup from sharding replications over worker processes, and *bit-level
agreement* with serial execution — the same replication seed list, the
same sample multiset (in fact the same sample sequence), and a mean
equal up to floating-point reassociation in the parallel Welford merge.

This bench runs one real campaign — the Figure 7 coordinated-scheme
workload with Poisson crash injection — both ways and measures both
claims.  The speedup assertion only arms when the machine actually has
the CPUs to deliver it (>= 4 usable cores); the determinism assertions
always arm.
"""

import functools
import math
import time

from conftest import full_mode

from repro.coordination.scheme import Scheme
from repro.experiments.figure7 import Figure7Config, _run_one
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_campaign
from repro.parallel.pool import default_worker_count
from repro.parallel.progress import ProgressReporter

WORKERS = 4
RATE = 100


def _campaign_config():
    replications = 128 if full_mode() else 64
    return Figure7Config(horizon=4_000.0, replications=replications,
                         seed=2026), replications


def test_parallel_speedup(bench_once):
    config, replications = _campaign_config()
    run_one = functools.partial(_run_one, config, RATE, Scheme.COORDINATED)

    started = time.perf_counter()
    serial = run_campaign("speedup", config.seed, replications, run_one)
    serial_wall = time.perf_counter() - started

    progress = ProgressReporter("speedup", enabled=False)
    started = time.perf_counter()
    parallel = bench_once(
        run_campaign, "speedup", config.seed, replications, run_one,
        workers=WORKERS, progress=progress)
    parallel_wall = time.perf_counter() - started

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    cpus = default_worker_count()
    telemetry = progress.snapshot()
    print()
    print(format_table(
        ["replications", "samples", "workers", "usable cpus",
         "serial s", "parallel s", "speedup", "samples/s (parallel)"],
        [[replications, len(parallel.samples), WORKERS, cpus,
          f"{serial_wall:.2f}", f"{parallel_wall:.2f}",
          f"{speedup:.2f}x", f"{telemetry['samples_per_sec']:.0f}"]],
        title="Parallel campaign speedup — Figure 7 coordinated workload"))

    # Determinism: same sequence of samples, same count, same extrema;
    # mean equal up to reassociation of the parallel Welford merge.
    assert parallel.samples == serial.samples
    assert sorted(parallel.samples) == sorted(serial.samples)
    assert parallel.stat.count == serial.stat.count == len(serial.samples)
    assert math.isclose(parallel.mean, serial.mean,
                        rel_tol=1e-12, abs_tol=1e-12)
    assert math.isclose(parallel.stat.variance, serial.stat.variance,
                        rel_tol=1e-9, abs_tol=1e-9)
    assert parallel.stat.minimum == serial.stat.minimum
    assert parallel.stat.maximum == serial.stat.maximum

    assert telemetry["replications_done"] == replications
    assert telemetry["shards_done"] == telemetry["total_shards"] > 0

    if cpus >= WORKERS:
        assert speedup >= 1.5, (
            f"expected >= 1.5x at {WORKERS} workers on {cpus} CPUs, "
            f"measured {speedup:.2f}x")
    else:
        print(f"(speedup assertion skipped: only {cpus} usable CPU(s); "
              f"measured {speedup:.2f}x)")
