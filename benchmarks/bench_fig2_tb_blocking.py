"""Figure 2 — consistency/recoverability violations of time-based
checkpointing without its two mechanisms.

Regenerates the paper's Fig. 2 as measured violation counts over every
stable line of a two-process system: without blocking and without
unacknowledged-message saving both properties break; the full
Neves-Fuchs protocol is clean.
"""

from repro.experiments.scenarios import figure2_tb_blocking


def test_fig2_tb_blocking(bench_once):
    result = bench_once(figure2_tb_blocking)
    print()
    print(result)
    for label, (lines, violations) in result.data.items():
        print(f"  {label:14s}: {lines} lines, violations: {violations or 'none'}")
    assert result.passed, result.details
