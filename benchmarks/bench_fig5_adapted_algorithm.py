"""Figure 5 — the adapted TB checkpointing algorithm (createCKPT).

Figure 5 *is* the algorithm, so this bench exercises it directly and
verifies its quantitative behaviour: every realized blocking period lies
within the ``tau(b) = delta + 2*rho*t + Tm(b)`` bounds for its dirty-bit
value, the ``write_disk`` contents follow the dirty bit, and the
establishment throughput (a cost the paper argues stays low) is
reported.
"""

from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig, blocking_period


def _run_adapted(horizon: float = 6000.0):
    config = SystemConfig(
        scheme=Scheme.COORDINATED, seed=23, horizon=horizon,
        tb=TbConfig(interval=15.0),
        workload1=WorkloadConfig(internal_rate=0.1, external_rate=0.02,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.05, external_rate=0.02,
                                 step_rate=0.01, horizon=horizon))
    system = build_system(config)
    system.run()
    return system


def test_fig5_createckpt_behaviour(bench_once):
    system = bench_once(_run_adapted)
    config = system.config
    write_latency = system.peer.node.stable.write_latency
    starts = system.trace.records("tb.establish.start")
    dones = system.trace.records("tb.establish.done")
    assert starts and dones
    out_of_bounds = 0
    for rec in starts:
        # tau(b) evaluated at zero drift elapsed is a lower bound; at
        # the establishment's wall time (elapsed can never exceed it)
        # an upper bound.
        lower = blocking_period(rec.data["dirty"], config.clock, 0.0,
                                config.network, floor=write_latency)
        upper = blocking_period(rec.data["dirty"], config.clock, rec.time,
                                config.network, floor=write_latency)
        if not (lower - 1e-9 <= rec.data["blocking"] <= upper + 1e-9):
            out_of_bounds += 1
    contents = {}
    for rec in dones:
        contents[rec.data["content"]] = contents.get(rec.data["content"], 0) + 1
    rate = len(dones) / config.horizon
    print()
    print(f"Figure 5 (adapted createCKPT): {len(dones)} establishments "
          f"({rate * 3600:.0f}/hour across 3 processes), contents {contents}, "
          f"blocking periods outside tau(b) bounds: {out_of_bounds}")
    assert out_of_bounds == 0
    assert contents.get("current-state", 0) > 0
    assert contents.get("volatile-copy", 0) > 0
