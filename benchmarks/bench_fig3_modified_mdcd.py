"""Figure 3 — the modified MDCD checkpoint pattern.

Regenerates the paper's Fig. 3: pseudo checkpoints appear on ``P1_act``
(one per validation-to-first-internal-send transition), Type-2
establishment is eliminated everywhere.
"""

from repro.experiments.scenarios import figure3_modified_pattern
from repro.experiments.timeline import render_timeline
from repro.types import ProcessId, Role


def test_fig3_modified_pattern(bench_once):
    result = bench_once(figure3_modified_pattern)
    print()
    print(result)
    for pid, seq in result.data.items():
        if pid == "system":
            continue
        print(f"  {pid}: {len(seq)} checkpoints: {' '.join(seq[:16])}"
              f"{' ...' if len(seq) > 16 else ''}")
    system = result.data["system"]
    print()
    print(render_timeline(system.trace,
                          [p.process_id for p in system.process_list()],
                          since=200.0, until=2200.0, width=100,
                          pseudo_for=ProcessId(Role.ACTIVE_1.value)))
    assert result.passed, result.details
