"""Substrate microbenchmarks (not in the paper).

The protocol results are only as trustworthy as the simulator beneath
them, and campaign runtimes are dominated by three hot paths: the event
kernel, message transport, and checkpoint capture (pickling).  These
benches keep their costs visible so experiment configurations can be
sized sensibly.
"""

from repro.app.workload import WorkloadConfig
from repro.checkpoint import Checkpoint
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.types import CheckpointKind, ProcessId


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run cost of the event kernel."""
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule_after(0.001, tick, priority=EventPriority.ACTION)

        sim.schedule_after(0.001, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 20_000


def test_checkpoint_capture_cost(benchmark):
    """Pickling cost of a representative process snapshot."""
    system = build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=5, horizon=2000.0,
        workload1=WorkloadConfig(internal_rate=0.1, external_rate=0.01,
                                 step_rate=0.02, horizon=2000.0),
        workload2=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=2000.0),
        trace_enabled=False))
    system.run()
    peer = system.peer

    checkpoint = benchmark(peer.capture_checkpoint, CheckpointKind.TYPE_1)
    assert isinstance(checkpoint, Checkpoint)
    assert checkpoint.process_id == ProcessId("P2")
    assert checkpoint.size_bytes > 0


def test_coordinated_simulation_rate(benchmark):
    """End-to-end simulated-seconds-per-wall-second of a coordinated
    system (the figure-of-merit for sizing Figure 7 campaigns)."""
    def run():
        system = build_system(SystemConfig(
            scheme=Scheme.COORDINATED, seed=9, horizon=3000.0,
            trace_enabled=False))
        system.run()
        return system.sim.events_executed

    events = benchmark(run)
    assert events > 100
