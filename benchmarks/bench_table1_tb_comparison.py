"""Table 1 — original vs adapted TB protocol, measured attribute by
attribute on identical workloads.

Prints the paper's comparison table with theoretical formulas and
measured values side by side, and asserts its qualitative content:
dirty-process blocking is longer by ``t_max + t_min``; the adapted
protocol writes volatile copies for dirty processes while the original
always writes the current state; the original blocks "passed AT"
notifications while the adapted protocol lets them through.
"""

from repro.experiments.table1 import Table1Config, format_table1, run_table1


def test_table1_comparison(bench_once):
    config = Table1Config()
    observations = bench_once(run_table1, config)
    print()
    print(format_table1(observations, config))
    orig, adap = observations["original"], observations["adapted"]

    # Original TB: confidence-oblivious — one blocking length, one
    # content kind, everything (including notifications) blocked.
    assert orig.blocking_dirty.count == 0
    assert set(orig.contents) == {"current-state"}
    assert orig.blocked_kinds.get("passed_AT", 0) > 0

    # Adapted TB: dirty processes block ~ t_max + t_min longer and get
    # volatile-copy contents; notifications are never buffered.
    assert adap.blocking_dirty.count > 0 and adap.blocking_clean.count > 0
    expected_gap = config.network.t_max + config.network.t_min
    measured_gap = adap.blocking_dirty.mean - adap.blocking_clean.mean
    assert abs(measured_gap - expected_gap) < 0.25 * expected_gap
    assert adap.contents.get("volatile-copy", 0) > 0
    assert adap.blocked_kinds.get("passed_AT", 0) == 0
    # And the coordinated stable line satisfies the validity-concerned
    # properties.
    assert not adap.line_violations
