"""Figure 4 — the consequences of naively combining MDCD with TB.

(a) the naive combination loses P2's non-contaminated state: after a
hardware fault, a subsequently detected software error cannot be
recovered (the coordinated scheme recovers the identical fault
sequence cleanly);

(b) without the adapted protocol's mid-blocking content swap, an
in-transit "passed AT" notification leaves the stable line invalid.
"""

from repro.experiments.scenarios import (
    figure4a_naive_loss,
    figure4b_in_transit_notification,
)


def test_fig4a_naive_loses_clean_state(bench_once):
    result = bench_once(figure4a_naive_loss)
    print()
    print(result)
    assert result.passed, result.details


def test_fig4b_in_transit_notification(bench_once):
    result = bench_once(figure4b_in_transit_notification)
    print()
    print(result)
    assert result.passed, result.details
