"""Figure 6 — stable-checkpoint establishment under protocol
coordination.

Audits every stable line a coordinated run establishes (validity-
concerned consistency + recoverability + ground truth) and tallies the
content cases of the paper's Fig. 6: current state (clean process),
volatile copy (dirty process), swapped-to-current (confidence change
mid-blocking).
"""

from repro.experiments.scenarios import figure6_coordination_cases


def test_fig6_all_lines_valid(bench_once):
    result = bench_once(figure6_coordination_cases)
    print()
    print(result)
    print(f"  content cases: {result.data['contents']}")
    assert result.passed, result.details
