"""Scaling the coordination beyond the paper's three-process model.

The paper positions MDCD as "a general-purpose low-cost software fault
tolerance technique for distributed systems" whose architectural
restrictions its follow-up work removes.  This bench sweeps the
generalized system over the peer count ``K`` and measures that the
coordination's guarantees and costs survive the scale-up: every audited
stable line stays valid, hardware rollback distance stays set by the
checkpoint interval + contamination span (not by ``K``), and blocking
overhead stays negligible.
"""

import time

from repro.analysis import check_system_line
from repro.analysis.global_state import stable_line
from repro.app.faults import HardwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.general import GeneralSystemConfig, build_general_system
from repro.experiments.reporting import format_table
from repro.parallel.pool import default_worker_count, parallel_map
from repro.sim.monitor import RunningStat
from repro.tb.blocking import TbConfig


def run_scale_point(n_peers: int, horizon: float = 4000.0, seed: int = 17):
    config = GeneralSystemConfig(
        n_peers=n_peers, seed=seed, horizon=horizon,
        tb=TbConfig(interval=30.0),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        workload_peer=WorkloadConfig(internal_rate=0.04, external_rate=0.01,
                                     step_rate=0.02, horizon=horizon),
        stable_history=300)
    system = build_general_system(config)
    for k, at in enumerate((1200.0, 2400.0, 3600.0)):
        node = f"N{(k % n_peers) + 2}"
        system.inject_crash(HardwareFaultPlan(node_id=node, crash_at=at,
                                              repair_time=1.0))
    system.run()

    distances = RunningStat()
    for d in system.hw_recovery.distances():
        distances.add(d)
    blocked = sum(rec.data["length"]
                  for rec in system.trace.records("blocking.start"))
    blocked_fraction = blocked / (horizon * len(system.process_list()))
    common = None
    for proc in system.process_list():
        epochs = set(proc.node.stable.epochs(proc.process_id))
        common = epochs if common is None else common & epochs
    lines = dirty_lines = 0
    for epoch in sorted(common or ()):
        line = stable_line(system, epoch=epoch)
        if len(line) < len(system.process_list()):
            continue
        lines += 1
        if check_system_line(line):
            dirty_lines += 1
    end_clean = all(not p.component.state.corrupt
                    for p in system.process_list())
    return {
        "K": n_peers,
        "processes": len(system.process_list()),
        "mean E[D] (work-s)": round(distances.mean, 1),
        "blocked time": f"{blocked_fraction * 100:.3f}%",
        "lines audited": lines,
        "lines with strict-view flags": dirty_lines,
        "end states clean": end_clean,
    }


def test_general_scaling(bench_once):
    sweep = (1, 2, 4, 8)
    started = time.perf_counter()
    points = [run_scale_point(k) for k in sweep]
    serial_wall = time.perf_counter() - started

    # The K-sweep re-run through the parallel map must reproduce the
    # serial sweep exactly (same seeds, same deterministic simulator)
    # while recording the wall-clock both ways.
    started = time.perf_counter()
    parallel_points = parallel_map(run_scale_point, list(sweep), workers=2)
    parallel_wall = time.perf_counter() - started
    assert parallel_points == points
    print()
    print(format_table(
        ["sweep", "serial s", "parallel s (2 workers)", "usable cpus"],
        [[str(sweep), f"{serial_wall:.2f}", f"{parallel_wall:.2f}",
          default_worker_count()]],
        title="K-sweep wall time — serial vs parallel_map"))

    bench_once(run_scale_point, 4)
    print()
    print(format_table(
        list(points[0].keys()), [list(p.values()) for p in points],
        title="Coordination at scale — K peers + guarded pair "
              "(3 crashes per run)"))
    print("\nStrict per-line view agreement under *overlapping global "
          "rollbacks* is an open corner of the K-peer generalization "
          "(the paper's extension [5] is unpublished): a dirty process's "
          "replay after a global rollback consumes post-recovery traffic, "
          "so regenerated messages can differ from the originals its "
          "peers retained.  Ground truth stays clean and recovery "
          "completes in every run; the flags are reported, not hidden.")
    for point in points:
        assert point["end states clean"]
        assert point["lines audited"] > 30
        # Rollback cost is set by the interval + contamination span, not
        # by the system size.
        assert point["mean E[D] (work-s)"] < 200.0
        assert float(point["blocked time"].rstrip("%")) < 1.0
        # Strict-view flags stay confined to a small fraction of lines.
        assert point["lines with strict-view flags"] <= 0.1 * point["lines audited"]
    # K = 1 is exactly the paper's model: fully strict even under crashes.
    assert points[0]["lines with strict-view flags"] == 0
    # Costs stay in the same band as the system grows.
    assert points[-1]["mean E[D] (work-s)"] < 4.0 * max(points[0]["mean E[D] (work-s)"], 25.0)
