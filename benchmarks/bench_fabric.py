"""Fabric campaign scaling vs serial execution, with equivalence gates.

Measures, via :mod:`repro.experiments.fabric_bench`:

* wall-clock of a cold audit campaign run serially against the same
  campaign dispatched over fabric workers — asserting the headline
  claim of **at least 2.5x** on a host with >= 4 usable CPUs (on
  smaller boxes the determinism gates still arm and the measured
  ratio is printed, not asserted);
* that distribution is invisible: the assembled result list is
  bit-for-bit identical to serial, down to a canonical sha256 digest
  of every result dict;
* the content-addressed store's transfer economics: across two
  consecutive flock campaigns against a worker with a private CAS
  directory, each warm-start image set crosses the wire exactly once
  — the second campaign ships nothing and hits the CAS for every set.

Runnable directly for the CI smoke artifact::

    PYTHONPATH=src python benchmarks/bench_fabric.py --json BENCH_fabric.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from conftest import full_mode

from repro.experiments.fabric_bench import (
    bench_record,
    format_record,
    write_record,
)
from repro.parallel.pool import default_worker_count

#: The acceptance bar: fabric vs serial on a host that can deliver it.
MIN_SPEEDUP = 2.5

#: Workers the gate is stated for (and the CPU floor that arms it).
WORKERS = 4


def _sizes():
    return (64, 600.0) if full_mode() else (32, 400.0)


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_fabric_speedup_and_equivalence(bench_once):
    schedules, horizon = _sizes()
    cpus = default_worker_count()
    workers = WORKERS if cpus >= WORKERS else None
    record = bench_once(bench_record, schedules=schedules,
                        horizon=horizon, workers=workers)
    print()
    print(format_record(record))
    campaign, transfers = record["campaign"], record["transfers"]
    # The equivalence gates first: a fast wrong answer is worthless.
    assert campaign["identical"], "fabric results diverged from serial"
    assert campaign["digests_identical"], (
        campaign["digest_serial"], campaign["digest_fabric"])
    assert campaign["local_runs"] == 0, "healthy workers should do all work"
    assert transfers["identical"], "flock fabric diverged from serial flock"
    # Transfer economics: each image set crosses the wire exactly once.
    assert transfers["first_transfers"] == transfers["image_sets"]
    assert transfers["second_transfers"] == 0, \
        "second campaign re-shipped image sets"
    assert transfers["second_cas_hits"] >= transfers["image_sets"]
    assert transfers["sets_reexported"] == 0, \
        "supervisor rebuilt image sets it had already exported"
    # The speedup floor only arms when the CPUs exist to deliver it.
    if cpus >= WORKERS:
        assert campaign["speedup"] >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x at {record['workers']} workers on "
            f"{cpus} CPUs, measured {campaign['speedup']:.2f}x")
    else:
        print(f"(speedup assertion skipped: only {cpus} usable CPU(s); "
              f"measured {campaign['speedup']:.2f}x)")


# ----------------------------------------------------------------------
# CI smoke artifact
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the measurement record to PATH")
    parser.add_argument("--schedules", type=int, default=None,
                        help="bench campaign schedule count override")
    parser.add_argument("--horizon", type=float, default=None,
                        help="bench campaign horizon override (seconds)")
    parser.add_argument("--workers", type=int, default=None,
                        help="fabric worker count override")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.schedules is not None:
        kwargs["schedules"] = args.schedules
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.workers is not None:
        kwargs["workers"] = args.workers
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))

    failed = False
    if not record["equivalent"]:
        print("FAIL: fabric execution diverged from serial "
              "(results, digests, or flock shard)", file=sys.stderr)
        failed = True
    if not record["transfers"]["transfer_once"]:
        print("FAIL: image sets did not transfer exactly once",
              file=sys.stderr)
        failed = True
    cpus = default_worker_count()
    speedup = record["campaign"]["speedup"]
    if cpus >= WORKERS and record["workers"] >= WORKERS:
        if speedup < MIN_SPEEDUP:
            print(f"FAIL: campaign speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
                  f"on {cpus} CPUs", file=sys.stderr)
            failed = True
    else:
        print(f"(speedup floor skipped: {cpus} usable CPU(s), "
              f"{record['workers']} workers; measured {speedup:.2f}x)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
