"""Unit tests for the generalized engines' provenance machinery."""

import pytest

from repro.app.workload import Action, ActionKind, WorkloadConfig
from repro.general import GeneralSystemConfig, build_general_system
from repro.messages.message import Message, passed_at_notification
from repro.tb.blocking import TbConfig
from repro.types import CheckpointKind, MessageKind, ProcessId


def action(kind=ActionKind.SEND_INTERNAL, stimulus=0, index=10_000_000):
    return Action(index=index, kind=kind, gap=0.0, stimulus=stimulus)


@pytest.fixture
def quiet_system():
    """A manually-driven K=3 general system (negligible own workload)."""
    horizon = 1000.0
    config = GeneralSystemConfig(
        n_peers=3, seed=2, horizon=horizon,
        tb=TbConfig(interval=10_000.0),
        workload1=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.001, horizon=horizon),
        workload_peer=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                     step_rate=0.001, horizon=horizon))
    system = build_general_system(config)
    system.start()
    return system


def settle(system, dt=1.0):
    system.sim.run(until=system.sim.now + dt)


def peer(system, name):
    return next(p for p in system.peers if str(p.process_id) == name)


def send_active_to(system, peer_index, count=1):
    """Route P1_act internal sends to a specific peer via stimulus."""
    for _ in range(count):
        system.active.software.on_send_internal(
            action(stimulus=peer_index))
        settle(system)


class TestTaintPropagation:
    def test_direct_contamination_sets_taint_to_sn(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0)  # sn=1 -> P2
        p2 = peer(system, "P2")
        assert p2.mdcd.dirty_bit == 1
        assert p2.mdcd.taint_sn == 1

    def test_transitive_contamination_carries_taint(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0)  # P2 tainted at sn=1
        p2, p3 = peer(system, "P2"), peer(system, "P3")
        # Odd stimulus routes P2's send to another peer; stimulus//2
        # selects among its other peers.
        p2.software.on_send_internal(action(stimulus=1))
        settle(system)
        contaminated = [p for p in (p3, peer(system, "P4"))
                        if p.mdcd.dirty_bit == 1]
        assert len(contaminated) == 1
        assert contaminated[0].mdcd.taint_sn == 1

    def test_taint_is_monotone_max(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0, count=3)  # sns 1..3 all to P2
        assert peer(system, "P2").mdcd.taint_sn == 3


class TestCoverageCleaning:
    def test_covering_validation_cleans(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0)
        p2 = peer(system, "P2")
        note = passed_at_notification(system.active.process_id,
                                      p2.process_id, msg_sn=1, ndc=0)
        p2.dispatch(note)
        assert p2.mdcd.dirty_bit == 0
        assert p2.mdcd.taint_sn is None

    def test_uncovered_validation_does_not_clean(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0, count=2)  # taint = 2
        p2 = peer(system, "P2")
        note = passed_at_notification(system.active.process_id,
                                      p2.process_id, msg_sn=1, ndc=0)
        p2.dispatch(note)
        assert p2.mdcd.dirty_bit == 1
        assert p2.counters.get("passed_at.uncovered") == 1

    def test_third_party_validation_cannot_clean_unrelated_taint(self, quiet_system):
        """The original hypothesis finding: X's AT must not clean Y's
        contamination arriving through a different slice."""
        system = quiet_system
        send_active_to(system, 0, count=2)   # P2 tainted at sn<=2
        send_active_to(system, 1)            # P3 tainted at sn=3
        p2, p3 = peer(system, "P2"), peer(system, "P3")
        # P2's AT certifies only up to its own record (sn=2).
        p2.software.on_send_external(action(kind=ActionKind.SEND_EXTERNAL))
        settle(system)
        assert p2.mdcd.dirty_bit == 0
        assert p3.mdcd.dirty_bit == 1      # sn=3 not covered by bound 2
        assert p3.mdcd.taint_sn == 3

    def test_own_at_certifies_whole_frontier(self, quiet_system):
        system = quiet_system
        send_active_to(system, 0, count=2)
        p2 = peer(system, "P2")
        p2.software.on_send_external(action(kind=ActionKind.SEND_EXTERNAL))
        settle(system)
        assert p2.mdcd.dirty_bit == 0
        assert p2.mdcd.vr == 2  # frontier broadcast as the bound

    def test_validated_at_receipt_by_bound(self, quiet_system):
        system = quiet_system
        p3 = peer(system, "P3")
        note = passed_at_notification(system.active.process_id,
                                      p3.process_id, msg_sn=5, ndc=0)
        p3.dispatch(note)
        send_active_to(system, 1)  # sn=1 <= vr=5
        assert p3.mdcd.dirty_bit == 0
        recs = p3.journal_recv.records(sender=system.active.process_id)
        assert recs and recs[0].validated


class TestReplayDedup:
    def test_internal_sends_carry_dsn(self, quiet_system):
        system = quiet_system
        p2, p3 = peer(system, "P2"), peer(system, "P3")
        p2.software.on_send_internal(action(stimulus=1))
        p2.software.on_send_internal(action(stimulus=1))
        settle(system)
        target = next(p for p in (p3, peer(system, "P4"))
                      if p.journal_recv.records(sender=p2.process_id))
        dsns = [r.dsn for r in target.journal_recv.records(sender=p2.process_id)]
        assert dsns == [1, 2]

    def test_dedup_key_stable_across_regeneration(self):
        a = Message(kind=MessageKind.INTERNAL, sender=ProcessId("P2"),
                    receiver=ProcessId("P3"), dsn=7)
        b = Message(kind=MessageKind.INTERNAL, sender=ProcessId("P2"),
                    receiver=ProcessId("P3"), dsn=7)
        assert a.msg_id != b.msg_id
        assert a.dedup_key == b.dedup_key

    def test_dsn_counters_rewind_with_rollback(self, quiet_system):
        system = quiet_system
        p2 = peer(system, "P2")
        checkpoint = p2.capture_checkpoint(CheckpointKind.TYPE_1)
        p2.software.on_send_internal(action(stimulus=1))
        settle(system)
        p2.restore_from(checkpoint, "software")
        # Replay reuses dsn=1 for the same destination: the regenerated
        # message deduplicates against the original at the receiver.
        p2.software.on_send_internal(action(stimulus=1))
        settle(system)
        receivers = [p for p in system.peers
                     if p.counters.get("recv.duplicate")]
        assert len(receivers) == 1

    def test_coordinated_scheme_carries_dsn(self):
        # The adapted TB's checkpoint swap can anchor a process before
        # sends its peers reflect receiving; the coordinated schemes
        # therefore carry dsn so rolled-back replay deduplicates (found
        # by the schedule audit — see DESIGN.md).
        from repro.coordination.scheme import Scheme, SystemConfig, build_system
        system = build_system(SystemConfig(scheme=Scheme.COORDINATED,
                                           seed=1, horizon=300.0))
        system.run()
        recs = system.peer.journal_recv.records(sender=system.active.process_id)
        assert recs and all(r.dsn is not None for r in recs)

    def test_naive_scheme_has_no_dsn(self):
        # The paper-faithful original protocols stay dsn-free.
        from repro.coordination.scheme import Scheme, SystemConfig, build_system
        system = build_system(SystemConfig(scheme=Scheme.NAIVE,
                                           seed=1, horizon=300.0))
        system.run()
        recs = system.peer.journal_recv.records(sender=system.active.process_id)
        assert recs and all(r.dsn is None for r in recs)
