"""Tests for the generalized (K-peer) guarded architecture."""

import pytest

from repro.analysis import check_system_line
from repro.analysis.global_state import common_stable_line, stable_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.errors import ConfigurationError
from repro.general import GeneralSystemConfig, build_general_system, route
from repro.tb.blocking import TbConfig
from repro.types import ProcessId


def make_system(n_peers=3, seed=5, horizon=2000.0, **overrides):
    config = GeneralSystemConfig(
        n_peers=n_peers, seed=seed, horizon=horizon,
        tb=TbConfig(interval=40.0),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        workload_peer=WorkloadConfig(internal_rate=0.04, external_rate=0.01,
                                     step_rate=0.02, horizon=horizon),
        stable_history=200, **overrides)
    return build_general_system(config)


class TestConstruction:
    def test_rejects_zero_peers(self):
        with pytest.raises(ConfigurationError):
            GeneralSystemConfig(n_peers=0)

    def test_process_roster(self):
        system = make_system(n_peers=4)
        ids = [str(p.process_id) for p in system.process_list()]
        assert ids == ["P1_act", "P1_sdw", "P2", "P3", "P4", "P5"]

    def test_one_node_per_process(self):
        system = make_system(n_peers=3)
        nodes = {p.node.node_id for p in system.process_list()}
        assert len(nodes) == 5

    def test_route_is_deterministic_and_covering(self):
        targets = [ProcessId(f"P{i}") for i in range(2, 6)]
        picks = {route(stim, targets) for stim in range(100)}
        assert picks == set(targets)
        assert route(7, targets) == route(7, targets)


class TestGuardedOperationAtScale:
    def test_contamination_propagates_transitively(self):
        system = make_system(n_peers=3)
        system.run()
        # Every peer eventually gets contaminated (Type-1 checkpoints),
        # even those P1_act never addresses directly in a given window —
        # peer-to-peer dirty messages carry the wavefront.
        for peer in system.peers:
            assert peer.counters.get("checkpoint.type-1") > 0
        assert system.shadow.counters.get("checkpoint.type-1") > 0

    def test_validations_clean_every_process(self):
        system = make_system(n_peers=3)
        system.run()
        for peer in system.peers:
            assert peer.counters.get("recv.passed_at") > 0

    def test_shadow_mirrors_active(self):
        system = make_system(n_peers=3)
        system.run()
        assert (system.shadow.component.state.value
                == system.active.component.state.value)

    @pytest.mark.parametrize("n_peers", [1, 2, 5])
    def test_all_epoch_lines_valid(self, n_peers):
        system = make_system(n_peers=n_peers)
        system.run()
        common = None
        for proc in system.process_list():
            epochs = set(proc.node.stable.epochs(proc.process_id))
            common = epochs if common is None else common & epochs
        checked = 0
        for epoch in sorted(common or ()):
            line = stable_line(system, epoch=epoch)
            if len(line) < len(system.process_list()):
                continue
            checked += 1
            assert check_system_line(line) == [], f"epoch {epoch}"
        assert checked > 10

    def test_single_peer_matches_paper_model(self):
        # K = 1 is exactly the paper's architecture.
        system = make_system(n_peers=1)
        system.run()
        assert check_system_line(common_stable_line(system)) == []


class TestRecoveryAtScale:
    def test_takeover_spans_all_peers(self):
        system = make_system(n_peers=4, horizon=3000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=800.0))
        system.run()
        assert system.sw_recovery.completed
        assert len(system.sw_recovery.decisions) == 5  # shadow + 4 peers
        for proc in system.process_list():
            if not proc.deposed:
                assert not proc.component.state.corrupt

    def test_promoted_shadow_routes_to_all_peers(self):
        system = make_system(n_peers=3, horizon=4000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=500.0))
        system.run()
        assert system.sw_recovery.completed
        for peer in system.peers:
            shadow_msgs = peer.journal_recv.records(
                sender=system.shadow.process_id)
            assert shadow_msgs, f"{peer.process_id} never heard the shadow"

    def test_crash_of_any_peer_recovers_globally(self):
        system = make_system(n_peers=3, horizon=3000.0)
        system.inject_crash(HardwareFaultPlan(node_id="N4", crash_at=1500.0,
                                              repair_time=2.0))
        system.run()
        assert system.hw_recovery.recoveries == 1
        assert len(system.hw_recovery.records) == 5
        assert check_system_line(common_stable_line(system)) == []

    def test_combined_faults_at_scale(self):
        system = make_system(n_peers=4, horizon=3000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=800.0))
        system.inject_crash(HardwareFaultPlan(node_id="N3", crash_at=1800.0,
                                              repair_time=2.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.hw_recovery.recoveries == 1
        for proc in system.process_list():
            if not proc.deposed:
                assert not proc.component.state.corrupt

    def test_determinism(self):
        def fingerprint():
            system = make_system(n_peers=3, seed=11)
            system.run()
            return (system.sim.events_executed,
                    tuple(p.component.state.value
                          for p in system.process_list()))
        assert fingerprint() == fingerprint()
