"""Shared fixtures for the test suite."""

import pytest

from repro.sim.clock import ClockConfig
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.types import NodeId


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng():
    """A seeded RNG registry."""
    return RngRegistry(master_seed=1234)


@pytest.fixture
def clock_config():
    """Tight clock bounds for deterministic-ish tests."""
    return ClockConfig(delta=0.01, rho=1e-6)


@pytest.fixture
def net_config():
    """Default network delay bounds."""
    return NetworkConfig(t_min=0.002, t_max=0.02)


@pytest.fixture
def network(sim, net_config, rng):
    """A network bound to the fresh simulator."""
    return Network(sim, net_config, rng)


@pytest.fixture
def trace():
    """An enabled trace recorder."""
    return TraceRecorder(enabled=True)


@pytest.fixture
def make_node(sim, clock_config, rng):
    """Factory for nodes on the shared simulator."""
    def factory(name="N1", stable_history=2):
        return Node(NodeId(name), sim, clock_config, rng,
                    stable_history=stable_history)
    return factory
