"""The headline equivalence claim: one scripted workload — including a
``kill -9`` crash and the coordinated hardware recovery — produces the
same ordered per-process decision sequences on the discrete-event
backend and on real OS processes over TCP."""

import pytest

from repro.runtime.crosscheck import run_crosscheck
from repro.runtime.decisions import diff_decisions
from repro.runtime.script import standard_script


class TestCrosscheck:
    def test_standard_script_equivalent(self, tmp_path):
        result = run_crosscheck(seed=0, workdir=str(tmp_path / "live"))
        assert result.differences == []
        assert result.equivalent
        # The script exercised what it claims to: a hardware rollback
        # on every process and post-recovery establishments.
        for process in ("P1_act", "P1_sdw", "P2"):
            events = [e["event"] for e in result.sim_decisions[process]]
            assert "recovery.rollback.hardware" in events
            assert "tb.establish.done" in events

    def test_seed_changes_decisions_but_not_equivalence(self, tmp_path):
        result = run_crosscheck(seed=42, workdir=str(tmp_path / "live"))
        assert result.equivalent, result.differences

    def test_summary_shape(self, tmp_path):
        result = run_crosscheck(seed=0, workdir=str(tmp_path / "live"))
        summary = result.summary()
        assert summary["equivalent"] is True
        assert summary["ops"] == len(standard_script())
        assert set(summary["decisions_per_process"]) == \
            {"P1_act", "P1_sdw", "P2"}


class TestDiffReporting:
    def test_diff_pinpoints_divergence(self):
        expected = {"P2": [{"event": "at.pass"}, {"event": "tb.reset",
                                                  "epoch": 2}]}
        actual = {"P2": [{"event": "at.pass"}, {"event": "tb.reset",
                                                "epoch": 3}]}
        diffs = diff_decisions(expected, actual)
        assert len(diffs) == 1
        assert "P2" in diffs[0] and "epoch" in diffs[0]

    def test_missing_process_reported(self):
        diffs = diff_decisions({"P2": [{"event": "at.pass"}]}, {})
        assert diffs and "P2" in diffs[0]

    def test_equal_traces_no_diffs(self):
        trace = {"P1_act": [{"event": "at.pass"}]}
        assert diff_decisions(trace, dict(trace)) == []
