"""Property fuzz of the frame layer: the fabric and the live protocol
both stand on :class:`FrameReader`, so it must hold up under arbitrary
chunking, truncation, oversize claims, and bit-level corruption.

Invariants under test:

* **reassembly** — any concatenation of valid frames, split at any byte
  boundaries, decodes to exactly the original bodies in order;
* **rejection** — a corrupted byte inside a frame either raises
  :class:`WireIntegrityError` or (if it only grazed JSON whitespace —
  impossible under canonical encoding) never silently yields a
  *different* body;
* **bounded buffering** — truncated input never raises and never
  yields a body; an oversize length prefix raises before buffering the
  claimed payload.
"""

import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.runtime.wire import (  # noqa: E402
    MAX_FRAME_BYTES,
    FrameReader,
    WireIntegrityError,
    encode_frame,
)

# JSON-able bodies: scalars, and shallow containers of scalars.
_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31),
    st.text(max_size=40))
_bodies = st.one_of(
    _scalars,
    st.lists(_scalars, max_size=6),
    st.dictionaries(st.text(max_size=10), _scalars, max_size=6))


def _split_points(data: bytes, cuts):
    """Split ``data`` at the (sorted, deduped) cut offsets."""
    offsets = sorted({min(c, len(data)) for c in cuts})
    chunks, prev = [], 0
    for offset in offsets:
        chunks.append(data[prev:offset])
        prev = offset
    chunks.append(data[prev:])
    return chunks


class TestReassembly:
    @given(bodies=st.lists(_bodies, min_size=1, max_size=5),
           cuts=st.lists(st.integers(0, 4096), max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_any_chunking_reassembles_in_order(self, bodies, cuts):
        stream = b"".join(encode_frame(b) for b in bodies)
        reader = FrameReader()
        out = []
        for chunk in _split_points(stream, cuts):
            out.extend(reader.feed(chunk))
        assert out == bodies
        assert reader.pending_bytes() == 0

    @given(body=_bodies)
    @settings(max_examples=60, deadline=None)
    def test_byte_at_a_time_is_identical(self, body):
        stream = encode_frame(body)
        reader = FrameReader()
        out = []
        for i in range(len(stream)):
            out.extend(reader.feed(stream[i:i + 1]))
        assert out == [body]


class TestTruncation:
    @given(body=_bodies, keep=st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_truncated_frame_never_yields_and_never_raises(self, body, keep):
        stream = encode_frame(body)
        truncated = stream[:min(keep, len(stream) - 1)]
        reader = FrameReader()
        assert reader.feed(truncated) == []
        assert reader.pending_bytes() == len(truncated)

    @given(body=_bodies)
    @settings(max_examples=40, deadline=None)
    def test_completion_after_truncation_recovers(self, body):
        stream = encode_frame(body)
        half = len(stream) // 2
        reader = FrameReader()
        assert reader.feed(stream[:half]) == []
        assert reader.feed(stream[half:]) == [body]


class TestOversize:
    @given(length=st.integers(MAX_FRAME_BYTES + 1, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_oversize_length_prefix_rejected_immediately(self, length):
        reader = FrameReader()
        with pytest.raises(WireIntegrityError, match="exceeds cap"):
            reader.feed(struct.pack(">I", length))

    def test_cap_boundary_is_exact(self):
        reader = FrameReader()
        # Exactly at the cap: accepted (waits for payload bytes).
        assert reader.feed(struct.pack(">I", MAX_FRAME_BYTES)) == []
        with pytest.raises(WireIntegrityError):
            FrameReader().feed(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestCorruption:
    @given(body=_bodies, position=st.integers(0, 4095),
           flip=st.integers(1, 255))
    @settings(max_examples=150, deadline=None)
    def test_corrupt_byte_never_silently_alters_a_body(self, body, position,
                                                       flip):
        stream = bytearray(encode_frame(body))
        position %= len(stream)
        stream[position] ^= flip
        reader = FrameReader()
        try:
            out = reader.feed(bytes(stream))
        except WireIntegrityError:
            return  # rejection is the expected outcome
        # Corruption limited to the length prefix can leave the reader
        # waiting for more bytes (shorter/longer claimed frame) — but a
        # *decoded* body must never differ from the original.
        for decoded in out:
            assert decoded == body

    @given(body=st.dictionaries(st.text(min_size=1, max_size=8), _scalars,
                                min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_checksum_guards_the_body(self, body):
        import json

        from repro.runtime.wire import WIRE_VERSION, body_checksum
        envelope = {"v": WIRE_VERSION, "sum": body_checksum(body),
                    "body": body}
        # Tamper with the body but keep the stale checksum.
        tampered = dict(envelope, body={"tampered": True})
        data = json.dumps(tampered, sort_keys=True,
                          separators=(",", ":")).encode()
        frame = struct.pack(">I", len(data)) + data
        with pytest.raises(WireIntegrityError, match="checksum"):
            FrameReader().feed(frame)
