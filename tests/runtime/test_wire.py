"""Wire format: framing, checksums, corruption detection, codec
round-trip stability."""

import json

import pytest

from repro.app.component import Payload
from repro.messages.message import Message
from repro.runtime.wire import (MAX_FRAME_BYTES, WIRE_VERSION, FrameReader,
                                WireIntegrityError, body_checksum,
                                canonical_bytes, checksum_of,
                                decode_frame_payload, encode_frame,
                                encode_message_frame, message_from_dict,
                                message_to_dict, verify_message_roundtrip)
from repro.types import MessageKind, ProcessId


def _message(**overrides):
    fields = dict(kind=MessageKind.INTERNAL, sender=ProcessId("P1_act"),
                  receiver=ProcessId("P2"),
                  payload=Payload(value=17, corrupt=False),
                  sn=3, ndc=1, dirty_bit=0, dsn=5, incarnation=2)
    fields.update(overrides)
    return Message(**fields)


class TestFraming:
    def test_roundtrip(self):
        body = {"t": "msg", "x": [1, 2, {"y": None}]}
        frame = encode_frame(body)
        assert decode_frame_payload(frame[4:]) == body

    def test_encoding_is_stable(self):
        # Same logical body, different construction order -> same bytes.
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_canonical_bytes_sorted_minimal(self):
        assert canonical_bytes({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_corrupt_body_detected(self):
        frame = bytearray(encode_frame({"t": "msg", "value": 1234}))
        # Flip one byte inside the JSON body (past the length prefix and
        # the envelope head, before the final brace).
        frame[-10] ^= 0x01
        with pytest.raises(WireIntegrityError):
            decode_frame_payload(bytes(frame[4:]))

    def test_tampered_body_field_detected(self):
        frame = encode_frame({"value": 1234})
        envelope = json.loads(frame[4:].decode("utf-8"))
        envelope["body"]["value"] = 9999
        with pytest.raises(WireIntegrityError, match="checksum"):
            decode_frame_payload(canonical_bytes(envelope))

    def test_wrong_version_rejected(self):
        envelope = {"v": WIRE_VERSION + 1, "sum": body_checksum({}), "body": {}}
        with pytest.raises(WireIntegrityError, match="version"):
            decode_frame_payload(canonical_bytes(envelope))

    def test_non_json_rejected(self):
        with pytest.raises(WireIntegrityError):
            decode_frame_payload(b"\xff\xfe not json")

    def test_oversized_frame_rejected(self):
        with pytest.raises(WireIntegrityError, match="large"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestFrameReader:
    def test_reassembles_chopped_stream(self):
        bodies = [{"n": i} for i in range(5)]
        stream = b"".join(encode_frame(b) for b in bodies)
        reader = FrameReader()
        out = []
        for i in range(0, len(stream), 3):  # 3-byte chunks
            out.extend(reader.feed(stream[i:i + 3]))
        assert out == bodies
        assert reader.pending_bytes() == 0

    def test_multiple_frames_in_one_chunk(self):
        stream = encode_frame({"a": 1}) + encode_frame({"b": 2})
        assert FrameReader().feed(stream) == [{"a": 1}, {"b": 2}]

    def test_length_bomb_rejected(self):
        reader = FrameReader()
        with pytest.raises(WireIntegrityError, match="exceeds"):
            reader.feed(b"\xff\xff\xff\xff")

    def test_mid_stream_corruption_raises(self):
        frame = bytearray(encode_frame({"k": "value"}))
        frame[-5] ^= 0x01
        with pytest.raises(WireIntegrityError):
            FrameReader().feed(bytes(frame))


class TestMessageCodec:
    def test_roundtrip_plain(self):
        assert verify_message_roundtrip(_message())

    def test_roundtrip_all_field_shapes(self):
        for message in (
                _message(kind=MessageKind.EXTERNAL, payload=None, sn=None),
                _message(kind=MessageKind.ACK, corrupt=True),
                _message(kind=MessageKind.PASSED_AT, taint_sn=9),
                _message(resend_of=("P1_act", "P2", 7)),  # dedup-key tuple
                _message(resend_of=41),
                _message(payload=Payload(value="text", corrupt=True)),
        ):
            assert verify_message_roundtrip(message), message.describe()

    def test_dedup_key_survives_wire(self):
        message = _message(resend_of=("P1_act", "P2", 7))
        decoded = message_from_dict(message_to_dict(message))
        assert decoded.dedup_key == message.dedup_key

    def test_unknown_fields_rejected(self):
        data = message_to_dict(_message())
        data["surprise"] = 1
        with pytest.raises(WireIntegrityError, match="unknown"):
            message_from_dict(data)

    def test_malformed_kind_rejected(self):
        data = message_to_dict(_message())
        data["kind"] = "no-such-kind"
        with pytest.raises(WireIntegrityError):
            message_from_dict(data)

    def test_checksum_identifies_content_change(self):
        a = _message(sn=1, msg_id=100)
        b = _message(sn=2, msg_id=100)
        assert checksum_of(a) != checksum_of(b)
        assert checksum_of(a) == checksum_of(_message(sn=1, msg_id=100))

    def test_message_frame_roundtrip(self):
        message = _message()
        body = decode_frame_payload(encode_message_frame(message)[4:])
        assert message_from_dict(body) == message
