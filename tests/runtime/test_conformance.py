"""Cross-backend conformance: the same scripted workload must produce
the same protocol decisions on the discrete-event substrate and on real
OS processes, and the live adapters must honour the port contracts the
sim adapters define (reliable delivery with retry/dedup, durable
stable reads across a crash, timer re-arm across a clock resync)."""

import os
import selectors
import socket

import pytest

from repro.checkpoint import Checkpoint
from repro.errors import SchedulingError
from repro.live.clock import WallClock
from repro.live.harness import LiveHarness
from repro.live.loop import LiveScheduler
from repro.live.storage import FileStableStore
from repro.live.transport import LiveTransport
from repro.messages.message import Message
from repro.runtime import Endpoint, TimerService
from repro.runtime.script import ScriptOp, WorkloadScript, smoke_script, \
    standard_script
from repro.runtime.sim_backend import SimBackend
from repro.types import CheckpointKind, MessageKind, ProcessId

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ----------------------------------------------------------------------
# scripted decision conformance, parametrized over both backends
# ----------------------------------------------------------------------
@pytest.fixture(params=["sim", "live"])
def run_script(request, tmp_path):
    """A backend-agnostic ``(seed, script) -> decisions`` runner."""
    if request.param == "sim":
        return lambda seed, script: SimBackend(seed=seed).run_script(script)

    def live(seed, script):
        harness = LiveHarness(seed=seed, workdir=str(tmp_path / "live"),
                              deadline=90.0)
        return harness.run_script(script)
    return live


def _events(decisions, process):
    return [entry["event"] for entry in decisions.get(process, [])]


class TestScriptedConformance:
    def test_smoke_decision_ordering(self, run_script):
        decisions = run_script(3, smoke_script())
        active = decisions["P1_act"]
        # Guarded operation is declared before anything else happens.
        assert active[0] == {"event": "confidence.dirty", "bit": "dirty",
                             "reason": "guarded-active"}
        events = _events(decisions, "P1_act")
        # The internal send contaminates, the establishment copies the
        # pseudo checkpoint, the own AT cleans.
        assert events.index("checkpoint.volatile.pseudo") \
            < events.index("tb.establish.done")
        assert events.index("at.pass") \
            < events.index("confidence.clean")
        # Establishment epochs advance in order on every process.
        for process in ("P1_act", "P1_sdw", "P2"):
            epochs = [entry["epoch"] for entry in decisions[process]
                      if entry["event"] == "tb.establish.done"]
            assert epochs == sorted(epochs) == [1, 2]

    def test_smoke_establishment_contents(self, run_script):
        decisions = run_script(3, smoke_script())
        # Dirty establishment stores the volatile copy; after the AT
        # cleans the system the next establishment stores current state.
        contents = [entry["content"] for entry in decisions["P1_act"]
                    if entry["event"] == "tb.establish.done"]
        assert contents == ["volatile-copy", "current-state"]

    def test_crash_recovery_rolls_every_process_to_the_line(self, run_script):
        decisions = run_script(0, standard_script())
        for process in ("P1_act", "P1_sdw", "P2"):
            rollbacks = [entry for entry in decisions[process]
                         if entry["event"] == "recovery.rollback.hardware"]
            assert len(rollbacks) == 1, process
            assert rollbacks[0]["kind"] == "stable"
        lines = {entry["epoch"] for process in ("P1_act", "P1_sdw", "P2")
                 for entry in decisions[process]
                 if entry["event"] == "recovery.rollback.hardware"}
        assert len(lines) == 1  # one common recovery line
        line = lines.pop()
        # Establishments resume past the line after recovery.
        for process in ("P1_act", "P1_sdw", "P2"):
            epochs = [entry["epoch"] for entry in decisions[process]
                      if entry["event"] == "tb.establish.done"]
            assert epochs[-1] > line

    def test_post_recovery_traffic_still_validates(self, run_script):
        decisions = run_script(0, standard_script())
        events = _events(decisions, "P1_act")
        # The final external op (after the crash + recovery) passes its
        # AT: at least two at.pass events in the run.
        assert events.count("at.pass") >= 2


class TestCrossBackendEquality:
    def test_smoke_script_identical_decisions(self, tmp_path):
        script = smoke_script()
        sim = SimBackend(seed=5).run_script(script)
        live = LiveHarness(seed=5, workdir=str(tmp_path / "x"),
                           deadline=90.0).run_script(script)
        assert live == sim


# ----------------------------------------------------------------------
# port conformance: reliable delivery (ack/retry/dedup)
# ----------------------------------------------------------------------
def _make_transport(name, port, peers, scheduler):
    selector = selectors.DefaultSelector()
    listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listen.bind(("127.0.0.1", port))
    listen.listen(4)
    transport = LiveTransport(ProcessId(name), scheduler, selector, listen,
                              peers=peers, session=f"session-{name}")
    transport.release_held()
    return transport, selector


def _pump(scheduler, selectors_, duration=0.05):
    import time
    end = time.monotonic() + duration
    while time.monotonic() < end:
        scheduler.run_due()
        for sel in selectors_:
            for key, _ in sel.select(0.005):
                key.data()


class TestLiveTransportReliability:
    def test_retry_until_receipted_then_dedup(self):
        ports = []
        for _ in range(2):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports.append(probe.getsockname()[1])
            probe.close()
        clock = WallClock()
        scheduler = LiveScheduler(clock)
        a, sel_a = _make_transport("A", ports[0],
                                   {"B": ("127.0.0.1", ports[1])}, scheduler)
        b, sel_b = _make_transport("B", ports[1],
                                   {"A": ("127.0.0.1", ports[0])}, scheduler)
        delivered = []
        b.register(Endpoint(process_id=ProcessId("B"),
                            deliver=lambda m: delivered.append(m) or True))
        acked = []
        a.register(Endpoint(process_id=ProcessId("A"),
                            deliver=lambda m: True,
                            on_ack=lambda msg_id: acked.append(msg_id)))
        message = Message(kind=MessageKind.INTERNAL, sender=ProcessId("A"),
                          receiver=ProcessId("B"), payload=None, dsn=1)
        try:
            a.send(message)
            assert a.unreceipted_count() == 1
            # B is not being pumped: A retransmits on its backoff timer.
            _pump(scheduler, [sel_a], duration=0.2)
            assert a.counters["retransmits"] >= 1
            assert a.unreceipted_count() == 1
            # Pump both sides: the frame lands exactly once (duplicates
            # receipted and dropped), the receipt clears the retry, and
            # the protocol ack comes back.
            _pump(scheduler, [sel_a, sel_b], duration=0.4)
            assert [m.msg_id for m in delivered] == [message.msg_id]
            assert b.counters["duplicates"] >= 1
            assert a.unreceipted_count() == 0
            assert b.unreceipted_count() == 0
            assert acked == [message.msg_id]
        finally:
            a.close()
            b.close()
            sel_a.close()
            sel_b.close()


# ----------------------------------------------------------------------
# port conformance: durable stable reads across a crash
# ----------------------------------------------------------------------
def _stable_ckpt(pid, epoch, work):
    return Checkpoint.capture(ProcessId(pid), CheckpointKind.STABLE,
                              state={"w": work}, taken_at=work,
                              work_done=work, epoch=epoch)


class TestDurableStableStore:
    def test_read_after_restart_sees_saved_chain(self, tmp_path):
        root = str(tmp_path / "stable")
        store = FileStableStore(root, history=2)
        for epoch in (0, 1, 2, 3):
            store.save(_stable_ckpt("P2", epoch, float(epoch)))
        # "kill -9": drop the in-memory store, rebuild from the files.
        rebuilt = FileStableStore(root, history=2)
        assert rebuilt.epochs(ProcessId("P2")) == [2, 3]
        latest = rebuilt.latest(ProcessId("P2"))
        assert latest.epoch == 3
        assert latest.restore_state() == {"w": 3.0}

    def test_discard_after_epoch_prunes_files_durably(self, tmp_path):
        root = str(tmp_path / "stable")
        store = FileStableStore(root, history=4)
        for epoch in (0, 1, 2, 3):
            store.save(_stable_ckpt("P2", epoch, float(epoch)))
        assert store.discard_after_epoch(ProcessId("P2"), 1) == 2
        rebuilt = FileStableStore(root, history=4)
        assert rebuilt.epochs(ProcessId("P2")) == [0, 1]

    def test_interrupted_write_leaves_old_state(self, tmp_path):
        root = str(tmp_path / "stable")
        store = FileStableStore(root, history=2)
        store.save(_stable_ckpt("P2", 1, 1.0))
        # A crash mid-write leaves a .tmp the rename never blessed.
        with open(os.path.join(root, "P2__00000002.ckpt.tmp"), "wb") as f:
            f.write(b"torn half-written checkpoint")
        rebuilt = FileStableStore(root, history=2)
        assert rebuilt.epochs(ProcessId("P2")) == [1]
        assert not any(name.endswith(".tmp") for name in os.listdir(root))


# ----------------------------------------------------------------------
# port conformance: timers survive a clock resync on both substrates
# ----------------------------------------------------------------------
@pytest.fixture(params=["sim", "live"])
def timer_substrate(request):
    if request.param == "sim":
        from repro.runtime import (ClockConfig, DriftingClock, RngRegistry,
                                   Simulator)
        sim = Simulator()
        clock = DriftingClock(sim, ClockConfig(), RngRegistry(0), "N")
        return sim, clock, lambda until: sim.run(until=until)

    clock = WallClock()
    scheduler = LiveScheduler(clock)

    def advance(until):
        import time
        while scheduler.now < until:
            scheduler.run_due()
            time.sleep(0.005)
    return scheduler, clock, advance


class TestTimerResyncConformance:
    def test_alarm_fires_once_across_resync(self, timer_substrate):
        scheduler, clock, advance = timer_substrate
        timers = TimerService(scheduler, clock)
        fired = []
        timers.set_alarm(clock.now() + 0.05, lambda: fired.append("a"),
                         label="conformance")
        clock.resync()  # re-anchors and re-arms pending alarms
        advance(scheduler.now + 0.2)
        assert fired == ["a"]
        assert timers.pending() == 0

    def test_cancel_before_fire(self, timer_substrate):
        scheduler, clock, advance = timer_substrate
        timers = TimerService(scheduler, clock)
        fired = []
        alarm = timers.set_alarm(clock.now() + 0.05,
                                 lambda: fired.append("a"), label="c2")
        alarm.cancel()
        advance(scheduler.now + 0.15)
        assert fired == []

    def test_negative_delay_rejected(self, timer_substrate):
        scheduler, clock, _advance = timer_substrate
        timers = TimerService(scheduler, clock)
        with pytest.raises(SchedulingError):
            timers.set_alarm_after(-1.0, lambda: None)
