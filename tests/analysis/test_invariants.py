"""Unit tests for the invariant checkers, on synthetic lines with
hand-crafted violations of each kind."""

import pytest

from repro.analysis.global_state import ProcessView
from repro.analysis.invariants import (
    ORPHAN_MESSAGE,
    UNDETECTED_CONTAMINATION,
    UNRESTORABLE_MESSAGE,
    VALIDITY_MISMATCH,
    Violation,
    assert_line_ok,
    check_consistency,
    check_ground_truth,
    check_line,
    check_recoverability,
    summarize_violations,
)
from repro.app.component import AppState
from repro.errors import InvariantViolation
from repro.host import ProcessSnapshot
from repro.journal import Journal
from repro.mdcd.state import MdcdState
from repro.messages.log import MessageLog
from repro.messages.message import DEVICE, Message
from repro.types import MessageKind, ProcessId


def make_view(pid, sent=(), recv=(), unacked=(), dirty=0, corrupt=False,
              vr=None, taken_at=100.0):
    """Build a ProcessView from (message, validated) pairs."""
    journal_sent, journal_recv = Journal(), Journal()
    for message, validated in sent:
        journal_sent.add(message, validated=validated, time=message.send_time)
    for message, validated in recv:
        journal_recv.add(message, validated=validated,
                         time=message.send_time + 0.01)
    snapshot = ProcessSnapshot(
        app_state=AppState(corrupt=corrupt),
        mdcd=MdcdState(dirty_bit=dirty, vr=vr),
        sn_value=0, dedup_seen=set(), unacked=list(unacked),
        journal_sent=journal_sent, journal_recv=journal_recv,
        msg_log=MessageLog(), cursor=0)
    return ProcessView(process_id=ProcessId(pid), snapshot=snapshot,
                       taken_at=taken_at, work_done=taken_at)


def msg(sender="A", receiver="B", sn=None, dirty=0, t=50.0):
    m = Message(kind=MessageKind.INTERNAL, sender=ProcessId(sender),
                receiver=ProcessId(receiver), sn=sn, dirty_bit=dirty)
    m.send_time = t
    return m


class TestConsistency:
    def test_clean_line_passes(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert check_consistency(line) == []

    def test_orphan_detected(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A"),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        violations = check_consistency(line)
        assert [v.kind for v in violations] == [ORPHAN_MESSAGE]

    def test_orphan_ignores_senders_outside_line(self):
        m = msg(sender="ghost")
        line = {ProcessId("B"): make_view("B", recv=[(m, True)])}
        assert check_consistency(line) == []

    def test_validity_mismatch_detected(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B", recv=[(m, False)]),
        }
        violations = check_consistency(line)
        assert [v.kind for v in violations] == [VALIDITY_MISMATCH]

    def test_exempt_receiver_skipped(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A"),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert check_consistency(line, exempt_receivers=[ProcessId("B")]) == []

    def test_pruned_sender_record_not_an_orphan(self):
        m = msg(t=50.0)
        sender = make_view("A")
        sender.snapshot.journal_sent.pruned_before = 60.0
        line = {
            ProcessId("A"): sender,
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert check_consistency(line) == []

    def test_unvalidated_record_never_prune_excused(self):
        m = msg(t=50.0)
        sender = make_view("A")
        sender.snapshot.journal_sent.pruned_before = 60.0
        line = {
            ProcessId("A"): sender,
            ProcessId("B"): make_view("B", recv=[(m, False)]),
        }
        assert len(check_consistency(line)) == 1


class TestRecoverability:
    def test_received_message_is_fine(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert check_recoverability(line) == []

    def test_unrestorable_detected(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B"),
        }
        violations = check_recoverability(line)
        assert [v.kind for v in violations] == [UNRESTORABLE_MESSAGE]

    def test_unacked_message_is_restorable(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)], unacked=[m]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(line) == []

    def test_external_messages_skipped(self):
        m = Message(kind=MessageKind.EXTERNAL, sender=ProcessId("A"),
                    receiver=DEVICE)
        line = {ProcessId("A"): make_view("A", sent=[(m, True)])}
        assert check_recoverability(line) == []

    def test_shadow_log_arm_covers_unvalidated_active_messages(self):
        m = msg(sender="P1_act", receiver="B", sn=7)
        line = {
            ProcessId("P1_act"): make_view("P1_act", sent=[(m, False)]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(
            line, guarded_active=ProcessId("P1_act"), shadow_vr=3) == []
        # Covered by a validation (sn <= vr): the shadow reclaimed its
        # copy, so the message is genuinely unrestorable.
        assert len(check_recoverability(
            line, guarded_active=ProcessId("P1_act"), shadow_vr=9)) == 1

    def test_exempt_receiver_skipped(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(line,
                                    exempt_receivers=[ProcessId("B")]) == []


class TestGroundTruth:
    def test_clean_claim_with_corrupt_state_flagged(self):
        line = {ProcessId("A"): make_view("A", dirty=0, corrupt=True)}
        violations = check_ground_truth(line)
        assert [v.kind for v in violations] == [UNDETECTED_CONTAMINATION]

    def test_dirty_claim_with_corrupt_state_ok(self):
        line = {ProcessId("A"): make_view("A", dirty=1, corrupt=True)}
        assert check_ground_truth(line) == []

    def test_clean_claim_with_clean_state_ok(self):
        line = {ProcessId("A"): make_view("A", dirty=0, corrupt=False)}
        assert check_ground_truth(line) == []


class TestAggregation:
    def test_check_line_runs_everything(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", corrupt=True),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        kinds = {v.kind for v in check_line(line)}
        assert ORPHAN_MESSAGE in kinds
        assert UNDETECTED_CONTAMINATION in kinds

    def test_assert_line_ok_raises_with_violations(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A"),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        with pytest.raises(InvariantViolation) as excinfo:
            assert_line_ok(line, label="test")
        assert excinfo.value.violations

    def test_assert_line_ok_passes_clean(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert_line_ok(line)

    def test_summarize_counts_by_kind(self):
        violations = [Violation(kind=ORPHAN_MESSAGE, detail=""),
                      Violation(kind=ORPHAN_MESSAGE, detail=""),
                      Violation(kind=VALIDITY_MISMATCH, detail="")]
        assert summarize_violations(violations) == {ORPHAN_MESSAGE: 2,
                                                    VALIDITY_MISMATCH: 1}
