"""Tests for the live-state (non-checkpoint) audit."""

import random

from repro.analysis import check_live_system
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.coordination.scheme import Scheme, SystemConfig, build_system


def make_system(seed=4, horizon=2000.0, scheme=Scheme.COORDINATED):
    return build_system(SystemConfig(scheme=scheme, seed=seed, horizon=horizon))


class TestLiveAudit:
    def test_clean_at_random_instants(self):
        system = make_system()
        system.start()
        rng = random.Random(9)
        for _ in range(10):
            system.run(until=system.sim.now + rng.uniform(20.0, 250.0))
            assert check_live_system(system) == []

    def test_clean_right_after_recoveries(self):
        system = make_system(horizon=4000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=2500.0,
                                              repair_time=2.0))
        system.run(until=2600.0)
        assert system.hw_recovery.recoveries == 1
        assert check_live_system(system) == []
        system.run()
        assert check_live_system(system) == []

    def test_detects_planted_ground_truth_violation(self):
        system = make_system()
        system.run(until=500.0)
        # Plant: contaminate the peer while its dirty bit claims clean.
        system.peer.component.state.corrupt = True
        system.peer.mdcd.dirty_bit = 0
        violations = check_live_system(system)
        assert any(v.kind == "undetected-contamination" for v in violations)

    def test_mdcd_only_scheme_also_clean(self):
        system = make_system(scheme=Scheme.MDCD_ONLY)
        system.run(until=1500.0)
        assert check_live_system(system) == []
