"""Edge-case coverage for the invariant checkers.

The main checker behaviours are covered in ``test_invariants.py``; this
module pins the boundary conditions the online auditor leans on: empty
and partial lines, DEVICE-endpoint traffic, messages restorable by more
than one mechanism at once, the replay-protection (dsn) exemption, and
the gating of the pseudo-conservatism oracle.
"""

from repro.analysis.global_state import ProcessView
from repro.analysis.invariants import (
    ORPHAN_MESSAGE,
    PSEUDO_CONTAMINATION,
    UNRESTORABLE_MESSAGE,
    check_consistency,
    check_ground_truth,
    check_line,
    check_pseudo_conservatism,
    check_recoverability,
    check_system_line,
    summarize_violations,
)
from repro.app.component import AppState
from repro.host import ProcessSnapshot
from repro.journal import Journal
from repro.mdcd.state import MdcdState
from repro.messages.log import MessageLog
from repro.messages.message import DEVICE, Message
from repro.types import MessageKind, ProcessId


def make_view(pid, sent=(), recv=(), unacked=(), dirty=0, corrupt=False,
              pseudo=0, guarded=True, vr=None, content=None, meta=None,
              taken_at=100.0):
    journal_sent, journal_recv = Journal(), Journal()
    for message, validated in sent:
        journal_sent.add(message, validated=validated, time=message.send_time)
    for message, validated in recv:
        journal_recv.add(message, validated=validated,
                         time=message.send_time + 0.01)
    snapshot = ProcessSnapshot(
        app_state=AppState(corrupt=corrupt),
        mdcd=MdcdState(dirty_bit=dirty, pseudo_dirty_bit=pseudo,
                       guarded=guarded, vr=vr),
        sn_value=0, dedup_seen=set(), unacked=list(unacked),
        journal_sent=journal_sent, journal_recv=journal_recv,
        msg_log=MessageLog(), cursor=0)
    return ProcessView(process_id=ProcessId(pid), snapshot=snapshot,
                       taken_at=taken_at, work_done=taken_at,
                       content=content, meta=meta or {})


def msg(sender="A", receiver="B", sn=None, dsn=None, t=50.0):
    m = Message(kind=MessageKind.INTERNAL, sender=ProcessId(sender),
                receiver=ProcessId(receiver), sn=sn, dsn=dsn)
    m.send_time = t
    return m


class TestEmptyAndPartialLines:
    def test_empty_line_passes_every_checker(self):
        assert check_consistency({}) == []
        assert check_recoverability({}) == []
        assert check_ground_truth({}) == []
        assert check_line({}) == []
        assert check_system_line({}) == []

    def test_single_process_line(self):
        line = {ProcessId("A"): make_view("A")}
        assert check_line(line) == []

    def test_receiver_outside_line_skipped(self):
        m = msg()
        line = {ProcessId("A"): make_view("A", sent=[(m, True)])}
        # B is not in the line (e.g. deposed): nothing to check.
        assert check_recoverability(line) == []

    def test_summarize_empty(self):
        assert summarize_violations([]) == {}


class TestDeviceEndpoints:
    def test_external_sends_never_unrestorable(self):
        # Messages to DEVICE leave the system; they are not expected in
        # any receiver journal and need no restoration.
        m = Message(kind=MessageKind.EXTERNAL, sender=ProcessId("A"),
                    receiver=DEVICE)
        m.send_time = 50.0
        line = {ProcessId("A"): make_view("A", sent=[(m, True)])}
        assert check_recoverability(line) == []

    def test_device_sender_not_an_orphan(self):
        # A record whose sender is outside the line (DEVICE, a deposed
        # process) cannot be cross-checked and must not be flagged.
        m = msg(sender=str(DEVICE))
        line = {ProcessId("B"): make_view("B", recv=[(m, True)])}
        assert check_consistency(line) == []


class TestRestorationPaths:
    def test_unacked_set_restores(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)], unacked=[m]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(line) == []

    def test_shadow_log_arm_restores_guarded_actives_messages(self):
        m = msg(sn=9)
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(line, guarded_active=ProcessId("A"),
                                    shadow_vr=5) == []

    def test_both_paths_at_once_is_one_clean_pass(self):
        # A message restorable by BOTH the unacked set and the shadow
        # log: the checker must accept it exactly once, not trip over
        # the redundancy.
        m = msg(sn=9)
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)], unacked=[m]),
            ProcessId("B"): make_view("B"),
        }
        assert check_recoverability(line, guarded_active=ProcessId("A"),
                                    shadow_vr=5) == []

    def test_covered_sn_not_restorable_by_shadow(self):
        # sn <= vr: the shadow reclaimed its copy, the unacked set is
        # empty — genuinely unrestorable.
        m = msg(sn=3)
        line = {
            ProcessId("A"): make_view("A", sent=[(m, True)]),
            ProcessId("B"): make_view("B"),
        }
        violations = check_recoverability(line,
                                          guarded_active=ProcessId("A"),
                                          shadow_vr=5)
        assert [v.kind for v in violations] == [UNRESTORABLE_MESSAGE]

    def test_dsn_exempts_orphan(self):
        # Replay protection: a received record carrying a destination
        # sequence number re-materializes on the sender's deterministic
        # re-execution, so the missing sent-side is not an orphan.
        m = msg(dsn=7)
        line = {
            ProcessId("A"): make_view("A"),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert check_consistency(line) == []

    def test_no_dsn_still_an_orphan(self):
        m = msg()
        line = {
            ProcessId("A"): make_view("A"),
            ProcessId("B"): make_view("B", recv=[(m, True)]),
        }
        assert [v.kind for v in check_consistency(line)] == [ORPHAN_MESSAGE]


class TestPseudoConservatismGating:
    ACTIVE = ProcessId("P1_act")

    def line_with_active(self, **kwargs):
        return {self.ACTIVE: make_view("P1_act", **kwargs)}

    def test_fires_on_contaminated_current_state(self):
        line = self.line_with_active(content="current-state", corrupt=True,
                                     pseudo=0, dirty=1)
        violations = check_pseudo_conservatism(line, self.ACTIVE)
        assert [v.kind for v in violations] == [PSEUDO_CONTAMINATION]

    def test_volatile_copy_content_not_checked(self):
        # A volatile-copy checkpoint makes no validation claim.
        line = self.line_with_active(content="volatile-copy", corrupt=True,
                                     pseudo=0, dirty=1)
        assert check_pseudo_conservatism(line, self.ACTIVE) == []

    def test_genesis_checkpoint_exempt(self):
        line = self.line_with_active(content="current-state", corrupt=True,
                                     pseudo=0, meta={"genesis": True})
        assert check_pseudo_conservatism(line, self.ACTIVE) == []

    def test_post_takeover_unguarded_exempt(self):
        line = self.line_with_active(content="current-state", corrupt=True,
                                     pseudo=0, guarded=False)
        assert check_pseudo_conservatism(line, self.ACTIVE) == []

    def test_active_missing_from_line(self):
        assert check_pseudo_conservatism({}, self.ACTIVE) == []

    def test_suspect_state_allowed_to_be_corrupt(self):
        # pseudo bit 1 = "suspect": contamination is the *expected*
        # conservative case, not a violation.
        line = self.line_with_active(content="current-state", corrupt=True,
                                     pseudo=1, dirty=1)
        assert check_pseudo_conservatism(line, self.ACTIVE) == []
