"""Unit tests for rollback-distance aggregation."""

from repro.analysis.rollback import (
    hardware_rollback_distances,
    per_process_rollback_stats,
    rollback_stat,
    software_rollback_distances,
)
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.coordination.scheme import Scheme, SystemConfig, build_system


def run_with_faults(seed=5, horizon=3000.0):
    system = build_system(SystemConfig(scheme=Scheme.COORDINATED, seed=seed,
                                       horizon=horizon))
    system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1000.0,
                                          repair_time=1.0))
    system.inject_software_fault(SoftwareFaultPlan(activate_at=2000.0))
    system.run()
    return system


class TestExtraction:
    def test_hardware_distances_match_coordinator(self):
        system = run_with_faults()
        from_trace = hardware_rollback_distances(system.trace)
        from_coordinator = system.hw_recovery.distances()
        assert sorted(from_trace) == sorted(from_coordinator)

    def test_per_process_filter(self):
        system = run_with_faults()
        peer_only = hardware_rollback_distances(system.trace,
                                                system.peer.process_id)
        assert len(peer_only) == 1

    def test_software_distances_recorded_on_takeover(self):
        system = run_with_faults()
        assert system.sw_recovery.completed
        distances = software_rollback_distances(system.trace)
        assert len(distances) == len(system.sw_recovery.distances)

    def test_rollback_stat_aggregates(self):
        system = run_with_faults()
        stat = rollback_stat(system, "hardware")
        assert stat.count == 3
        assert stat.mean >= 0

    def test_per_process_stats(self):
        system = run_with_faults()
        stats = per_process_rollback_stats(system, "hardware")
        assert len(stats) == 3
        assert all(s.count == 1 for s in stats.values())
