"""Unit tests for global-state capture."""

from repro.analysis.global_state import (
    common_stable_line,
    live_line,
    live_view,
    stable_line,
    view_from_checkpoint,
    volatile_line,
)
from repro.app.faults import SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig


def run_system(scheme=Scheme.COORDINATED, horizon=100.0, seed=5, run=True):
    config = SystemConfig(
        scheme=scheme, seed=seed, horizon=horizon,
        tb=TbConfig(interval=10.0),
        workload1=WorkloadConfig(internal_rate=0.2, external_rate=0.05,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.1, external_rate=0.05,
                                 step_rate=0.02, horizon=horizon),
        stable_history=100)
    system = build_system(config)
    if run:
        system.run()
    return system


class TestViews:
    def test_view_from_checkpoint_unpickles(self):
        system = run_system()
        checkpoint = system.peer.node.stable.latest(system.peer.process_id)
        view = view_from_checkpoint(checkpoint)
        assert view.process_id == system.peer.process_id
        assert view.epoch == checkpoint.epoch
        assert view.work_done == checkpoint.work_done

    def test_live_view_reflects_current_state(self):
        system = run_system()
        view = live_view(system.peer)
        assert view.kind == "live"
        assert view.work_done == system.peer.progress
        assert view.snapshot.app_state.value == system.peer.component.state.value

    def test_dirty_bit_comes_from_snapshot(self):
        system = run_system()
        view = live_view(system.peer)
        assert view.dirty_bit == system.peer.mdcd.dirty_bit

    def test_truly_corrupt_reads_ground_truth(self):
        system = run_system()
        assert not live_view(system.peer).truly_corrupt


class TestLines:
    def test_stable_line_covers_all_processes(self):
        system = run_system()
        line = stable_line(system)
        assert len(line) == 3

    def test_stable_line_epoch_selection(self):
        system = run_system()
        line = stable_line(system, epoch=3)
        assert all(v.epoch == 3 for v in line.values())

    def test_stable_line_missing_epoch_falls_back_to_latest(self):
        system = run_system()
        line = stable_line(system, epoch=10_000)
        assert len(line) == 3

    def test_common_stable_line_uses_min_epoch(self):
        system = run_system()
        line = common_stable_line(system)
        epochs = {v.epoch for v in line.values()}
        assert len(epochs) == 1

    def test_volatile_line_skips_processes_without_checkpoint(self):
        system = run_system(horizon=1.0)  # nothing happened yet
        assert volatile_line(system) == {}

    def test_live_line_has_everyone(self):
        system = run_system()
        assert len(live_line(system)) == 3

    def test_deposed_excluded_from_lines(self):
        system = run_system(horizon=400.0, run=False)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.run(until=400.0)
        assert system.active.deposed
        assert system.active.process_id not in live_line(system)
        assert system.active.process_id not in stable_line(system)
