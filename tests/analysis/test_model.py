"""Unit tests for the closed-form rollback model."""

import pytest

from repro.analysis.model import (
    ModelParams,
    dirty_fraction,
    expected_rollback_coordinated,
    expected_rollback_write_through,
    improvement_factor,
    validation_rate,
)
from repro.errors import ConfigurationError


def params(**kw):
    defaults = dict(internal_rate1=0.001, external_rate1=0.01,
                    internal_rate2=0.001, external_rate2=0.002,
                    tb_interval=6.0)
    defaults.update(kw)
    return ModelParams(**defaults)


class TestValidation:
    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            params(internal_rate1=-1.0)

    def test_requires_active_external_rate(self):
        with pytest.raises(ConfigurationError):
            params(external_rate1=0.0)


class TestDirtyFraction:
    def test_zero_onset_is_never_dirty(self):
        assert dirty_fraction(0.0, 1.0) == 0.0

    def test_zero_validation_is_always_dirty(self):
        assert dirty_fraction(1.0, 0.0) == 1.0

    def test_balanced_rates_give_half(self):
        assert dirty_fraction(2.0, 2.0) == pytest.approx(0.5)

    def test_monotone_in_onset_rate(self):
        assert dirty_fraction(0.1, 1.0) < dirty_fraction(0.5, 1.0)


class TestValidationRate:
    def test_at_least_the_active_rate(self):
        assert validation_rate(params()) >= 0.01

    def test_bounded_by_total_external_rate(self):
        assert validation_rate(params()) <= 0.012 + 1e-12

    def test_fixed_point_consistency(self):
        p = params()
        lam = validation_rate(p)
        f_d2 = dirty_fraction(p.internal_rate1, lam)
        assert lam == pytest.approx(p.external_rate1
                                    + f_d2 * p.external_rate2, rel=1e-6)


class TestExpectations:
    def test_write_through_is_inverse_validation_rate(self):
        p = params()
        assert expected_rollback_write_through(p) == \
            pytest.approx(1.0 / validation_rate(p))

    def test_coordinated_has_interval_floor(self):
        p = params()
        assert expected_rollback_coordinated(p) >= p.tb_interval / 2.0

    def test_coordinated_grows_with_internal_rate(self):
        low = expected_rollback_coordinated(params(internal_rate1=0.0005))
        high = expected_rollback_coordinated(params(internal_rate1=0.01))
        assert high > low

    def test_gap_erodes_as_dirty_fraction_saturates(self):
        sparse = improvement_factor(params(internal_rate1=0.0005))
        saturated = improvement_factor(params(internal_rate1=1.0))
        assert sparse > 3.0
        assert saturated < sparse
        assert saturated < 1.5

    def test_small_interval_widens_gap(self):
        wide = improvement_factor(params(tb_interval=1.0))
        narrow = improvement_factor(params(tb_interval=50.0))
        assert wide > narrow
