"""Unit tests for the dependability model."""

import pytest

from repro.analysis.dependability import (
    FaultLoad,
    goodput,
    goodput_comparison,
    loss_rate,
    measure_goodput,
)
from repro.analysis.model import ModelParams
from repro.app.faults import HardwareFaultPlan
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.errors import ConfigurationError


class TestFaultLoad:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FaultLoad(hw_rate=-1.0)

    def test_defaults_to_no_faults(self):
        assert loss_rate(FaultLoad(), e_hw_rollback=100.0) == 0.0


class TestLossAndGoodput:
    def test_hardware_term(self):
        load = FaultLoad(hw_rate=0.001, repair_time=5.0)
        assert loss_rate(load, e_hw_rollback=95.0) == pytest.approx(0.1)

    def test_software_term(self):
        load = FaultLoad(sw_rate=0.001, sw_detection_latency=30.0,
                         sw_rollback=20.0)
        assert loss_rate(load, e_hw_rollback=0.0) == pytest.approx(0.05)

    def test_goodput_complements_loss(self):
        load = FaultLoad(hw_rate=0.001, repair_time=5.0)
        assert goodput(load, 95.0) == pytest.approx(0.9)

    def test_goodput_clamped_at_zero(self):
        load = FaultLoad(hw_rate=1.0, repair_time=10.0)
        assert goodput(load, 100.0) == 0.0

    def test_comparison_favours_coordination(self):
        params = ModelParams(internal_rate1=0.001, external_rate1=0.01,
                             internal_rate2=0.001, external_rate2=0.002,
                             tb_interval=6.0)
        load = FaultLoad(hw_rate=1.0 / 400.0, repair_time=5.0)
        result = goodput_comparison(params, load)
        assert result["coordinated"] > result["write-through"]
        assert result["goodput_gain"] > 0


class TestMeasuredGoodput:
    def test_fault_free_run_is_near_one(self):
        system = build_system(SystemConfig(scheme=Scheme.COORDINATED,
                                           seed=3, horizon=500.0))
        system.run()
        assert measure_goodput(system, 500.0) == pytest.approx(1.0, abs=1e-6)

    def test_crash_costs_repair_plus_rollback(self):
        horizon = 500.0
        system = build_system(SystemConfig(scheme=Scheme.COORDINATED,
                                           seed=3, horizon=horizon))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=250.0,
                                              repair_time=10.0))
        system.run()
        measured = measure_goodput(system, horizon)
        total_rolled = sum(system.hw_recovery.distances())
        # Survivors lose only their rollback; the crashed node loses its
        # rollback (measured to the crash) plus the 10 s outage.
        expected = 1.0 - (total_rolled + 10.0) / (3 * horizon)
        assert measured == pytest.approx(expected, abs=0.01)

    def test_empty_system_is_zero(self):
        system = build_system(SystemConfig(seed=1, horizon=10.0))
        system.run()
        for proc in system.process_list():
            proc.deposed = True
        assert measure_goodput(system, 10.0) == 0.0
