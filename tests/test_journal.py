"""Unit tests for the validity-view journal."""

from repro.journal import Journal
from repro.messages.message import Message
from repro.types import MessageKind, ProcessId


def msg(sn=None, sender="A", dirty=1):
    return Message(kind=MessageKind.INTERNAL, sender=ProcessId(sender),
                   receiver=ProcessId("B"), sn=sn, dirty_bit=dirty)


class TestAdd:
    def test_records_fields(self):
        journal = Journal()
        m = msg(sn=3)
        rec = journal.add(m, validated=False, time=1.5)
        assert rec.key == m.msg_id
        assert rec.sn == 3
        assert rec.sent_dirty == 1
        assert not rec.validated
        assert rec.time == 1.5

    def test_resend_maps_to_original_record(self):
        journal = Journal()
        m = msg()
        original = journal.add(m, validated=False, time=1.0)
        duplicate = journal.add(m.clone_for_resend(), validated=True, time=2.0)
        assert duplicate is original
        assert not original.validated  # the re-add refreshed nothing
        assert len(journal) == 1

    def test_contains_and_get(self):
        journal = Journal()
        m = msg()
        journal.add(m, validated=True, time=0.0)
        assert m.msg_id in journal
        assert journal.get(m.msg_id) is not None
        assert journal.get(999999) is None

    def test_dirty_bit_none_recorded_as_clean(self):
        journal = Journal()
        rec = journal.add(msg(dirty=None), validated=True, time=0.0)
        assert rec.sent_dirty == 0


class TestMarkValidated:
    def test_marks_all_from_sender(self):
        journal = Journal()
        journal.add(msg(sender="A"), validated=False, time=0.0)
        journal.add(msg(sender="C"), validated=False, time=0.0)
        changed = journal.mark_validated(ProcessId("A"))
        assert changed == 1
        assert len(journal.records(sender=ProcessId("A"), validated=True)) == 1
        assert len(journal.records(sender=ProcessId("C"), validated=False)) == 1

    def test_sn_bound_is_inclusive(self):
        journal = Journal()
        journal.add(msg(sn=1), validated=False, time=0.0)
        journal.add(msg(sn=2), validated=False, time=0.0)
        journal.add(msg(sn=3), validated=False, time=0.0)
        changed = journal.mark_validated(ProcessId("A"), up_to_sn=2)
        assert changed == 2
        assert [r.sn for r in journal.records(validated=False)] == [3]

    def test_null_sn_records_need_unbounded_marking(self):
        journal = Journal()
        journal.add(msg(sn=None), validated=False, time=0.0)
        assert journal.mark_validated(ProcessId("A"), up_to_sn=5) == 0
        assert journal.mark_validated(ProcessId("A")) == 1

    def test_idempotent(self):
        journal = Journal()
        journal.add(msg(sn=1), validated=False, time=0.0)
        journal.mark_validated(ProcessId("A"))
        assert journal.mark_validated(ProcessId("A")) == 0


class TestPruneAndDiscard:
    def test_prunes_only_old_validated(self):
        journal = Journal()
        old_valid = journal.add(msg(), validated=True, time=1.0)
        old_invalid = journal.add(msg(), validated=False, time=1.0)
        new_valid = journal.add(msg(), validated=True, time=10.0)
        removed = journal.prune_validated_before(5.0)
        assert removed == 1
        assert old_valid.key not in journal
        assert old_invalid.key in journal
        assert new_valid.key in journal

    def test_prune_horizon_is_monotonic(self):
        journal = Journal()
        journal.prune_validated_before(5.0)
        journal.prune_validated_before(3.0)
        assert journal.pruned_before == 5.0

    def test_discard_by_keys(self):
        journal = Journal()
        a = journal.add(msg(), validated=False, time=0.0)
        journal.add(msg(), validated=False, time=0.0)
        assert journal.discard([a.key, 123456]) == 1
        assert len(journal) == 1

    def test_keys_lists_all(self):
        journal = Journal()
        a = journal.add(msg(), validated=False, time=0.0)
        b = journal.add(msg(), validated=False, time=0.0)
        assert set(journal.keys()) == {a.key, b.key}
