"""Integration tests of the baseline schemes, including the failure
modes the paper attributes to them."""

from repro.analysis.global_state import common_stable_line
from repro.analysis.invariants import check_system_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig


def make_system(scheme, seed=13, horizon=2500.0):
    return build_system(SystemConfig(
        scheme=scheme, seed=seed, horizon=horizon,
        tb=TbConfig(interval=60.0),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.002,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.02, external_rate=0.001,
                                 step_rate=0.02, horizon=horizon)))


class TestMdcdOnly:
    def test_software_recovery_without_stable_storage(self):
        system = make_system(Scheme.MDCD_ONLY)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.run()
        assert system.sw_recovery.completed
        assert not system.peer.component.state.corrupt
        for proc in system.process_list():
            assert proc.node.stable.peek(proc.process_id) is None


class TestWriteThrough:
    def test_tolerates_both_fault_classes(self):
        system = make_system(Scheme.WRITE_THROUGH)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1500.0,
                                              repair_time=2.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.hw_recovery.recoveries == 1
        assert not system.peer.component.state.corrupt

    def test_rollback_distance_exceeds_coordinated_in_fig7_regime(self):
        """In the Figure 7 regime — validations frequent relative to
        internal messages, TB interval small against the validation gap
        — write-through undoes much more work per hardware fault.
        (Outside that regime the gap erodes; see ablation 5.)"""
        def total_distance(scheme):
            horizon = 4000.0
            system = build_system(SystemConfig(
                scheme=scheme, seed=21, horizon=horizon,
                tb=TbConfig(interval=8.0),
                workload1=WorkloadConfig(internal_rate=0.002,
                                         external_rate=0.05,
                                         step_rate=0.01, horizon=horizon),
                workload2=WorkloadConfig(internal_rate=0.001,
                                         external_rate=0.002,
                                         step_rate=0.01, horizon=horizon)))
            for k in range(5):
                system.inject_crash(HardwareFaultPlan(
                    node_id=("N1a", "N1b", "N2")[k % 3],
                    crash_at=600.0 * (k + 1), repair_time=1.0))
            system.run()
            assert system.hw_recovery.recoveries == 5
            return sum(system.hw_recovery.distances())

        assert total_distance(Scheme.WRITE_THROUGH) \
            > 2.0 * total_distance(Scheme.COORDINATED)


class TestNaiveCombination:
    def test_double_fault_leaves_contamination(self):
        """The Fig. 4(a) failure, end to end: after a crash restores a
        contaminated stable state (and volatile storage is gone), the
        subsequently detected software error cannot be recovered."""
        system = make_system(Scheme.NAIVE)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=400.0,
                                              repair_time=2.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.peer.component.state.corrupt
        assert system.trace.count("recovery.degraded_fallback") > 0

    def test_coordinated_survives_identical_faults(self):
        system = make_system(Scheme.COORDINATED)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=400.0,
                                              repair_time=2.0))
        system.run()
        assert system.sw_recovery.completed
        assert not system.peer.component.state.corrupt
        assert check_system_line(common_stable_line(system)) == []

    def test_naive_single_fault_classes_still_work(self):
        # The naive combination is not broken for *single* fault classes
        # — the interference needs both (that is the paper's point).
        crash_only = make_system(Scheme.NAIVE, seed=31)
        crash_only.inject_crash(HardwareFaultPlan(node_id="N2",
                                                  crash_at=1200.0))
        crash_only.run()
        assert not crash_only.peer.component.state.corrupt

        software_only = make_system(Scheme.NAIVE, seed=32)
        software_only.inject_software_fault(SoftwareFaultPlan(activate_at=200.0))
        software_only.run()
        assert software_only.sw_recovery.completed
        assert not software_only.peer.component.state.corrupt
