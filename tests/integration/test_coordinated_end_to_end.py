"""End-to-end integration tests of the coordinated scheme.

These run whole systems over realistic workloads and check the global
outcomes the paper promises: valid stable lines, clean recovery from
each fault class alone and in combination, and continued operation
afterwards.
"""

import pytest

from repro.analysis.global_state import common_stable_line, live_line, stable_line
from repro.analysis.invariants import check_ground_truth, check_system_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig


def make_system(seed=5, horizon=4000.0, scheme=Scheme.COORDINATED,
                interval=60.0, **extra):
    config = SystemConfig(
        scheme=scheme, seed=seed, horizon=horizon,
        tb=TbConfig(interval=interval),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.03, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        **extra)
    return build_system(config)


class TestFaultFreeOperation:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_stable_lines_valid_across_seeds(self, seed):
        system = make_system(seed=seed)
        system.run()
        assert check_system_line(common_stable_line(system)) == []

    def test_no_recoveries_without_faults(self):
        system = make_system()
        system.run()
        assert system.hw_recovery.recoveries == 0
        assert not system.sw_recovery.completed

    def test_ground_truth_clean_throughout(self):
        system = make_system()
        system.run()
        assert check_ground_truth(live_line(system)) == []

    def test_shadow_mirrors_active(self):
        system = make_system()
        system.run()
        assert (system.shadow.component.state.value
                == system.active.component.state.value)


class TestHardwareFaultsOnly:
    @pytest.mark.parametrize("node", ["N1a", "N1b", "N2"])
    def test_single_crash_recovers_any_node(self, node):
        system = make_system()
        system.inject_crash(HardwareFaultPlan(node_id=node, crash_at=1500.0,
                                              repair_time=2.0))
        system.run()
        assert system.hw_recovery.recoveries == 1
        assert check_system_line(common_stable_line(system)) == []
        for proc in system.process_list():
            assert not proc.component.state.corrupt

    def test_rollback_bounded_by_interval_plus_contamination(self):
        system = make_system(interval=60.0)
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1500.0))
        system.run()
        for distance in system.hw_recovery.distances():
            # One interval back, plus at most the current contamination
            # span (bounded here by the validation gap ~ 1/0.02).
            assert distance < 60.0 + 300.0

    def test_post_recovery_checkpointing_continues(self):
        system = make_system()
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=500.0))
        system.run()
        final_epochs = [p.hardware.ndc for p in system.process_list()]
        assert min(final_epochs) > 10


class TestSoftwareFaultOnly:
    def test_takeover_and_clean_continuation(self):
        system = make_system()
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.active.deposed
        for proc in (system.shadow, system.peer):
            assert not proc.component.state.corrupt
        # The device world never saw a corrupt external message (AT
        # coverage is 1.0).
        assert all(not m.corrupt for m in system.network.device_log)

    def test_stable_lines_valid_after_takeover(self):
        system = make_system()
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0))
        system.run()
        assert check_system_line(common_stable_line(system)) == []

    def test_transient_fault_window_also_recovered(self):
        system = make_system()
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0,
                                                       deactivate_at=1100.0))
        system.run()
        # Whether or not an AT ran inside the window, ground truth must
        # be clean at the end for the trusted processes.
        for proc in (system.shadow, system.peer):
            assert not proc.component.state.corrupt


class TestCombinedFaults:
    def test_crash_then_software_fault(self):
        system = make_system(horizon=6000.0)
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1000.0))
        system.inject_software_fault(SoftwareFaultPlan(activate_at=3000.0))
        system.run()
        assert system.hw_recovery.recoveries == 1
        assert system.sw_recovery.completed
        for proc in (system.shadow, system.peer):
            assert not proc.component.state.corrupt

    def test_software_fault_then_crash(self):
        system = make_system(horizon=6000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1b", crash_at=3500.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.hw_recovery.recoveries == 1
        for proc in (system.shadow, system.peer):
            assert not proc.component.state.corrupt
        assert check_system_line(common_stable_line(system)) == []

    def test_crash_of_every_node_in_sequence(self):
        system = make_system(horizon=8000.0)
        for i, node in enumerate(["N1a", "N1b", "N2"]):
            system.inject_crash(HardwareFaultPlan(node_id=node,
                                                  crash_at=1000.0 * (i + 1),
                                                  repair_time=2.0))
        system.run()
        assert system.hw_recovery.recoveries == 3
        assert check_system_line(common_stable_line(system)) == []


class TestEveryEpochAudit:
    def test_all_retained_lines_valid_under_load(self):
        system = make_system(seed=11, horizon=3000.0, interval=30.0,
                             stable_history=200)
        system.run()
        common = None
        for proc in system.process_list():
            epochs = set(proc.node.stable.epochs(proc.process_id))
            common = epochs if common is None else common & epochs
        checked = 0
        for epoch in sorted(common):
            line = stable_line(system, epoch=epoch)
            if len(line) < 3:
                continue
            checked += 1
            assert check_system_line(line) == [], f"epoch {epoch}"
        assert checked > 50
