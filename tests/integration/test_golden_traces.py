"""Golden-trace regression: the Fig. 6 cases are byte-stable.

The pinned digests in ``tests/golden/fig6_traces.json`` fingerprint the
canonical protocol trace of six deterministic coordinated runs (clean,
two crash topologies, software takeover, coincident fault, clock-skew
extreme).  They must not change across repeated runs in one process,
across worker processes, or across unrelated work that happens to run
first (the per-run message-id reset) — the same determinism the audit
campaign's replayable artifacts depend on.

If a protocol change legitimately alters an execution, regenerate with:

    PYTHONPATH=src python -c "
    import json
    from repro.audit import GOLDEN_CONFIG, golden_digests
    from repro.topology.model import parse_topology
    topo = parse_topology(GOLDEN_CONFIG.topology)
    print(json.dumps({'config_fingerprint': GOLDEN_CONFIG.fingerprint(),
                      'topology_fingerprint': topo.fingerprint(),
                      'digests': golden_digests()}, indent=2, sort_keys=True))
    " > tests/golden/fig6_traces.json
"""

import json
import pathlib

import pytest

from repro.audit import GOLDEN_CONFIG, golden_digests, golden_schedules
from repro.audit.campaign import build_audit_system
from repro.audit.golden import canonical_trace_lines, trace_digest
from repro.topology.model import Topology, parse_topology

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "golden" / "fig6_traces.json")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def serial_digests():
    return golden_digests()


class TestGoldenTraces:
    def test_config_unchanged(self, golden):
        assert golden["config_fingerprint"] == GOLDEN_CONFIG.fingerprint(), \
            "GOLDEN_CONFIG changed — regenerate tests/golden/fig6_traces.json"

    def test_digests_keyed_to_paper_topology(self, golden):
        # The pinned digests are the *paper topology's* digests,
        # provably: the golden file pins the topology fingerprint, the
        # golden config builds exactly that membership, and
        # Topology.paper() still canonicalizes to it.  Any membership
        # drift (roles, nodes, components, ranks) changes the
        # fingerprint and fails here before it could silently re-key
        # the digests.
        assert golden["topology_fingerprint"] == \
            Topology.paper().fingerprint(), \
            "Topology.paper() changed — the pinned 3-process digests " \
            "no longer describe the default membership"
        assert parse_topology(GOLDEN_CONFIG.topology).fingerprint() == \
            golden["topology_fingerprint"]

    def test_non_paper_topologies_key_differently(self, golden):
        # Fingerprints separate shapes: results computed on any
        # non-paper membership can never collide with the pinned set.
        for spec in ("1x2+1", "2x2", "2x2+3", "4x4+5"):
            assert parse_topology(spec).fingerprint() != \
                golden["topology_fingerprint"]

    def test_six_cases_pinned(self, golden):
        assert len(golden["digests"]) == 6
        assert set(golden["digests"]) == {s.label for s in golden_schedules()}

    def test_digests_match_golden(self, golden, serial_digests):
        assert serial_digests == golden["digests"]

    def test_repeat_run_in_same_process_identical(self, serial_digests):
        # The per-run message-id reset makes a second run byte-identical
        # even though earlier runs consumed ids from the allocator.
        assert golden_digests() == serial_digests

    def test_worker_processes_identical(self, golden):
        assert golden_digests(workers=2) == golden["digests"]

    def test_cases_exercise_the_recovery_machinery(self):
        by_label = {s.label: s for s in golden_schedules()}
        software = build_audit_system(GOLDEN_CONFIG, by_label["fig6:software"])
        software.run()
        assert software.sw_recovery.completed
        coincident = build_audit_system(GOLDEN_CONFIG,
                                        by_label["fig6:coincident"])
        coincident.run()
        assert coincident.sw_recovery.completed
        assert coincident.hw_recovery.recoveries >= 1

    def test_canonical_lines_are_sorted_fields(self):
        system = build_audit_system(GOLDEN_CONFIG, golden_schedules()[0])
        system.run()
        lines = canonical_trace_lines(system)
        assert lines
        digest = trace_digest(lines)
        assert digest == trace_digest(list(lines))  # pure function
        for line in lines:
            time_str = line.split()[0]
            float(time_str)  # canonical fixed-precision times
