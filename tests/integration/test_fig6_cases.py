"""Deterministic constructions of the paper's Fig. 6 configurations.

Fig. 6 shows four timer/dirty-bit configurations of a stable-checkpoint
establishment under coordination; each case is built here explicitly and
its contents and line validity asserted.  Case (b) — the mid-blocking
swap — has its own construction in
``repro.experiments.scenarios.figure4b_in_transit_notification``.
"""

import pytest

from repro.analysis.global_state import stable_line
from repro.analysis.invariants import check_system_line
from repro.app.workload import Action, ActionKind, WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.sim.clock import ClockConfig
from repro.tb.blocking import TbConfig
from repro.types import StableContent


def manual_system(seed=2):
    horizon = 60.0
    config = SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        clock=ClockConfig(delta=0.01, rho=1e-6),
        tb=TbConfig(interval=10.0),
        workload1=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.001, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.001, horizon=horizon),
        stable_history=100)
    system = build_system(config)
    system.start()
    return system


def act(kind=ActionKind.SEND_INTERNAL, stimulus=5):
    return Action(index=10_000_000, kind=kind, gap=0.0, stimulus=stimulus)


def run_to_epoch(system, epoch):
    system.sim.run(until=10.0 * epoch + 2.0)
    line = stable_line(system, epoch=epoch)
    assert len(line) == 3
    return line


def content_of(system, proc, epoch):
    return proc.node.stable.at_epoch(proc.process_id, epoch).content


class TestFig6Cases:
    def test_case_a_peer_dirty_shadow_clean(self):
        """Fig. 6(a): the shadow saves its current state, the dirty P2
        copies its volatile checkpoint — and the pair is consistent
        because both reflect the same validated history."""
        system = manual_system()
        # P1_act contaminates P2 only; the shadow hears nothing dirty.
        system.sim.schedule_at(
            3.0, lambda: system.active.software.on_send_internal(act()))
        line = run_to_epoch(system, 1)
        assert content_of(system, system.shadow, 1) is StableContent.CURRENT_STATE
        assert content_of(system, system.peer, 1) is StableContent.VOLATILE_COPY
        assert content_of(system, system.active, 1) is StableContent.VOLATILE_COPY
        assert check_system_line(line) == []
        # P2's copied state predates the contamination entirely.
        peer_view = line[system.peer.process_id]
        assert peer_view.snapshot.app_state.inputs_applied == 0
        assert not peer_view.truly_corrupt

    def test_case_c_all_clean_after_validation(self):
        """Fig. 6(c): a validation before the expiry leaves every
        process clean; everyone saves the current state (the original
        TB behaviour)."""
        system = manual_system()
        system.sim.schedule_at(
            3.0, lambda: system.active.software.on_send_internal(act()))
        system.sim.schedule_at(
            5.0, lambda: system.active.software.on_send_external(
                act(kind=ActionKind.SEND_EXTERNAL)))
        line = run_to_epoch(system, 1)
        for proc in system.process_list():
            assert content_of(system, proc, 1) is StableContent.CURRENT_STATE
        assert check_system_line(line) == []
        # The peer's saved state reflects the (validated) message.
        assert line[system.peer.process_id].snapshot.app_state.inputs_applied == 1

    def test_case_d_active_validated_peer_still_dirty(self):
        """Fig. 6(d)-shaped: the active validated late, P2 contaminated
        again afterwards — the active saves current state, P2 copies its
        fresh volatile checkpoint; the line stays valid."""
        system = manual_system()
        timeline = [
            (3.0, lambda: system.active.software.on_send_internal(act())),
            (5.0, lambda: system.active.software.on_send_external(
                act(kind=ActionKind.SEND_EXTERNAL))),   # validation
            (7.0, lambda: system.active.software.on_send_internal(act())),
        ]
        for t, fn in timeline:
            system.sim.schedule_at(t, fn)
        line = run_to_epoch(system, 1)
        assert content_of(system, system.active, 1) is StableContent.VOLATILE_COPY
        assert content_of(system, system.peer, 1) is StableContent.VOLATILE_COPY
        assert check_system_line(line) == []
        # Both copied states reflect the validated first message but not
        # the second (unvalidated) one — the brackets line up.
        peer_snapshot = line[system.peer.process_id].snapshot
        active_snapshot = line[system.active.process_id].snapshot
        assert peer_snapshot.app_state.inputs_applied == 1
        assert active_snapshot.sn_value == 2  # external counted; sn 3 unsent

    def test_case_b_swap_reference(self):
        """Fig. 6(b) is exercised by the Fig. 4(b) construction; assert
        the swap machinery exists and is reachable (the full scenario
        lives in the experiments package)."""
        from repro.experiments.scenarios import _run_in_transit_case
        for seed in range(10):
            outcome = _run_in_transit_case(swap=True, seed=seed)
            if outcome is not None and outcome[1].get("swapped"):
                assert outcome[0]  # line clean with the swap
                return
        pytest.fail("no seed produced the swap window")
