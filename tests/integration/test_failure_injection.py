"""Failure-injection hardening: adversarial fault timings and detector
imperfections that stress the recovery paths' edge cases."""

import pytest

from repro.analysis.global_state import common_stable_line
from repro.analysis.invariants import check_system_line
from repro.app.acceptance import AcceptanceTestConfig
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig


def make_system(seed=5, horizon=4000.0, at=None, interval=30.0):
    config = SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        tb=TbConfig(interval=interval),
        at=at if at is not None else AcceptanceTestConfig(),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.03, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon))
    return build_system(config)


class TestAdversarialCrashTimings:
    def test_crash_exactly_at_timer_boundary(self):
        # Timers expire near multiples of the interval; crash right there.
        system = make_system(interval=30.0)
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=900.0,
                                              repair_time=1.0))
        system.run()
        assert system.hw_recovery.recoveries == 1
        assert check_system_line(common_stable_line(system)) == []

    def test_crash_during_repair_of_another_node(self):
        system = make_system()
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1000.0,
                                              repair_time=10.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1a", crash_at=1005.0,
                                              repair_time=10.0))
        system.run()
        assert system.hw_recovery.recoveries == 2
        assert check_system_line(common_stable_line(system)) == []
        for proc in system.process_list():
            assert not proc.component.state.corrupt

    def test_rapid_fire_crashes_same_node(self):
        system = make_system(horizon=6000.0)
        for k in range(5):
            system.inject_crash(HardwareFaultPlan(
                node_id="N2", crash_at=800.0 + 400.0 * k, repair_time=1.0))
        system.run()
        assert system.hw_recovery.recoveries == 5
        assert all(d >= 0 for d in system.hw_recovery.distances())

    def test_crash_immediately_after_software_fault_activation(self):
        system = make_system()
        system.inject_software_fault(SoftwareFaultPlan(activate_at=1000.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1a", crash_at=1001.0,
                                              repair_time=1.0))
        system.run()
        # The fault lives in code: rolling the active back does not
        # remove it, and the AT eventually catches it.
        assert system.sw_recovery.completed
        for proc in (system.shadow, system.peer):
            assert not proc.component.state.corrupt

    def test_crash_of_shadow_node_after_takeover(self):
        system = make_system(horizon=6000.0)
        system.inject_software_fault(SoftwareFaultPlan(activate_at=800.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1b", crash_at=4000.0,
                                              repair_time=1.0))
        system.run()
        assert system.sw_recovery.completed
        assert system.hw_recovery.recoveries == 1
        # The promoted shadow recovered from its stable checkpoints.
        assert not system.shadow.component.state.corrupt


class TestDetectorImperfections:
    def test_false_alarm_triggers_benign_takeover(self):
        system = make_system(at=AcceptanceTestConfig(false_alarm=0.2))
        system.run()
        # A false alarm deposes a healthy active — wasteful but safe.
        if system.sw_recovery.completed:
            for proc in (system.shadow, system.peer):
                assert not proc.component.state.corrupt
        assert all(not m.corrupt for m in system.network.device_log)

    def test_low_coverage_eventually_detects(self):
        system = make_system(seed=8, horizon=20_000.0,
                             at=AcceptanceTestConfig(coverage=0.4))
        system.inject_software_fault(SoftwareFaultPlan(activate_at=2000.0))
        system.run()
        # Detection may be delayed (an AT miss lets a corrupt external
        # escape), but with repeated ATs it happens with overwhelming
        # probability — and escapes line up exactly with recorded misses.
        assert system.sw_recovery.completed
        escaped = sum(1 for m in system.network.device_log if m.corrupt)
        misses = (system.active.software.at.misses
                  + system.peer.software.at.misses)
        assert escaped == misses

    def test_zero_coverage_never_detects(self):
        system = make_system(at=AcceptanceTestConfig(coverage=0.0))
        system.inject_software_fault(SoftwareFaultPlan(activate_at=500.0))
        system.run()
        assert not system.sw_recovery.completed
        assert system.peer.component.state.corrupt  # honest worst case


class TestDegenerateConfigurations:
    def test_zero_delay_network(self):
        from repro.sim.network import NetworkConfig
        system = build_system(SystemConfig(
            scheme=Scheme.COORDINATED, seed=3, horizon=500.0,
            network=NetworkConfig(t_min=0.0, t_max=0.0),
            tb=TbConfig(interval=20.0)))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=250.0))
        system.run()
        assert system.hw_recovery.recoveries == 1

    def test_perfect_clocks(self):
        from repro.sim.clock import ClockConfig
        system = build_system(SystemConfig(
            scheme=Scheme.COORDINATED, seed=3, horizon=500.0,
            clock=ClockConfig(delta=0.0, rho=0.0),
            tb=TbConfig(interval=20.0)))
        system.run()
        assert check_system_line(common_stable_line(system)) == []

    def test_tiny_interval_many_epochs(self):
        system = build_system(SystemConfig(
            scheme=Scheme.COORDINATED, seed=3, horizon=300.0,
            tb=TbConfig(interval=1.0)))
        system.run()
        assert all(p.hardware.ndc >= 295 for p in system.process_list())
