"""Unit tests for fault injection."""

import pytest

from repro.app.faults import (
    HardwareFaultInjector,
    HardwareFaultPlan,
    SoftwareFaultInjector,
    SoftwareFaultPlan,
    poisson_crash_plan,
)
from repro.app.versions import LowConfidenceVersion
from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry


class TestSoftwareFaultPlan:
    def test_rejects_negative_activation(self):
        with pytest.raises(ConfigurationError):
            SoftwareFaultPlan(activate_at=-1.0)

    def test_rejects_deactivation_before_activation(self):
        with pytest.raises(ConfigurationError):
            SoftwareFaultPlan(activate_at=5.0, deactivate_at=4.0)


class TestSoftwareInjector:
    def test_activates_at_time(self, sim):
        version = LowConfidenceVersion()
        injector = SoftwareFaultInjector(sim, version,
                                         SoftwareFaultPlan(activate_at=10.0))
        injector.arm()
        sim.run(until=9.0)
        assert not version.fault_active
        sim.run()
        assert version.fault_active
        assert injector.activated

    def test_transient_window_deactivates(self, sim):
        version = LowConfidenceVersion()
        SoftwareFaultInjector(sim, version,
                              SoftwareFaultPlan(activate_at=5.0,
                                                deactivate_at=8.0)).arm()
        sim.run(until=6.0)
        assert version.fault_active
        sim.run()
        assert not version.fault_active

    def test_traces_activation(self, sim, trace):
        version = LowConfidenceVersion()
        SoftwareFaultInjector(sim, version,
                              SoftwareFaultPlan(activate_at=1.0), trace).arm()
        sim.run()
        assert trace.count("fault.software.activate") == 1


class TestHardwareFaultPlan:
    def test_rejects_negative_times(self):
        with pytest.raises(ConfigurationError):
            HardwareFaultPlan(node_id="N", crash_at=-1.0)
        with pytest.raises(ConfigurationError):
            HardwareFaultPlan(node_id="N", crash_at=1.0, repair_time=-1.0)


class TestHardwareInjector:
    def test_wrong_node_rejected(self, sim, make_node):
        node = make_node("N1")
        with pytest.raises(ConfigurationError):
            HardwareFaultInjector(sim, node,
                                  HardwareFaultPlan(node_id="other", crash_at=1.0))

    def test_crash_and_restart_cycle(self, sim, make_node):
        node = make_node("N1")
        HardwareFaultInjector(sim, node,
                              HardwareFaultPlan(node_id="N1", crash_at=2.0,
                                                repair_time=3.0)).arm()
        sim.run(until=2.5)
        assert node.crashed
        sim.run()
        assert not node.crashed

    def test_traces_crash_and_restart(self, sim, make_node, trace):
        node = make_node("N1")
        HardwareFaultInjector(sim, node,
                              HardwareFaultPlan(node_id="N1", crash_at=1.0,
                                                repair_time=1.0), trace).arm()
        sim.run()
        assert trace.count("fault.crash") == 1
        assert trace.count("fault.restart") == 1


class TestPoissonCrashPlan:
    def test_zero_rate_gives_no_crashes(self):
        rng = RngRegistry(1).stream("c")
        assert poisson_crash_plan(0.0, 1000.0, ["N1"], rng) == []

    def test_negative_rate_rejected(self):
        rng = RngRegistry(1).stream("c")
        with pytest.raises(ConfigurationError):
            poisson_crash_plan(-1.0, 1000.0, ["N1"], rng)

    def test_plans_within_horizon_on_known_nodes(self):
        rng = RngRegistry(1).stream("c")
        plans = poisson_crash_plan(0.01, 5000.0, ["N1", "N2"], rng)
        assert plans
        assert all(0 <= p.crash_at < 5000.0 for p in plans)
        assert all(p.node_id in ("N1", "N2") for p in plans)

    def test_rate_roughly_matches(self):
        rng = RngRegistry(3).stream("c")
        plans = poisson_crash_plan(0.01, 50_000.0, ["N1"], rng)
        assert 350 < len(plans) < 650  # ~500 expected
