"""Unit tests for acceptance tests."""

import pytest

from repro.app.acceptance import AcceptanceTest, AcceptanceTestConfig
from repro.app.component import Payload
from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry


def make_at(coverage=1.0, false_alarm=0.0, seed=1):
    return AcceptanceTest(AcceptanceTestConfig(coverage=coverage,
                                               false_alarm=false_alarm),
                          RngRegistry(seed), "t")


class TestConfig:
    def test_rejects_bad_coverage(self):
        with pytest.raises(ConfigurationError):
            AcceptanceTestConfig(coverage=1.5)

    def test_rejects_bad_false_alarm(self):
        with pytest.raises(ConfigurationError):
            AcceptanceTestConfig(false_alarm=-0.1)


class TestPerfectDetector:
    def test_detects_corrupt(self):
        at = make_at()
        assert at.test(Payload(1, corrupt=True)) is False
        assert at.detections == 1

    def test_passes_clean(self):
        at = make_at()
        assert at.test(Payload(1)) is True
        assert at.passes == 1

    def test_counters(self):
        at = make_at()
        at.test(Payload(1))
        at.test(Payload(1, corrupt=True))
        assert at.runs == 2
        assert at.passes == 1
        assert at.detections == 1
        assert at.misses == 0
        assert at.false_alarms == 0


class TestImperfectDetector:
    def test_zero_coverage_misses_everything(self):
        at = make_at(coverage=0.0)
        for _ in range(20):
            assert at.test(Payload(1, corrupt=True)) is True
        assert at.misses == 20

    def test_partial_coverage_statistics(self):
        at = make_at(coverage=0.5, seed=42)
        results = [at.test(Payload(1, corrupt=True)) for _ in range(400)]
        detected = results.count(False)
        assert 140 < detected < 260  # ~200 expected

    def test_false_alarms_fire_on_clean(self):
        at = make_at(false_alarm=1.0)
        assert at.test(Payload(1)) is False
        assert at.false_alarms == 1

    def test_partial_false_alarm_statistics(self):
        at = make_at(false_alarm=0.1, seed=7)
        results = [at.test(Payload(1)) for _ in range(500)]
        alarms = results.count(False)
        assert 20 < alarms < 90  # ~50 expected

    def test_determinism_per_seed(self):
        a = make_at(coverage=0.5, seed=9)
        b = make_at(coverage=0.5, seed=9)
        pa = [a.test(Payload(1, corrupt=True)) for _ in range(50)]
        pb = [b.test(Payload(1, corrupt=True)) for _ in range(50)]
        assert pa == pb
