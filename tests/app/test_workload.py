"""Unit tests for workload generation and the replayable driver."""

import pytest

from repro.app.workload import (
    Action,
    ActionKind,
    WorkloadConfig,
    WorkloadDriver,
    generate_actions,
)
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class TestConfig:
    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(internal_rate=-1.0)

    def test_rejects_all_zero_rates(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(internal_rate=0, external_rate=0, step_rate=0)

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(horizon=0)


class TestGeneration:
    def config(self):
        return WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                              step_rate=0.02, horizon=20_000.0)

    def test_deterministic_per_seed_and_name(self):
        a = generate_actions(self.config(), RngRegistry(5), "s")
        b = generate_actions(self.config(), RngRegistry(5), "s")
        assert a == b

    def test_name_gives_independent_streams(self):
        a = generate_actions(self.config(), RngRegistry(5), "s1")
        b = generate_actions(self.config(), RngRegistry(5), "s2")
        assert a != b

    def test_gaps_reconstruct_increasing_times(self):
        actions = generate_actions(self.config(), RngRegistry(5), "s")
        t = 0.0
        for action in actions:
            assert action.gap >= 0
            t += action.gap
        assert t < 20_000.0

    def test_indices_are_sequential(self):
        actions = generate_actions(self.config(), RngRegistry(5), "s")
        assert [a.index for a in actions] == list(range(len(actions)))

    def test_rates_roughly_match(self):
        actions = generate_actions(self.config(), RngRegistry(5), "s")
        internal = sum(1 for a in actions if a.kind is ActionKind.SEND_INTERNAL)
        expected = 0.05 * 20_000
        assert 0.7 * expected < internal < 1.3 * expected

    def test_zero_rate_kind_is_absent(self):
        config = WorkloadConfig(internal_rate=0.05, external_rate=0.0,
                                step_rate=0.0, horizon=10_000.0)
        actions = generate_actions(config, RngRegistry(5), "s")
        assert all(a.kind is ActionKind.SEND_INTERNAL for a in actions)


class Target:
    """Records performed actions; can trigger driver callbacks inline."""

    def __init__(self, driver=None):
        self.performed = []
        self.driver = driver
        self.on_perform = None

    def perform_action(self, action):
        self.performed.append(action.index)
        if self.on_perform is not None:
            self.on_perform(action)


def make_driver(n=5, gap=1.0):
    sim = Simulator()
    actions = [Action(index=i, kind=ActionKind.LOCAL_STEP, gap=gap, stimulus=i)
               for i in range(n)]
    driver = WorkloadDriver(sim, actions, "t")
    target = Target(driver)
    return sim, driver, target


class TestDriver:
    def test_executes_all_in_order(self):
        sim, driver, target = make_driver()
        driver.start(target)
        sim.run()
        assert target.performed == [0, 1, 2, 3, 4]
        assert driver.exhausted

    def test_gaps_pace_execution(self):
        sim, driver, target = make_driver(n=3, gap=2.0)
        driver.start(target)
        sim.run()
        assert sim.now == pytest.approx(6.0)

    def test_pause_stops_and_resume_continues(self):
        sim, driver, target = make_driver()
        driver.start(target)
        sim.schedule_at(2.5, driver.pause)
        sim.run()
        assert target.performed == [0, 1]
        driver.resume()
        sim.run()
        assert target.performed == [0, 1, 2, 3, 4]

    def test_rewind_re_executes(self):
        sim, driver, target = make_driver()
        driver.start(target)
        sim.run(until=3.5)  # performed 0,1,2
        driver.rewind_to(1)
        sim.run()
        assert target.performed == [0, 1, 2, 1, 2, 3, 4]
        assert driver.executed == 7

    def test_rewind_during_action_wins_over_cursor_advance(self):
        sim, driver, target = make_driver()

        def rewinder(action):
            if action.index == 2 and driver.executed <= 3:
                driver.rewind_to(0)

        target.on_perform = rewinder
        driver.start(target)
        sim.run()
        assert target.performed == [0, 1, 2, 0, 1, 2, 3, 4]

    def test_remaining(self):
        sim, driver, target = make_driver()
        driver.start(target)
        sim.run(until=1.5)
        assert driver.remaining() == 4

    def test_resume_without_pause_is_noop(self):
        sim, driver, target = make_driver()
        driver.start(target)
        driver.resume()
        sim.run()
        assert target.performed == [0, 1, 2, 3, 4]
