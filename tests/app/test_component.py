"""Unit tests for the deterministic application components."""

import itertools

from repro.app.component import ApplicationComponent, AppState, Payload
from repro.app.versions import HighConfidenceVersion


def component(name="c"):
    return ApplicationComponent(name, HighConfidenceVersion("v"))


class TestAppState:
    def test_apply_payload_accumulates(self):
        state = AppState()
        state.apply_payload(Payload(5))
        state.apply_payload(Payload(7))
        assert state.value == 12
        assert state.inputs_applied == 2

    def test_corrupt_payload_contaminates(self):
        state = AppState()
        state.apply_payload(Payload(1, corrupt=True))
        assert state.corrupt

    def test_contamination_is_sticky(self):
        state = AppState()
        state.apply_payload(Payload(1, corrupt=True))
        state.apply_payload(Payload(1, corrupt=False))
        assert state.corrupt

    def test_commutativity_of_inputs(self):
        payloads = [Payload(3), Payload(11), Payload(-4)]
        results = set()
        for perm in itertools.permutations(payloads):
            state = AppState()
            for p in perm:
                state.apply_payload(p)
            results.add(state.value)
        assert len(results) == 1

    def test_steps_and_inputs_commute(self):
        a, b = AppState(), AppState()
        a.apply_step(9)
        a.apply_payload(Payload(5))
        b.apply_payload(Payload(5))
        b.apply_step(9)
        assert a.value == b.value


class TestComponent:
    def test_replicas_converge_on_same_inputs(self):
        left, right = component(), component()
        for stim in (1, 2, 3):
            left.local_step(stim)
            right.local_step(stim)
        left.receive_internal(Payload(10))
        right.receive_internal(Payload(10))
        assert left.state.value == right.state.value

    def test_produced_payload_is_deterministic(self):
        left, right = component(), component()
        assert left.produce_internal(42).value == right.produce_internal(42).value

    def test_external_inherits_state_corruption(self):
        comp = component()
        comp.receive_internal(Payload(1, corrupt=True))
        assert comp.produce_external(5).corrupt

    def test_clean_state_produces_clean_payloads(self):
        comp = component()
        comp.local_step(3)
        assert not comp.produce_external(5).corrupt

    def test_snapshot_restore_roundtrip(self):
        comp = component()
        comp.local_step(1)
        snapshot = comp.snapshot()
        comp.local_step(2)
        comp.restore(snapshot)
        assert comp.state.steps_applied == 1

    def test_snapshot_is_unaliased(self):
        comp = component()
        snapshot = comp.snapshot()
        comp.local_step(1)
        assert snapshot.steps_applied == 0

    def test_describe_summarizes(self):
        info = component("telemetry").describe()
        assert info["name"] == "telemetry"
        assert info["corrupt"] is False
