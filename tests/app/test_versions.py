"""Unit tests for software versions and design-fault behaviour."""

from repro.app.component import AppState
from repro.app.versions import HighConfidenceVersion, LowConfidenceVersion


class TestHighConfidence:
    def test_never_corrupts_clean_state(self):
        version = HighConfidenceVersion("good")
        state = AppState()
        payload = version.compute(state, 7)
        assert not payload.corrupt
        assert not state.corrupt

    def test_propagates_existing_contamination(self):
        version = HighConfidenceVersion("good")
        state = AppState(corrupt=True)
        assert version.compute(state, 7).corrupt


class TestLowConfidence:
    def test_correct_until_activated(self):
        low = LowConfidenceVersion()
        high = HighConfidenceVersion("ref")
        state_low, state_high = AppState(), AppState()
        assert low.compute(state_low, 5).value == high.compute(state_high, 5).value
        assert not state_low.corrupt

    def test_activation_perturbs_and_contaminates(self):
        low = LowConfidenceVersion()
        reference = HighConfidenceVersion("ref")
        low.fault_active = True
        state = AppState()
        ref_state = AppState()
        payload = low.compute(state, 5)
        assert payload.corrupt
        assert payload.value != reference.compute(ref_state, 5).value
        assert state.corrupt

    def test_fault_count_tracks_faulty_computes(self):
        low = LowConfidenceVersion()
        low.fault_active = True
        state = AppState()
        low.compute(state, 1)
        low.compute(state, 2)
        assert low.fault_count == 2

    def test_fault_lives_in_code_not_state(self):
        # Restoring a pre-fault state snapshot does not deactivate the
        # defect: the next computation is faulty again.
        low = LowConfidenceVersion()
        clean_state = AppState()
        low.fault_active = True
        restored = AppState()  # as if rolled back
        assert low.compute(restored, 3).corrupt

    def test_deactivation_restores_correctness(self):
        low = LowConfidenceVersion()
        low.fault_active = True
        low.fault_active = False
        state = AppState()
        assert not low.compute(state, 3).corrupt
