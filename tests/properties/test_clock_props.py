"""Property-based tests for clocks and blocking-period bounds."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import ClockConfig, DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.network import NetworkConfig
from repro.sim.rng import RngRegistry
from repro.tb.blocking import blocking_period, message_delay_term


clock_configs = st.builds(
    ClockConfig,
    delta=st.floats(min_value=0.0, max_value=1.0),
    rho=st.floats(min_value=0.0, max_value=1e-3))

net_configs = st.builds(
    lambda lo, width: NetworkConfig(t_min=lo, t_max=lo + width),
    lo=st.floats(min_value=0.0, max_value=0.1),
    width=st.floats(min_value=0.0, max_value=0.5))


class TestClockProperties:
    @given(clock_configs, st.integers(min_value=0, max_value=500),
           st.floats(min_value=0.0, max_value=1e5))
    def test_pairwise_skew_within_bound(self, config, seed, elapsed):
        sim = Simulator()
        reg = RngRegistry(seed)
        a = DriftingClock(sim, config, reg, "a")
        b = DriftingClock(sim, config, reg, "b")
        skew = abs(a.read(elapsed) - b.read(elapsed))
        assert skew <= config.max_skew(elapsed) + 1e-9

    @given(clock_configs, st.integers(min_value=0, max_value=100),
           st.floats(min_value=0.0, max_value=1e5))
    def test_conversion_roundtrip(self, config, seed, t):
        sim = Simulator()
        clock = DriftingClock(sim, config, RngRegistry(seed), "c")
        assert clock.true_time_of(clock.read(t)) == pytest.approx(t, abs=1e-6)

    @given(clock_configs, st.integers(min_value=0, max_value=100))
    def test_local_time_strictly_increases(self, config, seed):
        sim = Simulator()
        clock = DriftingClock(sim, config, RngRegistry(seed), "c")
        readings = [clock.read(t) for t in (0.0, 1.0, 10.0, 100.0)]
        assert readings == sorted(readings)
        assert len(set(readings)) == 4


class TestBlockingProperties:
    @given(clock_configs, net_configs,
           st.floats(min_value=0.0, max_value=1e4))
    def test_dirty_blocking_never_shorter_than_clean(self, clock, net, elapsed):
        clean = blocking_period(0, clock, elapsed, net)
        dirty = blocking_period(1, clock, elapsed, net)
        assert dirty >= clean

    @given(clock_configs, net_configs,
           st.floats(min_value=0.0, max_value=1e4),
           st.floats(min_value=0.0, max_value=1.0))
    def test_floor_respected(self, clock, net, elapsed, floor):
        for bit in (0, 1):
            assert blocking_period(bit, clock, elapsed, net,
                                   floor=floor) >= floor

    @given(clock_configs, net_configs,
           st.floats(min_value=0.0, max_value=1e4))
    def test_blocking_nonnegative(self, clock, net, elapsed):
        for bit in (0, 1):
            assert blocking_period(bit, clock, elapsed, net) >= 0.0

    @given(net_configs)
    def test_delay_term_signs(self, net):
        assert message_delay_term(1, net) >= 0.0 or net.t_max == 0.0
        assert message_delay_term(0, net) <= 0.0

    @given(clock_configs, net_configs,
           st.floats(min_value=0.0, max_value=1e4),
           st.floats(min_value=0.0, max_value=1e4))
    def test_monotone_in_elapsed(self, clock, net, t1, t2):
        lo, hi = sorted((t1, t2))
        assert blocking_period(1, clock, lo, net) <= \
            blocking_period(1, clock, hi, net) + 1e-12


class TestDeliveryGuarantee:
    @given(clock_configs, net_configs,
           st.floats(min_value=0.0, max_value=1e4))
    def test_notification_arrives_within_dirty_blocking(self, clock, net,
                                                        elapsed):
        """The paper's Section 4.2 argument, as an inequality: a
        notification sent before the sender's timer expiry arrives
        within a dirty receiver's blocking period."""
        receiver_expiry = 1000.0
        worst_sender_expiry = receiver_expiry + clock.max_skew(elapsed)
        worst_arrival = worst_sender_expiry + net.t_max
        blocking_end = receiver_expiry + blocking_period(1, clock, elapsed, net)
        assert worst_arrival <= blocking_end + 1e-9
