"""Property-based tests for the statistics collectors."""

import math
import statistics

from hypothesis import given, strategies as st

from repro.sim.monitor import RunningStat, summarize

values = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=200)


@given(values)
def test_mean_matches_statistics(xs):
    assert summarize(xs).mean == pytest_approx(statistics.fmean(xs))


def pytest_approx(x, rel=1e-9, abs_=1e-6):
    import pytest
    return pytest.approx(x, rel=rel, abs=abs_)


@given(values)
def test_extrema_bound_mean(xs):
    stat = summarize(xs)
    assert stat.minimum <= stat.mean <= stat.maximum or math.isclose(
        stat.minimum, stat.maximum)


@given(values)
def test_variance_nonnegative(xs):
    assert summarize(xs).variance >= -1e-9


@given(values, values)
def test_merge_equals_concatenation(xs, ys):
    merged = summarize(xs)
    merged.merge(summarize(ys))
    combined = summarize(xs + ys)
    assert merged.count == combined.count
    assert merged.mean == pytest_approx(combined.mean, rel=1e-6, abs_=1e-3)
    assert merged.variance == pytest_approx(combined.variance, rel=1e-4,
                                            abs_=1e-2)


@given(st.lists(values, min_size=1, max_size=8))
def test_merge_of_deserialized_shards_equals_single_pass(shards):
    # Cross-process transport: each shard is serialized (as the cache
    # and the worker protocol do), deserialized in the parent, and
    # merged; the result must match accumulating every sample once.
    import json

    merged = RunningStat()
    for shard in shards:
        wire = json.loads(json.dumps(summarize(shard).to_dict()))
        merged.merge(RunningStat.from_dict(wire))
    combined = summarize([x for shard in shards for x in shard])
    assert merged.count == combined.count
    assert merged.mean == pytest_approx(combined.mean, rel=1e-6, abs_=1e-3)
    assert merged.variance == pytest_approx(combined.variance, rel=1e-4,
                                            abs_=1e-2)
    assert merged.minimum == combined.minimum
    assert merged.maximum == combined.maximum


@given(values, values, values)
def test_merge_is_associative_in_distribution(xs, ys, zs):
    left = summarize(xs)
    left.merge(summarize(ys))
    left.merge(summarize(zs))
    right_tail = summarize(ys)
    right_tail.merge(summarize(zs))
    right = summarize(xs)
    right.merge(right_tail)
    assert left.count == right.count
    assert left.mean == pytest_approx(right.mean, rel=1e-6, abs_=1e-3)


@given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=100.0),
                          st.floats(min_value=-10.0, max_value=10.0)),
                min_size=1, max_size=50))
def test_time_weighted_integral_matches_manual(segments):
    from repro.sim.monitor import TimeWeightedValue
    signal = TimeWeightedValue(0.0, at=0.0)
    t = 0.0
    manual = 0.0
    current = 0.0
    for duration, value in segments:
        manual += current * duration
        t += duration
        signal.set(value, at=t)
        current = value
    assert signal.integral(t) == pytest_approx(manual, rel=1e-6, abs_=1e-6)
