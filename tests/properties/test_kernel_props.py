"""Property-based tests for the discrete-event kernel.

A random interleaving of ``schedule`` / ``cancel`` / ``step`` /
``run(until)`` operations is applied simultaneously to the real kernel
and to a naive reference model (a flat list with eager selection of the
minimum ``(time, seq)`` entry).  Fire order, ``pending_count``, and the
clock must agree at every step — for the plain kernel, the pooled
kernel, and a variant with an aggressive compaction threshold, so heap
compaction is exercised by short programs and provably never drops or
reorders live events.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator


class EagerCompactSimulator(Simulator):
    """Compacts after four in-heap cancels instead of 64, so the random
    programs hit the compaction path constantly."""

    _COMPACT_MIN = 4


KERNELS = [
    ("plain", lambda: Simulator()),
    ("pooled", lambda: Simulator(pooling=True)),
    ("eager-compact", lambda: EagerCompactSimulator()),
    ("eager-compact-pooled", lambda: EagerCompactSimulator(pooling=True)),
]

# Mix continuous delays with a few fixed values so same-time ties (the
# seq tie-break path) actually occur.
delays = st.one_of(st.floats(min_value=0.0, max_value=8.0),
                   st.sampled_from((0.0, 0.5, 1.0, 2.0)))
operations = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), delays),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=199)),
        st.tuples(st.just("run_until"), delays),
        st.tuples(st.just("step"), st.just(0.0)),
    ),
    max_size=60)


class ReferenceModel:
    """The obviously-correct kernel: a flat list, linear scans, eager
    state tracking.  Entries are ``[time, seq, index, state]``."""

    def __init__(self):
        self.now = 0.0
        self.entries = []
        self.fired = []
        self._seq = 0

    def schedule(self, delay):
        self.entries.append(
            [self.now + delay, self._seq, len(self.entries), "live"])
        self._seq += 1

    def state(self, index):
        return self.entries[index][3]

    def cancel(self, index):
        if self.entries[index][3] == "live":
            self.entries[index][3] = "cancelled"

    def pending(self):
        return sum(1 for entry in self.entries if entry[3] == "live")

    def _next_live(self):
        live = [entry for entry in self.entries if entry[3] == "live"]
        return min(live, key=lambda entry: (entry[0], entry[1])) \
            if live else None

    def step(self):
        entry = self._next_live()
        if entry is None:
            return
        entry[3] = "fired"
        if entry[0] > self.now:
            self.now = entry[0]
        self.fired.append(entry[2])

    def run_until(self, until):
        while True:
            entry = self._next_live()
            if entry is None or entry[0] > until:
                break
            self.step()
        if self.now < until:
            self.now = until

    def run_all(self):
        while self._next_live() is not None:
            self.step()


@pytest.mark.parametrize("name,factory", KERNELS, ids=[k for k, _ in KERNELS])
class TestKernelAgainstModel:
    @settings(max_examples=50, deadline=None)
    @given(program=operations)
    def test_interleaving_matches_reference(self, name, factory, program):
        sim = factory()
        model = ReferenceModel()
        fired = []
        handles = []

        for op, value in program:
            if op == "schedule":
                index = len(handles)
                handles.append(sim.schedule_after(
                    value, fired.append, args=(index,)))
                model.schedule(value)
            elif op == "cancel":
                if not handles:
                    continue
                index = int(value) % len(handles)
                # Dead handles (fired, or cancelled and since collected)
                # may have been recycled by the pool and now alias a
                # different live event; in-tree callers null or guard
                # theirs, so the program only cancels live entries.
                if model.state(index) != "live":
                    continue
                handles[index].cancel()
                model.cancel(index)
            elif op == "run_until":
                until = model.now + value
                sim.run(until=until)
                model.run_until(until)
            else:  # step
                sim.step()
                model.step()
            assert sim.pending_count() == model.pending()
            assert sim.now == model.now
            assert fired == model.fired

        sim.run()
        model.run_all()
        assert fired == model.fired
        assert sim.pending_count() == model.pending() == 0
        assert sim.events_executed == len(model.fired)
