"""Property-based tests for the snapshot pipeline: codec round-trips
and incremental (delta-chain) capture/restore."""

import copy

from hypothesis import given, settings, strategies as st

from repro.app.component import AppState
from repro.host import ProcessSnapshot
from repro.journal import Journal
from repro.mdcd.state import MdcdState
from repro.messages.log import MessageLog
from repro.messages.message import Message
from repro.snapshot import available_codecs, decode_payload, encode_full
from repro.snapshot.sections import SnapshotEncoder
from repro.types import MessageKind, ProcessId


def make_msg(sn, t=0.0):
    m = Message(kind=MessageKind.INTERNAL, sender=ProcessId("A"),
                receiver=ProcessId("B"), sn=sn, dirty_bit=1)
    m.send_time = t
    return m


@st.composite
def snapshots(draw):
    """An arbitrary (consistent-enough) ProcessSnapshot."""
    journal_sent, journal_recv = Journal(), Journal()
    for journal in (journal_sent, journal_recv):
        for sn in draw(st.lists(st.integers(1, 60), unique=True,
                                max_size=10)):
            journal.add(make_msg(sn), validated=draw(st.booleans()),
                        time=float(sn))
        journal.pruned_before = draw(st.floats(0.0, 10.0))
    log = MessageLog()
    for sn in sorted(draw(st.lists(st.integers(1, 60), unique=True,
                                   max_size=8))):
        log.append(sn, make_msg(sn))
    log.reclaimed_count = draw(st.integers(0, 5))
    return ProcessSnapshot(
        app_state=AppState(value=draw(st.integers(-9, 9)),
                           inputs_applied=draw(st.integers(0, 9)),
                           steps_applied=draw(st.integers(0, 9)),
                           corrupt=draw(st.booleans())),
        mdcd=MdcdState(dirty_bit=draw(st.integers(0, 1)),
                       pseudo_dirty_bit=draw(st.integers(0, 1)),
                       vr=draw(st.none() | st.integers(0, 60)),
                       guarded=draw(st.booleans())),
        sn_value=draw(st.integers(0, 99)),
        dedup_seen=set(draw(st.lists(st.integers(0, 99), max_size=6))),
        unacked=[make_msg(sn) for sn in draw(
            st.lists(st.integers(1, 30), unique=True, max_size=4))],
        journal_sent=journal_sent,
        journal_recv=journal_recv,
        msg_log=log,
        cursor=draw(st.integers(0, 99)))


class TestCodecRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_decode_encode_identity_for_every_codec(self, snapshot):
        for codec in available_codecs():
            restored = decode_payload(encode_full(snapshot, codec))
            assert restored == snapshot, codec
            # and the restore is private (no aliasing into the capture)
            assert restored.journal_sent is not snapshot.journal_sent

    @settings(max_examples=25, deadline=None)
    @given(snapshots())
    def test_opaque_roundtrip_for_every_codec(self, snapshot):
        state = {"snapshot": snapshot, "tag": 7}
        for codec in available_codecs():
            assert decode_payload(encode_full(state, codec)) == state, codec


#: One mutation step of the live journals/log between captures.
_ops = st.lists(st.one_of(
    st.just(("send",)),
    st.tuples(st.just("validate"), st.integers(0, 80)),
    st.tuples(st.just("prune"), st.floats(0.0, 80.0)),
    st.tuples(st.just("reclaim"), st.integers(0, 80)),
    st.just(("clear",)),                    # sn restart -> full fallback
    st.tuples(st.just("capture"), st.sampled_from(
        ("pickle", "zpickle", "null"))),
    st.just(("recover",)),                  # restore + encoder reset
), max_size=30)


class TestIncrementalCapture:
    @settings(max_examples=40, deadline=None)
    @given(_ops, st.integers(1, 5))
    def test_every_payload_in_the_chain_restores_its_capture(
            self, ops, max_chain):
        """Drive random journal/log mutations — including the pruning
        ``compact_journals`` performs and recovery restores — capturing
        along the way; every payload must decode to the state it froze,
        regardless of where its delta chain was cut."""
        encoder = SnapshotEncoder(max_chain=max_chain)
        journal = Journal()
        log = MessageLog()
        next_key = [1]
        log_sn = [1]

        def snapshot():
            return ProcessSnapshot(
                app_state=AppState(), mdcd=MdcdState(), sn_value=next_key[0],
                dedup_seen=set(), unacked=[], journal_sent=journal,
                journal_recv=Journal(), msg_log=log, cursor=0)

        captured = []
        for op in ops + [("capture", "pickle")]:
            if op[0] == "send":
                msg = make_msg(next_key[0], t=float(next_key[0]))
                journal.add(msg, validated=False, time=float(next_key[0]))
                log.append(log_sn[0], msg)
                next_key[0] += 1
                log_sn[0] += 1
            elif op[0] == "validate":
                journal.mark_validated(ProcessId("A"), up_to_sn=op[1])
            elif op[0] == "prune":
                journal.prune_validated_before(op[1])
            elif op[0] == "reclaim":
                log.reclaim_up_to(op[1])
            elif op[0] == "clear":
                log.clear()
                log_sn[0] = 1   # restart: the delta language gives up
            elif op[0] == "capture":
                payload = encoder.encode_snapshot(snapshot(), op[1])
                captured.append((payload, copy.deepcopy(snapshot())))
            elif op[0] == "recover":
                if not captured:
                    continue
                restored = decode_payload(captured[-1][0])
                journal = restored.journal_sent
                log = restored.msg_log
                # The real system restores its sn counter from the
                # snapshot too — resync past the restored log's tail.
                log_sn[0] = (log._entries[-1].sn + 1) if log._entries else 1
                encoder.reset()

        for payload, expected in captured:
            assert decode_payload(payload) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 4))
    def test_chain_depth_is_bounded(self, captures, max_chain):
        """No payload's delta chain exceeds ``max_chain`` links."""
        encoder = SnapshotEncoder(max_chain=max_chain)
        journal = Journal()
        log = MessageLog()
        payloads = []
        for k in range(1, captures + 1):
            journal.add(make_msg(k), validated=False, time=float(k))
            log.append(k, make_msg(k))
            state = ProcessSnapshot(
                app_state=AppState(), mdcd=MdcdState(), sn_value=k,
                dedup_seen=set(), unacked=[], journal_sent=journal,
                journal_recv=Journal(), msg_log=log, cursor=0)
            payloads.append((encoder.encode_snapshot(state, "pickle"),
                             copy.deepcopy(state)))
        for payload, expected in payloads:
            for section in payload.sections:
                assert section.depth < max_chain
            assert decode_payload(payload) == expected
