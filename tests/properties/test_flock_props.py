"""Property: flock fork ≡ warm resume ≡ cold replay, bit for bit.

For random fault schedules over random memberships, the same schedule
executed three ways — cold from scratch, warm-resumed from a prefix
image, and forked off a resident flock template — must produce the
same auditor findings and the same canonical trace digest.
"""

from hypothesis import given, settings, strategies as st

from repro.audit.auditor import OnlineAuditor
from repro.audit.campaign import build_audit_system
from repro.audit.config import AuditConfig
from repro.audit.golden import canonical_trace_lines, trace_digest
from repro.audit.schedule import CrashSpec, FaultSchedule, SoftwareFaultSpec
from repro.errors import AuditViolation
from repro.flock import ForkTemplate, fork_position
from repro.warmstart import (
    build_image_set,
    capture_times,
    divergence_time,
    resume,
    share_schedule_seeds,
)

TOPOLOGIES = ("paper", "2x2", "3x1")

_CONFIGS = {}
_IMAGE_SETS = {}


def _config(topology: str) -> AuditConfig:
    if topology not in _CONFIGS:
        _CONFIGS[topology] = AuditConfig(
            scheme="coordinated", seed=11, schedules=8,
            horizon=120.0, tb_interval=20.0, topology=topology)
    return _CONFIGS[topology]


def _seed(config: AuditConfig) -> int:
    return share_schedule_seeds(
        config, [FaultSchedule(label="probe", system_seed=0,
                               origin="test")])[0].system_seed


def _image_set(config: AuditConfig):
    key = config.topology
    if key not in _IMAGE_SETS:
        _IMAGE_SETS[key] = build_image_set(
            config, _seed(config), times=capture_times(config))
    return _IMAGE_SETS[key]


def _nodes(config: AuditConfig):
    from repro.topology.model import parse_topology
    return [str(n) for n in parse_topology(config.topology).node_ids()]


def _run(system, auditor):
    try:
        system.run()
    except AuditViolation:
        pass
    try:
        auditor.finalize()
    except AuditViolation:
        pass
    return ([f.to_dict() for f in auditor.findings],
            trace_digest(canonical_trace_lines(system)))


@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_flock_equals_resume_equals_cold(data):
    config = _config(data.draw(st.sampled_from(TOPOLOGIES), label="topo"))
    faults = []
    if data.draw(st.booleans(), label="software?"):
        faults.append(SoftwareFaultSpec(
            activate_at=float(data.draw(st.integers(25, 110), label="sw"))))
    n_crashes = data.draw(st.integers(0 if faults else 1, 2), label="crashes")
    nodes = _nodes(config)
    for i in range(n_crashes):
        faults.append(CrashSpec(
            node_id=data.draw(st.sampled_from(nodes), label=f"n{i}"),
            crash_at=float(data.draw(st.integers(25, 110), label=f"c{i}")),
            repair_time=2.0))
    sched = FaultSchedule(
        label="prop", system_seed=_seed(config),
        software=tuple(f for f in faults
                       if isinstance(f, SoftwareFaultSpec)),
        crashes=tuple(f for f in faults if isinstance(f, CrashSpec)),
        origin="test")
    divergence = divergence_time(sched)

    # Cold: the ground truth.
    cold_sys = build_audit_system(config, sched)
    cold = _run(cold_sys, OnlineAuditor(cold_sys, fail_fast=False))

    # Warm: resume the newest image strictly before divergence.
    image = max((img for img in _image_set(config)
                 if img.captured_at < divergence),
                key=lambda img: img.captured_at)
    warm_sys, warm_auditor = resume(image, fail_fast=False)
    sched.arm(warm_sys)
    warm = _run(warm_sys, warm_auditor)

    # Flock: fork off a resident template at the quantized position.
    template = ForkTemplate.from_reference(config, sched)
    assert template.advance_to(fork_position(divergence, config.horizon))
    flock_sys, flock_auditor = template.fork(fail_fast=False)
    sched.arm(flock_sys)
    flock = _run(flock_sys, flock_auditor)

    assert warm == cold
    assert flock == cold
