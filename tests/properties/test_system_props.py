"""Property-based tests over whole coordinated systems.

These are the heavyweight properties: for randomly drawn (bounded)
workload parameters, seeds and fault schedules, a coordinated run must
end with valid stable lines, conservative dirty bits, non-negative
bounded rollback distances, and clean trusted-pair ground truth.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.global_state import common_stable_line, live_line
from repro.analysis.invariants import check_ground_truth, check_system_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig

HORIZON = 600.0

system_params = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=10_000),
    "internal_rate": st.floats(min_value=0.005, max_value=0.5),
    "external_rate": st.floats(min_value=0.005, max_value=0.1),
    "interval": st.floats(min_value=5.0, max_value=60.0),
})

slow = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build(params, scheme=Scheme.COORDINATED):
    return build_system(SystemConfig(
        scheme=scheme, seed=params["seed"], horizon=HORIZON,
        tb=TbConfig(interval=params["interval"]),
        workload1=WorkloadConfig(internal_rate=params["internal_rate"],
                                 external_rate=params["external_rate"],
                                 step_rate=0.01, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=params["internal_rate"] / 2.0,
                                 external_rate=params["external_rate"],
                                 step_rate=0.01, horizon=HORIZON),
        trace_enabled=False))


@slow
@given(system_params)
def test_fault_free_lines_always_valid(params):
    system = build(params)
    system.run()
    assert check_system_line(common_stable_line(system)) == []


@slow
@given(system_params)
def test_dirty_bits_conservative_with_perfect_at(params):
    system = build(params)
    system.inject_software_fault(SoftwareFaultPlan(activate_at=HORIZON / 3.0))
    system.run()
    # With coverage 1.0, no believed-clean state is actually corrupt —
    # across the live states of all in-service processes.
    assert check_ground_truth(live_line(system)) == []


@slow
@given(system_params,
       st.floats(min_value=50.0, max_value=HORIZON - 100.0),
       st.sampled_from(["N1a", "N1b", "N2"]))
def test_crash_recovery_invariants(params, crash_at, node):
    system = build(params)
    system.inject_crash(HardwareFaultPlan(node_id=node, crash_at=crash_at,
                                          repair_time=1.0))
    system.run()
    assert system.hw_recovery.recoveries == 1
    for record in system.hw_recovery.records:
        assert record.distance >= 0.0
        assert record.distance <= crash_at + 1.0
    assert check_system_line(common_stable_line(system)) == []


@slow
@given(system_params)
def test_determinism_under_random_parameters(params):
    def fingerprint():
        system = build(params)
        system.run()
        return (system.sim.events_executed,
                system.peer.component.state.value,
                tuple(sorted(system.peer.counters.as_dict().items())))
    assert fingerprint() == fingerprint()
