"""Property-based tests for the counterexample shrinker.

The shrinker's contract: given any deterministic ``violates`` predicate
and any violating input schedule, the result (a) still violates, (b) is
never larger than the input, and (c) was found within the replay
budget.  Hypothesis drives this with synthetic predicates ("these
specific faults are jointly required"), which model how a real
violation depends on a sub-multiset of the injected faults.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.audit import (  # noqa: E402
    CrashSpec,
    FaultSchedule,
    SoftwareFaultSpec,
    shrink_schedule,
)

HORIZON = 500.0

software_specs = st.builds(
    SoftwareFaultSpec,
    activate_at=st.floats(min_value=10.0, max_value=HORIZON * 0.8),
    deactivate_at=st.one_of(
        st.none(),
        st.floats(min_value=HORIZON * 0.8 + 1.0, max_value=HORIZON)))

crash_specs = st.builds(
    CrashSpec,
    node_id=st.sampled_from(["N1a", "N1b", "N2"]),
    crash_at=st.floats(min_value=10.0, max_value=HORIZON * 0.9),
    repair_time=st.floats(min_value=0.5, max_value=5.0))

schedules = st.builds(
    FaultSchedule,
    label=st.just("prop"),
    system_seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    software=st.lists(software_specs, max_size=4).map(tuple),
    crashes=st.lists(crash_specs, max_size=4).map(tuple))


@st.composite
def schedule_and_required(draw):
    """A schedule plus a non-empty required fault subset."""
    sched = draw(schedules.filter(lambda s: s.fault_count > 0))
    faults = list(sched.software) + list(sched.crashes)
    required = draw(st.sets(st.sampled_from(range(len(faults))),
                            min_size=1, max_size=len(faults)))
    return sched, frozenset(faults[i] for i in required)


def requires(required):
    """The predicate: violation iff every required fault survives."""
    def violates(sched):
        present = set(sched.software) | set(sched.crashes)
        return required <= present
    return violates


class TestShrinkProperties:
    @given(schedule_and_required())
    @settings(max_examples=60, deadline=None)
    def test_shrunk_still_violates_and_never_grows(self, case):
        sched, required = case
        result = shrink_schedule(sched, requires(required), horizon=HORIZON,
                                 push_times=False, max_replays=200)
        assert result.violated
        assert requires(required)(result.schedule)
        assert result.schedule.fault_count <= sched.fault_count
        assert result.schedule.fault_count >= len(required)

    @given(schedule_and_required())
    @settings(max_examples=30, deadline=None)
    def test_single_requirement_shrinks_to_one_fault(self, case):
        sched, required = case
        if len(required) != 1:
            required = frozenset(list(required)[:1])
        result = shrink_schedule(sched, requires(required), horizon=HORIZON,
                                 push_times=False, max_replays=300)
        assert result.violated
        assert result.schedule.fault_count == 1

    @given(schedules, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_replay_budget_is_a_hard_cap(self, sched, budget):
        calls = []

        def counting(s):
            calls.append(1)
            return True

        shrink_schedule(sched, counting, horizon=HORIZON,
                        max_replays=budget)
        assert len(calls) <= budget

    @given(schedules)
    @settings(max_examples=30, deadline=None)
    def test_non_violating_input_untouched(self, sched):
        result = shrink_schedule(sched, lambda s: False, horizon=HORIZON)
        assert not result.violated
        assert result.schedule == sched
