"""Property-based tests of the provenance machinery under random
interleavings of sends, peer-to-peer relays, faults and validations."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.app.workload import Action, ActionKind, WorkloadConfig
from repro.general import GeneralSystemConfig, build_general_system
from repro.tb.blocking import TbConfig

slow = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

#: A step of the random schedule: (actor, operation, stimulus)
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # 0 = active, 1..3 peers
              st.sampled_from(["internal", "external"]),
              st.integers(min_value=0, max_value=7)),
    min_size=5, max_size=40)


def drive(system, schedule, fault_after=None):
    """Apply a schedule of manual protocol actions."""
    for index, (actor, op, stimulus) in enumerate(schedule):
        if fault_after is not None and index == fault_after:
            system.low_version.fault_active = True
        process = system.active if actor == 0 else system.peers[actor - 1]
        if process.deposed:
            continue
        kind = (ActionKind.SEND_INTERNAL if op == "internal"
                else ActionKind.SEND_EXTERNAL)
        process.software.__getattribute__(
            "on_send_internal" if op == "internal" else "on_send_external")(
            Action(index=10_000_000 + index, kind=kind, gap=0.0,
                   stimulus=stimulus))
        system.sim.run(until=system.sim.now + 0.5)
    system.sim.run(until=system.sim.now + 2.0)


def build(seed):
    horizon = 10_000.0
    config = GeneralSystemConfig(
        n_peers=3, seed=seed, horizon=horizon,
        tb=TbConfig(interval=100_000.0),
        workload1=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.001, horizon=horizon),
        workload_peer=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                     step_rate=0.001, horizon=horizon),
        trace_enabled=False)
    system = build_general_system(config)
    system.start()
    return system


@slow
@given(st.integers(min_value=0, max_value=1000), steps)
def test_clean_bit_implies_no_taint(seed, schedule):
    system = build(seed)
    drive(system, schedule)
    for proc in system.process_list():
        if proc.role is None or not proc.role.is_component_one:
            if proc.mdcd.dirty_bit == 0:
                assert proc.mdcd.taint_sn is None


@slow
@given(st.integers(min_value=0, max_value=1000), steps,
       st.integers(min_value=0, max_value=10))
def test_dirty_bits_conservative_under_fault(seed, schedule, fault_after):
    """With perfect AT coverage, any truly contaminated in-service state
    is either flagged dirty or belongs to the always-suspect active."""
    system = build(seed)
    drive(system, schedule, fault_after=fault_after)
    for proc in system.process_list():
        if proc.deposed or proc is system.active:
            continue
        if proc.component.state.corrupt:
            assert proc.mdcd.dirty_bit == 1, str(proc.process_id)


@slow
@given(st.integers(min_value=0, max_value=1000), steps)
def test_vr_monotone_and_bounded(seed, schedule):
    system = build(seed)
    observed = {p.process_id: [] for p in system.peers}

    # Sample vr between steps by interleaving manually.
    for index, step in enumerate(schedule):
        drive(system, [step])
        for proc in system.peers:
            observed[proc.process_id].append(proc.mdcd.vr)
    top = system.active.sn.current
    for series in observed.values():
        cleaned = [v for v in series if v is not None]
        assert cleaned == sorted(cleaned)
        assert all(v <= top for v in cleaned)


@slow
@given(st.integers(min_value=0, max_value=1000), steps)
def test_dsn_streams_sequential_per_pair(seed, schedule):
    system = build(seed)
    drive(system, schedule)
    for receiver in system.process_list():
        per_sender = {}
        for rec in receiver.journal_recv.records():
            if rec.dsn is not None:
                per_sender.setdefault(rec.sender, []).append(rec.dsn)
        for sender, dsns in per_sender.items():
            assert sorted(dsns) == list(range(1, len(dsns) + 1)), \
                f"{sender}->{receiver.process_id}: {dsns}"
