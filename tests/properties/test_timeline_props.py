"""Property-based tests for the timeline renderer over synthetic traces."""

from hypothesis import given, strategies as st

from repro.experiments.timeline import render_timeline
from repro.sim.trace import TraceRecorder
from repro.types import ProcessId

PIDS = [ProcessId("A"), ProcessId("B")]

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),
        st.sampled_from(["confidence.dirty", "confidence.clean",
                         "checkpoint.volatile.type-1",
                         "checkpoint.volatile.type-2",
                         "checkpoint.volatile.pseudo",
                         "tb.establish.done", "at.pass", "at.fail"]),
        st.sampled_from([0, 1]),
    ),
    max_size=60)


def build_trace(evts):
    trace = TraceRecorder()
    for t, category, who in sorted(evts):
        data = {"bit": "dirty"} if category.startswith("confidence") else {}
        trace.record(t, category, PIDS[who], **data)
    return trace


@given(events, st.integers(min_value=10, max_value=200))
def test_lanes_have_exact_width(evts, width):
    trace = build_trace(evts)
    text = render_timeline(trace, PIDS, since=0.0, until=100.0, width=width)
    lines = text.splitlines()
    assert len(lines) == 1 + len(PIDS)
    for line in lines[1:]:
        body = line.split("|", 1)[1].rstrip("|")
        assert len(body) == width


@given(events)
def test_lane_cells_come_from_known_alphabet(evts):
    trace = build_trace(evts)
    text = render_timeline(trace, PIDS, since=0.0, until=100.0, width=50)
    alphabet = set("░▓12PSA!RX")
    for line in text.splitlines()[1:]:
        body = line.split("|", 1)[1].rstrip("|")
        assert set(body) <= alphabet


@given(events)
def test_shading_follows_last_confidence_transition(evts):
    trace = build_trace(evts)
    text = render_timeline(trace, PIDS, since=0.0, until=100.0, width=100)
    for who, line in zip(PIDS, text.splitlines()[1:]):
        body = line.split("|", 1)[1].rstrip("|")
        transitions = [(rec.time, rec.category.endswith(".dirty"))
                       for rec in trace.records("confidence.", who)]
        # The final cell's shading matches the last transition (default
        # clean), unless a marker overwrote it.
        final_dirty = transitions[-1][1] if transitions else False
        shades = [c for c in body if c in "░▓"]
        if shades and not transitions:
            assert shades[-1] == "░"
        elif shades and transitions and transitions[-1][0] < 99.0:
            assert shades[-1] == ("▓" if final_dirty else "░")


@given(events)
def test_rendering_is_pure(evts):
    trace = build_trace(evts)
    first = render_timeline(trace, PIDS, since=0.0, until=100.0, width=64)
    second = render_timeline(trace, PIDS, since=0.0, until=100.0, width=64)
    assert first == second
