"""Property-based sweeps over the generalized K-peer architecture and
the live-state audit."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import check_live_system, check_system_line
from repro.analysis.global_state import common_stable_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.general import GeneralSystemConfig, build_general_system
from repro.tb.blocking import TbConfig

HORIZON = 500.0

slow = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

general_params = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=5_000),
    "n_peers": st.integers(min_value=1, max_value=5),
    "internal_rate": st.floats(min_value=0.01, max_value=0.3),
    "interval": st.floats(min_value=8.0, max_value=60.0),
})


def build(params):
    return build_general_system(GeneralSystemConfig(
        n_peers=params["n_peers"], seed=params["seed"], horizon=HORIZON,
        tb=TbConfig(interval=params["interval"]),
        workload1=WorkloadConfig(internal_rate=params["internal_rate"],
                                 external_rate=0.02, step_rate=0.01,
                                 horizon=HORIZON),
        workload_peer=WorkloadConfig(internal_rate=params["internal_rate"],
                                     external_rate=0.02, step_rate=0.01,
                                     horizon=HORIZON),
        trace_enabled=False))


@slow
@given(general_params)
def test_general_lines_valid_for_any_topology(params):
    system = build(params)
    system.run()
    line = common_stable_line(system)
    assert check_system_line(line) == []


@slow
@given(general_params,
       st.floats(min_value=50.0, max_value=HORIZON - 100.0))
def test_general_crash_recovery_invariants(params, crash_at):
    system = build(params)
    node = f"N{(params['seed'] % params['n_peers']) + 2}"
    system.inject_crash(HardwareFaultPlan(node_id=node, crash_at=crash_at,
                                          repair_time=1.0))
    system.run()
    assert system.hw_recovery.recoveries == 1
    assert all(r.distance >= 0 for r in system.hw_recovery.records)
    assert check_system_line(common_stable_line(system)) == []


@slow
@given(general_params)
def test_general_takeover_cleans_everyone(params):
    system = build(params)
    system.inject_software_fault(SoftwareFaultPlan(activate_at=HORIZON / 4.0))
    system.run()
    if system.sw_recovery.completed:
        for proc in system.process_list():
            if not proc.deposed:
                assert not proc.component.state.corrupt


@slow
@given(st.integers(min_value=0, max_value=5_000),
       st.lists(st.floats(min_value=20.0, max_value=HORIZON - 20.0),
                min_size=1, max_size=4))
def test_live_audit_clean_at_arbitrary_instants(seed, instants):
    system = build_system(SystemConfig(scheme=Scheme.COORDINATED, seed=seed,
                                       horizon=HORIZON))
    system.start()
    for t in sorted(instants):
        system.run(until=t)
        assert check_live_system(system) == []
