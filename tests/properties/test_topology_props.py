"""Property-based tests for the topology layer: election safety and
liveness under arbitrary seeded crash/recovery sequences, view-epoch
monotonicity, and sim/live conformance beyond the paper shape.

The model-level properties drive a :class:`GroupView` directly through
randomized member crash/restart sequences, emulating the recovery
manager's takeover rule (elect on active loss, depose the loser,
promote the winner); the system-level properties run the full
discrete-event stack on non-paper topologies with injected hardware
and software faults.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.global_state import common_stable_line
from repro.analysis.invariants import check_topology_system_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig
from repro.topology.election import CRASHED, DEPOSED, UP
from repro.topology.model import Topology, parse_topology
from repro.topology.view import GroupView

# ----------------------------------------------------------------------
# model-level: GroupView + election under random crash/restart sequences
# ----------------------------------------------------------------------
topologies = st.builds(
    Topology.general,
    components=st.integers(min_value=1, max_value=3),
    shadows=st.integers(min_value=1, max_value=3),
    peers=st.integers(min_value=1, max_value=3))

#: A seeded sequence of membership events: (member index, is_crash).
event_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
    max_size=40)


def _process_takeovers(view: GroupView) -> None:
    """The recovery manager's rule, in miniature: whenever a
    component's acting active is not up, elect; if anyone is eligible,
    depose the loser and promote the winner (else defer)."""
    for component in range(1, view.topology.n_components + 1):
        acting = view.acting_active(component)
        if acting is not None and view.is_up(acting):
            continue
        winner = view.elect(component)
        if winner is None:
            continue
        if acting is not None:
            view.note_deposed(acting)
        view.note_promoted(winner)


def _apply(view: GroupView, index: int, crash: bool) -> None:
    member = view.topology.members[index % len(view.topology.members)]
    if crash:
        view.node_crashed(member.node_id)
    else:
        view.node_restarted(member.node_id)


@given(topologies, event_sequences)
def test_election_safety_one_acting_active_per_component(topo, events):
    """Safety: at every point of every crash/recovery schedule, each
    component has at most one acting active, it is never deposed, and
    every superseded candidate is deposed."""
    view = GroupView(topo)
    for index, crash in events:
        _apply(view, index, crash)
        _process_takeovers(view)
        for component in range(1, topo.n_components + 1):
            acting = view.acting_active(component)
            candidates = [topo.active_of(component).role_id] + \
                [s.role_id for s in topo.shadows_of(component)]
            serving = [c for c in candidates
                       if view.status[c] != DEPOSED
                       and view.acting_active(component) == c]
            assert len(serving) <= 1
            if acting is not None:
                assert view.status[acting] != DEPOSED
                assert acting in candidates


@given(topologies, event_sequences)
def test_election_liveness_eligible_shadow_is_seated(topo, events):
    """Liveness: after takeover processing, a component is only ever
    leaderless if nobody is eligible — the configured active is down or
    deposed and every never-promoted shadow is down."""
    view = GroupView(topo)
    for index, crash in events:
        _apply(view, index, crash)
        _process_takeovers(view)
        for component in range(1, topo.n_components + 1):
            acting = view.acting_active(component)
            if acting is not None and view.is_up(acting):
                continue
            # Nobody up and eligible may remain: elect() must have
            # nothing to offer, or the takeover rule failed to seat it.
            assert view.elect(component) is None


@given(topologies, event_sequences)
def test_view_epochs_strictly_monotone(topo, events):
    """Every membership change installs exactly the next epoch, and
    per-member change stamps never exceed the view epoch."""
    view = GroupView(topo)
    for index, crash in events:
        _apply(view, index, crash)
        _process_takeovers(view)
    assert [epoch for epoch, _, _ in view.history] == \
        list(range(1, len(view.history) + 1))
    assert view.epoch == len(view.history)
    for role_id, stamped in view.changed_at.items():
        assert 0 <= stamped <= view.epoch
        assert view.status[role_id] in (UP, CRASHED, DEPOSED)


@given(topologies, event_sequences)
def test_election_deterministic_under_identical_views(topo, events):
    """The bully election is a pure function of the view: re-running
    the same sequence gives byte-identical history and winners."""
    def run():
        view = GroupView(topo)
        for index, crash in events:
            _apply(view, index, crash)
            _process_takeovers(view)
        winners = {c: view.elect(c)
                   for c in range(1, topo.n_components + 1)}
        return view.history, view.promoted, winners
    assert run() == run()


# ----------------------------------------------------------------------
# system-level: the full stack on a non-paper topology
# ----------------------------------------------------------------------
HORIZON = 500.0

system_params = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=5_000),
    "spec": st.sampled_from(["1x2+1", "2x1+2", "2x2+2"]),
    "crash_member": st.integers(min_value=0, max_value=63),
    "crash_at": st.floats(min_value=50.0, max_value=HORIZON - 100.0),
    "software_at": st.floats(min_value=50.0, max_value=HORIZON - 100.0),
})

slow = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build(spec, seed):
    return build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=HORIZON,
        tb=TbConfig(interval=20.0),
        workload1=WorkloadConfig(internal_rate=0.08, external_rate=0.02,
                                 step_rate=0.01, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=0.04, external_rate=0.02,
                                 step_rate=0.01, horizon=HORIZON),
        trace_categories=("view.change",), topology=spec))


@slow
@given(system_params)
def test_crash_recovery_view_invariants(params):
    """A random node crash on a random non-paper topology: the run
    completes, view epochs in the trace are strictly increasing, the
    final view seats exactly one acting active per component, and the
    common stable line verifies."""
    system = build(params["spec"], params["seed"])
    topo = system.topology
    node = topo.members[params["crash_member"] % topo.size].node_id
    system.inject_crash(HardwareFaultPlan(node_id=node,
                                          crash_at=params["crash_at"],
                                          repair_time=1.0))
    system.run()
    assert system.hw_recovery.recoveries >= 1
    epochs = [r.data["epoch"] for r in system.trace.records("view.change")]
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)
    for component in range(1, topo.n_components + 1):
        acting = system.view.acting_active(component)
        assert acting is not None
        assert system.view.is_up(acting)
    assert check_topology_system_line(common_stable_line(system), topo,
                                      include_ground_truth=False) == []


@slow
@given(system_params)
def test_software_fault_elects_exactly_one_successor(params):
    """A software fault in a random component: recovery promotes the
    deterministic election winner, deposes the failed active and the
    losing shadows, and every component still has exactly one acting
    active afterwards."""
    system = build(params["spec"], params["seed"])
    topo = system.topology
    component = (params["crash_member"] % topo.n_components) + 1
    system.inject_software_fault(SoftwareFaultPlan(
        activate_at=params["software_at"], component=component))
    system.run()
    view = system.view
    active_id = topo.active_of(component).role_id
    if view.promoted.get(component):
        # Takeover ran: the configured active is out, the winner is the
        # elected shadow, the losers are deposed.
        assert view.status[active_id] == DEPOSED
        winner = view.promoted[component]
        assert winner in {s.role_id for s in topo.shadows_of(component)}
        for shadow in topo.shadows_of(component):
            if shadow.role_id != winner:
                assert view.status[shadow.role_id] == DEPOSED
    for c in range(1, topo.n_components + 1):
        acting = view.acting_active(c)
        assert acting is not None and view.is_up(acting)
    epochs = [r.data["epoch"] for r in system.trace.records("view.change")]
    assert epochs == sorted(epochs)


def test_sim_live_conformance_on_elected_topology(tmp_path):
    """Sim/live conformance beyond the paper shape: the generalized
    script (including a peer-node kill and hardware recovery) produces
    identical decision sequences on the discrete-event backend and on
    four real OS processes of a 1-component, 2-shadow topology.

    (The paper-shape standard-script conformance lives in
    ``tests/runtime/test_crosscheck.py``.)
    """
    from repro.runtime.crosscheck import run_crosscheck
    result = run_crosscheck(seed=0, workdir=str(tmp_path / "live"),
                            topology="1x2+1")
    assert result.differences == []
    assert result.equivalent
    assert set(result.sim_decisions) == \
        set(parse_topology("1x2+1").role_ids())
