"""Property-based tests for journals, sequence tracking and the log."""

from hypothesis import given, strategies as st

from repro.journal import Journal
from repro.messages.log import MessageLog
from repro.messages.message import Message
from repro.messages.sequence import AckTracker, ReceiveDeduplicator
from repro.types import MessageKind, ProcessId


def make_msg(sn, t=0.0):
    m = Message(kind=MessageKind.INTERNAL, sender=ProcessId("A"),
                receiver=ProcessId("B"), sn=sn, dirty_bit=1)
    m.send_time = t
    return m


sns = st.lists(st.integers(min_value=1, max_value=100), min_size=1,
               max_size=50, unique=True)


class TestJournalProperties:
    @given(sns, st.integers(min_value=0, max_value=120))
    def test_mark_validated_is_exactly_the_sn_prefix(self, xs, bound):
        journal = Journal()
        for sn in xs:
            journal.add(make_msg(sn), validated=False, time=0.0)
        journal.mark_validated(ProcessId("A"), up_to_sn=bound)
        for rec in journal.records():
            assert rec.validated == (rec.sn <= bound)

    @given(sns)
    def test_mark_validated_monotone(self, xs):
        journal = Journal()
        for sn in xs:
            journal.add(make_msg(sn), validated=False, time=0.0)
        journal.mark_validated(ProcessId("A"), up_to_sn=50)
        before = {r.key for r in journal.records(validated=True)}
        journal.mark_validated(ProcessId("A"), up_to_sn=70)
        after = {r.key for r in journal.records(validated=True)}
        assert before <= after

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.booleans()), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_prune_removes_exactly_old_validated(self, entries, horizon):
        journal = Journal()
        keys = {}
        for time, validated in entries:
            rec = journal.add(make_msg(None, t=time), validated=validated,
                              time=time)
            keys[rec.key] = (time, validated)
        journal.prune_validated_before(horizon)
        for key, (time, validated) in keys.items():
            should_remain = not (validated and time < horizon)
            assert (key in journal) == should_remain


class TestAckTrackerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=60))
    def test_tracker_size_invariant(self, ack_indices):
        tracker = AckTracker()
        sent = [make_msg(i) for i in range(30)]
        for m in sent:
            tracker.sent(m)
        acked = set()
        for index in ack_indices:
            if index < len(sent):
                tracker.acked(sent[index].msg_id)
                acked.add(index)
        assert len(tracker) == 30 - len(acked)
        remaining = {m.msg_id for m in tracker.unacknowledged()}
        expected = {m.msg_id for i, m in enumerate(sent) if i not in acked}
        assert remaining == expected


class TestDedupProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                    max_size=40))
    def test_each_logical_message_applies_once(self, deliveries):
        originals = [make_msg(i) for i in range(11)]
        dedup = ReceiveDeduplicator()
        applied = []
        for index in deliveries:
            m = originals[index]
            delivery = m if index % 2 == 0 else m.clone_for_resend()
            if not dedup.is_duplicate(delivery):
                dedup.record(delivery)
                applied.append(delivery.dedup_key)
        assert len(applied) == len(set(applied))


class TestMessageLogProperties:
    @given(sns, st.integers(min_value=0, max_value=120))
    def test_reclaim_plus_remaining_partition(self, xs, bound):
        log = MessageLog()
        for sn in sorted(xs):
            log.append(sn, make_msg(sn))
        total = len(log)
        dropped = log.reclaim_up_to(bound)
        assert dropped + len(log) == total
        assert all(e.sn > bound for e in log)
