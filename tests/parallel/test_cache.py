"""Tests for the on-disk campaign result cache."""

import json

import pytest

from repro.parallel.cache import (
    CacheKey,
    ResultCache,
    campaign_fingerprint,
    config_fingerprint,
    default_cache_dir,
)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint({"a": 1}) == config_fingerprint({"a": 1})

    def test_sensitive_to_values(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_dict_order_irrelevant(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})

    def test_dataclasses_and_enums(self):
        from repro.coordination.scheme import Scheme
        from repro.experiments.figure7 import Figure7Config
        a = config_fingerprint((Figure7Config(), Scheme.COORDINATED))
        b = config_fingerprint((Figure7Config(), Scheme.WRITE_THROUGH))
        c = config_fingerprint((Figure7Config(horizon=1.0),
                                Scheme.COORDINATED))
        assert len({a, b, c}) == 3

    def test_campaign_fingerprint_folds_in_version(self):
        assert campaign_fingerprint({"x": 1}) != config_fingerprint({"x": 1})


class TestCacheKey:
    def test_digest_distinguishes_every_coordinate(self):
        base = CacheKey("lbl", 1, 0, "fp")
        variants = [
            CacheKey("other", 1, 0, "fp"),
            CacheKey("lbl", 2, 0, "fp"),
            CacheKey("lbl", 1, 1, "fp"),
            CacheKey("lbl", 1, 0, "fp2"),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 5


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = CacheKey("fig7:r60", 2001, 0, "abc")
        assert cache.get(key) is None
        cache.put(key, [1.0, 2.5])
        assert cache.get(key) == [1.0, 2.5]
        assert cache.hits == 1 and cache.misses == 1

    def test_fingerprint_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(CacheKey("l", 1, 0, "old"), [1.0])
        assert cache.get(CacheKey("l", 1, 0, "new")) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = CacheKey("l", 1, 0, "")
        cache.put(key, [3.0])
        (tmp_path / f"{key.digest()}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = CacheKey("l", 1, 0, "")
        (tmp_path / f"{key.digest()}.json").write_text(
            json.dumps({"samples": "oops"}))
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for rep in range(3):
            cache.put(CacheKey("l", 1, rep, ""), [float(rep)])
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_empty_samples_cacheable(self, tmp_path):
        # A replication with no crash windows legitimately yields zero
        # samples; that must cache as "computed, empty", not as a miss.
        cache = ResultCache(tmp_path)
        key = CacheKey("l", 1, 0, "")
        cache.put(key, [])
        assert cache.get(key) == []

    def test_default_dir_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ResultCache().root == tmp_path / "custom"
