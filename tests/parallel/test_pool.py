"""Tests for the sharded campaign runner and parallel_map.

The campaign task is a module-level pure function of the seed, so it
pickles into workers and is bit-for-bit reproducible in-process.
"""

import functools
import io
import multiprocessing
import os
import random

import pytest

from repro.experiments.runner import replication_seeds, run_campaign
from repro.parallel.cache import ResultCache
from repro.parallel.pool import (
    ParallelCampaignRunner,
    default_worker_count,
    make_shards,
    parallel_map,
)
from repro.parallel.progress import ProgressReporter
from repro.parallel.supervisor import ShardSupervisor, SupervisorConfig


def _task(seed):
    rng = random.Random(seed)
    return [rng.uniform(-5.0, 5.0) for _ in range(1 + seed % 4)]


def _negate(x):
    return -x


class TestMakeShards:
    def test_empty(self):
        assert make_shards([], 4) == []

    def test_partitions_every_cell_once_in_order(self):
        cells = [(i, 1000 + i) for i in range(11)]
        shards = make_shards(cells, workers=3)
        flat = [cell for shard in shards for cell in shard]
        assert flat == cells
        assert all(shard for shard in shards)

    def test_shard_count_tracks_workers(self):
        cells = [(i, i) for i in range(100)]
        assert len(make_shards(cells, workers=4, shards_per_worker=2)) == 8

    def test_never_more_shards_than_cells(self):
        assert len(make_shards([(0, 0)], workers=8)) == 1


class TestParallelEqualsSerial:
    def test_same_samples_and_mean(self):
        serial = run_campaign("camp", 99, 12, _task)
        parallel = run_campaign("camp", 99, 12, _task, workers=3)
        assert parallel.samples == serial.samples  # same sequence, even
        assert parallel.stat.count == serial.stat.count
        assert parallel.mean == pytest.approx(serial.mean, rel=1e-12)
        assert parallel.stat.variance == pytest.approx(
            serial.stat.variance, rel=1e-9)
        assert parallel.stat.minimum == serial.stat.minimum
        assert parallel.stat.maximum == serial.stat.maximum

    def test_uses_the_same_replication_seeds(self):
        # The pairing guarantee: parallel sharding must not change which
        # seeds run.
        result = run_campaign("pair", 5, 8, _task, workers=2)
        expected = []
        for seed in replication_seeds(5, "pair", 8):
            expected.extend(_task(seed))
        assert result.samples == expected

    def test_unpicklable_task_degrades_to_serial(self):
        serial = run_campaign("lam", 3, 4, lambda seed: [float(seed % 7)])
        parallel = run_campaign("lam", 3, 4,
                                lambda seed: [float(seed % 7)], workers=2)
        assert parallel.samples == serial.samples


def _crashing_task(marker_dir, seed):
    """``run_one`` that kills its worker process the first time it sees
    each seed; retries (and the in-process fallback) then succeed."""
    marker = os.path.join(marker_dir, f"seed-{seed}")
    in_worker = multiprocessing.current_process().name != "MainProcess"
    if in_worker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return _task(seed)


class TestSupervisedCampaign:
    def test_killed_worker_retried_and_aggregates_correct(self, tmp_path):
        supervisor = ShardSupervisor(
            SupervisorConfig(max_retries=3, backoff_base=0.0),
            sleep=lambda _seconds: None)
        run_one = functools.partial(_crashing_task, str(tmp_path))
        result = run_campaign("crashy", 21, 6, run_one, workers=2,
                              supervisor=supervisor)
        expected = run_campaign("crashy", 21, 6, _task)
        assert result.samples == expected.samples
        assert result.mean == pytest.approx(expected.mean, rel=1e-12)
        assert result.stat.count == expected.stat.count
        assert any("worker process died" in e for e in supervisor.events)


class TestCaching:
    def test_second_run_serves_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign("c", 7, 6, _task, workers=2, cache=cache,
                             fingerprint="fp")
        assert len(cache) == 6
        cache2 = ResultCache(tmp_path)
        progress = ProgressReporter(stream=io.StringIO())
        second = run_campaign("c", 7, 6, _task, workers=2, cache=cache2,
                              fingerprint="fp", progress=progress)
        assert cache2.hits == 6
        assert progress.total_shards == 0  # nothing left to compute
        assert second.samples == first.samples
        assert second.mean == pytest.approx(first.mean, rel=1e-12)

    def test_partial_cache_computes_only_missing(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign("c", 7, 3, _task, cache=cache, fingerprint="fp")
        full = run_campaign("c", 7, 6, _task, workers=2, cache=cache,
                            fingerprint="fp")
        assert cache.hits == 3
        assert full.samples == run_campaign("c", 7, 6, _task).samples

    def test_serial_path_also_caches(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign("s", 11, 4, _task, cache=cache, fingerprint="x")
        assert len(cache) == 4
        cache.hits = 0
        again = run_campaign("s", 11, 4, _task, cache=cache, fingerprint="x")
        assert cache.hits == 4
        assert again.samples == run_campaign("s", 11, 4, _task).samples

    def test_different_fingerprint_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign("s", 11, 2, _task, cache=cache, fingerprint="a")
        run_campaign("s", 11, 2, _task, cache=cache, fingerprint="b")
        assert len(cache) == 4


class TestProgressIntegration:
    def test_telemetry_counts_shards_and_samples(self):
        progress = ProgressReporter("camp", stream=io.StringIO())
        result = run_campaign("camp", 42, 8, _task, workers=2,
                              progress=progress)
        snap = progress.snapshot()
        assert snap["total_shards"] == snap["shards_done"] > 0
        assert snap["replications_done"] == 8
        assert snap["samples"] == len(result.samples)
        assert snap["eta_seconds"] == 0.0


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_negate, [3, 1, 2], workers=2) == [-3, -1, -2]

    def test_serial_when_workers_none(self):
        assert parallel_map(_negate, [4]) == [-4]

    def test_unpicklable_fn_degrades(self):
        sup = ShardSupervisor(SupervisorConfig())
        out = parallel_map(lambda v: v + 1, [1, 2], workers=2,
                           supervisor=sup)
        assert out == [2, 3]
        assert any("not picklable" in e for e in sup.events)


def test_default_worker_count_positive():
    assert default_worker_count() >= 1
