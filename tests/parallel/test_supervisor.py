"""Tests for worker supervision: retry, timeout, degradation.

The crash/hang worker functions are module-level so they pickle into
worker processes; the ones that must misbehave only inside a worker
key off the process name.
"""

import multiprocessing
import os
import random
import time

import pytest

from repro.parallel.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    multiprocessing_supported,
)


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def _double(x):
    return x * 2


def _crash_once(payload):
    """Kill the worker process the first time each marker is seen; the
    supervised retry then finds the marker and succeeds."""
    marker_dir, x = payload
    marker = os.path.join(marker_dir, f"seen-{x}")
    if _in_worker() and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return x * 10


def _always_crash_in_worker(x):
    if _in_worker():
        os._exit(1)
    return x + 100


def _hang_in_worker(x):
    if _in_worker():
        time.sleep(1.0)
    return x + 7


def _always_raise(x):
    raise ValueError(f"bad cell {x}")


def fast_supervisor(**overrides):
    defaults = dict(shard_timeout=30.0, max_retries=1, backoff_base=0.0)
    defaults.update(overrides)
    slept = []
    sup = ShardSupervisor(SupervisorConfig(**defaults), sleep=slept.append)
    return sup, slept


class TestSerialPaths:
    def test_workers_one_runs_in_process(self):
        sup, _ = fast_supervisor()
        assert sup.run(_double, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_single_shard_runs_in_process(self):
        sup, _ = fast_supervisor()
        assert sup.run(_double, [21], workers=8) == [42]

    def test_run_serial_helper(self):
        sup, _ = fast_supervisor()
        assert sup.run_serial(_double, [5]) == [10]

    def test_unsupported_platform_degrades(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.supervisor.multiprocessing_supported",
            lambda method=None: False)
        sup, _ = fast_supervisor()
        assert sup.run(_double, [1, 2], workers=4) == [2, 4]
        assert any("degraded" in e for e in sup.events)


class TestParallelExecution:
    def test_results_align_with_shards(self):
        sup, _ = fast_supervisor()
        assert sup.run(_double, list(range(6)), workers=2) == \
            [0, 2, 4, 6, 8, 10]

    def test_on_shard_done_fires_once_per_shard(self):
        sup, _ = fast_supervisor()
        landed = {}
        sup.run(_double, [3, 4], workers=2,
                on_shard_done=lambda i, r: landed.setdefault(i, r))
        assert landed == {0: 6, 1: 8}


class TestFailureHandling:
    def test_killed_worker_is_retried_to_completion(self, tmp_path):
        sup, _ = fast_supervisor(max_retries=3)
        payloads = [(str(tmp_path), x) for x in range(3)]
        assert sup.run(_crash_once, payloads, workers=2) == [0, 10, 20]
        assert any("worker process died" in e for e in sup.events)

    def test_persistent_crasher_degrades_to_in_process(self):
        sup, _ = fast_supervisor(max_retries=1)
        assert sup.run(_always_crash_in_worker, [1, 2], workers=2) == \
            [101, 102]
        assert any("running in-process" in e for e in sup.events)

    def test_hung_worker_times_out_then_completes(self):
        sup, _ = fast_supervisor(shard_timeout=0.2, max_retries=1)
        assert sup.run(_hang_in_worker, [1, 2], workers=2) == [8, 9]
        assert any("timeout" in e for e in sup.events)

    def test_deterministic_error_finally_surfaces(self):
        sup, _ = fast_supervisor(max_retries=1)
        with pytest.raises(ValueError, match="bad cell"):
            sup.run(_always_raise, [5], workers=2)

    def test_backoff_grows_exponentially(self):
        config = SupervisorConfig(backoff_base=0.5, backoff_factor=3.0,
                                  jitter=False)
        assert config.backoff(1) == 0.5
        assert config.backoff(2) == 1.5
        assert config.backoff(3) == 4.5

    def test_backoff_sleep_called_between_retries(self):
        sup, slept = fast_supervisor(max_retries=2, backoff_base=0.01)
        sup.run(_always_crash_in_worker, [1, 2], workers=2)
        assert slept, "retry rounds should sleep"


class TestBackoffJitter:
    """Full jitter: sleeps draw from [0, exponential ceiling)."""

    def test_jitter_respects_exponential_ceiling(self):
        config = SupervisorConfig(backoff_base=0.5, backoff_factor=3.0)
        rng = random.Random(7)
        for attempt in (1, 2, 3, 4):
            ceiling = 0.5 * (3.0 ** (attempt - 1))
            for _ in range(200):
                draw = config.backoff(attempt, rng)
                assert 0.0 <= draw <= ceiling

    def test_jitter_actually_spreads(self):
        config = SupervisorConfig(backoff_base=1.0, backoff_factor=2.0)
        rng = random.Random(11)
        draws = {config.backoff(3, rng) for _ in range(50)}
        assert len(draws) > 40, "full jitter should not collapse"

    def test_seeded_rng_is_deterministic(self):
        config = SupervisorConfig(backoff_base=0.25, backoff_factor=2.0)
        first = [config.backoff(a, random.Random(42)) for a in (1, 2, 3)]
        second = [config.backoff(a, random.Random(42)) for a in (1, 2, 3)]
        assert first == second

    def test_jitter_off_restores_pure_exponential(self):
        config = SupervisorConfig(backoff_base=0.25, backoff_factor=2.0,
                                  jitter=False)
        assert [config.backoff(a) for a in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_supervisor_threads_rng_into_sleeps(self):
        slept = []
        sup = ShardSupervisor(
            SupervisorConfig(shard_timeout=30.0, max_retries=1,
                             backoff_base=0.125, backoff_factor=2.0),
            sleep=slept.append, rng=random.Random(3))
        sup.run(_always_crash_in_worker, [1, 2], workers=2)
        expected_first = random.Random(3).uniform(0.0, 0.125)
        assert slept and slept[0] == expected_first
        assert all(0.0 <= s <= 0.25 for s in slept)


class TestPlatformProbe:
    def test_current_platform_supported(self):
        assert multiprocessing_supported()

    def test_unknown_start_method_rejected(self):
        assert not multiprocessing_supported("no-such-method")
