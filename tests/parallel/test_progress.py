"""Tests for the progress/telemetry reporter."""

import io
import json

from repro.parallel.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_reporter(stream=None, enabled=True):
    clock = FakeClock()
    reporter = ProgressReporter("camp", stream=stream or io.StringIO(),
                                enabled=enabled, clock=clock)
    return reporter, clock


class TestTelemetry:
    def test_throughput_and_eta(self):
        reporter, clock = make_reporter()
        reporter.start(total_shards=4)
        clock.now += 10.0
        reporter.shard_done(0, replications=2, samples=20, wall_time=10.0)
        reporter.shard_done(1, replications=2, samples=20, wall_time=9.0)
        snap = reporter.snapshot()
        assert snap["shards_done"] == 2
        assert snap["samples"] == 40
        assert snap["samples_per_sec"] == 4.0
        # 2 shards in 10s -> 2 remaining shards ~ 10 more seconds.
        assert snap["eta_seconds"] == 10.0
        assert snap["per_shard_wall_seconds"] == [10.0, 9.0]

    def test_eta_zero_when_done(self):
        reporter, clock = make_reporter()
        reporter.start(total_shards=1)
        clock.now += 1.0
        reporter.shard_done(0, replications=1, samples=5, wall_time=1.0)
        assert reporter.snapshot()["eta_seconds"] == 0.0

    def test_eta_unknown_before_first_shard(self):
        reporter, clock = make_reporter()
        reporter.start(total_shards=3)
        assert reporter.snapshot()["eta_seconds"] is None

    def test_finish_freezes_elapsed(self):
        reporter, clock = make_reporter()
        reporter.start(total_shards=1)
        clock.now += 5.0
        reporter.shard_done(0, replications=1, samples=10, wall_time=5.0)
        reporter.finish()
        clock.now += 100.0
        assert reporter.snapshot()["elapsed_seconds"] == 5.0

    def test_retry_and_degrade_events(self):
        reporter, _ = make_reporter()
        reporter.start(total_shards=2)
        reporter.shard_retried(1, attempt=1, reason="worker process died")
        reporter.degraded("shard 1 exceeded retries")
        snap = reporter.snapshot()
        assert snap["retries"] == 1
        assert snap["fallbacks"] == 1
        assert any("worker process died" in e for e in snap["events"])


class TestEmission:
    def test_lines_go_to_stream(self):
        stream = io.StringIO()
        reporter, clock = make_reporter(stream=stream)
        reporter.start(total_shards=1, cached_replications=2)
        clock.now += 1.0
        reporter.shard_done(0, replications=1, samples=3, wall_time=1.0)
        reporter.finish()
        out = stream.getvalue()
        assert "[camp]" in out
        assert "from cache" in out
        assert "shard   0 done" in out
        assert "campaign done" in out

    def test_disabled_reporter_is_silent_but_counts(self):
        stream = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter("q", stream=stream, enabled=False,
                                    clock=clock)
        reporter.start(total_shards=1)
        reporter.shard_done(0, replications=1, samples=1, wall_time=0.1)
        assert stream.getvalue() == ""
        assert reporter.snapshot()["shards_done"] == 1

    def test_write_json(self, tmp_path):
        reporter, clock = make_reporter()
        reporter.start(total_shards=1)
        clock.now += 2.0
        reporter.shard_done(0, replications=1, samples=8, wall_time=2.0)
        path = tmp_path / "telemetry.json"
        reporter.write_json(path)
        data = json.loads(path.read_text())
        assert data["samples"] == 8
        assert data["total_shards"] == 1
