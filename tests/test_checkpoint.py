"""Unit tests for checkpoint records."""

from repro.checkpoint import Checkpoint
from repro.types import CheckpointKind, ProcessId, StableContent


def capture(state, **kw):
    defaults = dict(process_id=ProcessId("P"), kind=CheckpointKind.TYPE_1,
                    state=state, taken_at=1.0, work_done=1.0)
    defaults.update(kw)
    return Checkpoint.capture(**defaults)


class TestIsolation:
    def test_restore_returns_equal_state(self):
        state = {"value": 42, "items": [1, 2]}
        assert capture(state).restore_state() == state

    def test_restore_is_unaliased(self):
        state = {"items": [1, 2]}
        checkpoint = capture(state)
        state["items"].append(3)
        assert checkpoint.restore_state() == {"items": [1, 2]}

    def test_each_restore_is_fresh(self):
        checkpoint = capture({"items": []})
        first = checkpoint.restore_state()
        first["items"].append(1)
        assert checkpoint.restore_state() == {"items": []}


class TestMetadata:
    def test_fields_are_kept(self):
        checkpoint = capture({"x": 1}, epoch=4,
                             content=StableContent.VOLATILE_COPY,
                             meta={"dirty_bit": 1})
        assert checkpoint.epoch == 4
        assert checkpoint.content is StableContent.VOLATILE_COPY
        assert checkpoint.meta["dirty_bit"] == 1

    def test_meta_defaults_empty(self):
        assert capture({"x": 1}).meta == {}

    def test_size_bytes_positive(self):
        assert capture({"x": 1}).size_bytes > 0

    def test_rewritten_changes_without_touching_state(self):
        checkpoint = capture({"x": 1})
        stable = checkpoint.rewritten(kind=CheckpointKind.STABLE, epoch=9,
                                      content=StableContent.VOLATILE_COPY)
        assert stable.kind is CheckpointKind.STABLE
        assert stable.epoch == 9
        assert stable.restore_state() == {"x": 1}
        # The original record is untouched (frozen dataclass copy).
        assert checkpoint.kind is CheckpointKind.TYPE_1
        assert checkpoint.epoch is None
