"""Unit tests for the fault-tolerant process host."""

import pytest

from repro.app.component import ApplicationComponent, Payload
from repro.app.versions import HighConfidenceVersion
from repro.app.workload import Action, ActionKind, WorkloadConfig, WorkloadDriver, \
    generate_actions
from repro.host import FtProcess, IncarnationCounter
from repro.messages.message import Message
from repro.types import CheckpointKind, MessageKind, ProcessId


@pytest.fixture
def plain_pair(sim, network, make_node, rng, trace):
    """Two engine-less FtProcesses wired as peers."""
    incarnation = IncarnationCounter()
    procs = []
    for name in ("A", "B"):
        actions = generate_actions(
            WorkloadConfig(internal_rate=0.5, external_rate=0.05,
                           step_rate=0.1, horizon=200.0), rng, f"w.{name}")
        proc = FtProcess(ProcessId(name), make_node(f"N{name}"), network,
                         ApplicationComponent(name, HighConfidenceVersion(name)),
                         WorkloadDriver(sim, actions, name),
                         incarnation, role=None, trace=trace)
        procs.append(proc)
    procs[0].default_peers = [procs[1].process_id]
    procs[1].default_peers = [procs[0].process_id]
    return procs


def step_action(index=0, stimulus=3):
    return Action(index=index, kind=ActionKind.LOCAL_STEP, gap=0.0,
                  stimulus=stimulus)


class TestIncarnation:
    def test_counter_bumps(self):
        counter = IncarnationCounter()
        assert counter.bump() == 1
        assert counter.value == 1

    def test_stale_delivery_rejected(self, sim, plain_pair):
        a, b = plain_pair
        sent = a.send_internal(Payload(1), [b.process_id], sn=1, dirty_bit=0,
                               validated=True)
        a.incarnation.bump()
        sim.run()
        assert b.counters.get("dropped.stale_incarnation") == 1
        assert b.counters.get("recv.applied") == 0
        # Rejected deliveries are never acknowledged.
        assert len(a.acks) == 1
        assert a.acks.unacknowledged() == sent

    def test_current_incarnation_accepted(self, sim, plain_pair):
        a, b = plain_pair
        a.send_internal(Payload(1), [b.process_id], sn=1, dirty_bit=0,
                        validated=True)
        sim.run()
        assert b.counters.get("recv.applied") == 1
        assert len(a.acks) == 0


class TestSendReceive:
    def test_internal_roundtrip_updates_journals(self, sim, plain_pair):
        a, b = plain_pair
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=0,
                              validated=True)
        sim.run()
        assert a.journal_sent.get(m.dedup_key) is not None
        assert b.journal_recv.get(m.dedup_key) is not None
        assert b.component.state.value == 5

    def test_multicast_fans_out(self, sim, plain_pair):
        a, b = plain_pair
        sent = a.send_internal(Payload(5), [b.process_id, a.process_id],
                               sn=1, dirty_bit=0, validated=True)
        assert len(sent) == 2
        assert len({m.msg_id for m in sent}) == 2

    def test_external_goes_to_device(self, sim, network, plain_pair):
        a, _ = plain_pair
        a.send_external(Payload(7), validated=True)
        sim.run()
        assert len(network.device_log) == 1
        assert len(a.acks) == 0  # externals are not ack-tracked

    def test_duplicate_deliveries_are_dropped(self, sim, plain_pair):
        a, b = plain_pair
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=0,
                              validated=True)
        sim.run()
        a.resend(m)
        sim.run()
        assert b.counters.get("recv.applied") == 1
        assert b.counters.get("recv.duplicate") == 1
        assert len(a.acks) == 0  # the duplicate was acked anyway

    def test_resend_supersedes_original_in_tracker(self, sim, plain_pair):
        a, b = plain_pair
        b.node.crash()
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=0,
                              validated=True)
        sim.run()
        assert a.acks.unacknowledged() == [m]
        clone = a.resend(m)
        assert a.acks.unacknowledged() == [clone]


class TestDeferredAcks:
    def test_unvalidated_message_ack_deferred(self, sim, plain_pair):
        a, b = plain_pair
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=1,
                              validated=False)
        sim.run()
        # Applied but not validated: no ack yet.
        assert b.counters.get("recv.applied") == 1
        assert b.counters.get("ack.deferred") == 1
        assert a.acks.unacknowledged() == [m]

    def test_flush_releases_after_validation(self, sim, plain_pair):
        a, b = plain_pair
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=1,
                              validated=False)
        sim.run()
        b.journal_recv.get(m.dedup_key).validated = True
        assert b.flush_deferred_acks() == 1
        sim.run()
        assert len(a.acks) == 0

    def test_flush_skips_still_unvalidated(self, sim, plain_pair):
        a, b = plain_pair
        a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=1,
                        validated=False)
        sim.run()
        assert b.flush_deferred_acks() == 0


class TestProgressAndCheckpoints:
    def test_progress_tracks_time(self, sim, plain_pair):
        a, _ = plain_pair
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert a.progress == pytest.approx(10.0)

    def test_volatile_checkpoint_saved_and_counted(self, plain_pair):
        a, _ = plain_pair
        a.take_volatile_checkpoint(CheckpointKind.TYPE_1)
        assert a.volatile_checkpoint() is not None
        assert a.counters.get("checkpoint.type-1") == 1

    def test_restore_rewinds_state_and_progress(self, sim, plain_pair):
        a, b = plain_pair
        a.component.local_step(1)
        checkpoint = a.capture_checkpoint(CheckpointKind.TYPE_1)
        sim.schedule_at(10.0, lambda: a.component.local_step(2))
        sim.run()
        value_before = a.component.state.steps_applied
        distance = a.restore_from(checkpoint, "software")
        assert distance == pytest.approx(10.0)
        assert a.component.state.steps_applied == 1
        assert value_before == 2
        assert a.progress == pytest.approx(0.0)

    def test_restore_restores_sequence_and_dedup(self, sim, plain_pair):
        a, b = plain_pair
        checkpoint = b.capture_checkpoint(CheckpointKind.TYPE_1)
        [m] = a.send_internal(Payload(5), [b.process_id], sn=1, dirty_bit=0,
                              validated=True)
        sim.run()
        assert b.dedup.is_duplicate(m)
        b.restore_from(checkpoint, "hardware")
        assert not b.dedup.is_duplicate(m)

    def test_restore_distance_uses_crash_progress(self, sim, plain_pair):
        a, _ = plain_pair
        checkpoint = a.capture_checkpoint(CheckpointKind.TYPE_1)
        sim.schedule_at(5.0, a.node.crash)
        sim.schedule_at(8.0, a.node.restart)
        sim.run()
        distance = a.restore_from(checkpoint, "hardware")
        # Undone work is measured to the crash instant, not the restore.
        assert distance == pytest.approx(5.0)

    def test_checkpoint_meta_has_dirty_bits(self, plain_pair):
        a, _ = plain_pair
        a.mdcd.dirty_bit = 1
        checkpoint = a.capture_checkpoint(CheckpointKind.TYPE_1)
        assert checkpoint.meta["dirty_bit"] == 1


class TestCompaction:
    def test_compacts_only_past_retention(self, sim, plain_pair):
        a, b = plain_pair
        a.journal_retention = 50.0
        [m] = b.send_internal(Payload(1), [a.process_id], sn=1, dirty_bit=0,
                              validated=True)
        sim.run()
        assert a.compact_journals() == 0  # now < retention
        sim.schedule_at(100.0, lambda: None)
        sim.run()
        assert a.compact_journals() == 1
        assert a.journal_recv.get(m.dedup_key) is None


class TestDeposedAndActions:
    def test_deposed_rejects_deliveries(self, sim, plain_pair):
        a, b = plain_pair
        b.depose()
        a.send_internal(Payload(1), [b.process_id], sn=1, dirty_bit=0,
                        validated=True)
        sim.run()
        assert b.counters.get("dropped.deposed") == 1

    def test_deposed_ignores_actions(self, plain_pair):
        a, _ = plain_pair
        a.depose()
        a.perform_action(step_action())
        assert a.component.state.steps_applied == 0

    def test_local_step_action_executes(self, plain_pair):
        a, _ = plain_pair
        a.perform_action(step_action())
        assert a.component.state.steps_applied == 1

    def test_default_send_internal_uses_peers(self, sim, plain_pair):
        a, b = plain_pair
        a.perform_action(Action(index=0, kind=ActionKind.SEND_INTERNAL,
                                gap=0.0, stimulus=5))
        sim.run()
        assert b.counters.get("recv.applied") == 1

    def test_default_send_external(self, sim, network, plain_pair):
        a, _ = plain_pair
        a.perform_action(Action(index=0, kind=ActionKind.SEND_EXTERNAL,
                                gap=0.0, stimulus=5))
        sim.run()
        assert len(network.device_log) == 1
