"""The BENCH_warmstart.json perf trajectory: each bench run appends a
compact summary entry instead of overwriting the previous record, and
legacy single-record files migrate in place."""

import json

from repro.experiments.warmstart_bench import (
    read_latest,
    trajectory_entry,
    write_record,
)


def _record(speedup, fingerprint="abcd1234"):
    return {
        "bench": "warmstart",
        "python": "3.11.7",
        "fingerprint": fingerprint,
        "campaign": {"speedup": speedup, "cold_seconds": 4.0,
                     "warm_seconds": 4.0 / speedup},
        "shrink": {"speedup": speedup + 1.0},
        "digests": {"identical": True},
        "golden": {"matches": True},
        "equivalent": True,
    }


class TestTrajectoryEntry:
    def test_compact_fields(self):
        entry = trajectory_entry(_record(3.5), recorded_at="2026-01-01T00:00:00Z")
        assert entry == {
            "recorded_at": "2026-01-01T00:00:00Z",
            "python": "3.11.7",
            "fingerprint": "abcd1234",
            "campaign_speedup": 3.5,
            "shrink_speedup": 4.5,
            "campaign_cold_seconds": 4.0,
            "campaign_warm_seconds": 4.0 / 3.5,
            "equivalent": True,
        }

    def test_stamps_utc_when_unspecified(self):
        entry = trajectory_entry(_record(3.0))
        assert entry["recorded_at"].endswith("Z")


class TestWriteRecord:
    def test_first_write_creates_document(self, tmp_path):
        path = str(tmp_path / "BENCH_warmstart.json")
        write_record(_record(3.0), path)
        doc = json.load(open(path))
        assert set(doc) == {"bench", "latest", "trajectory"}
        assert doc["latest"]["campaign"]["speedup"] == 3.0
        assert len(doc["trajectory"]) == 1

    def test_repeat_runs_append_not_overwrite(self, tmp_path):
        path = str(tmp_path / "BENCH_warmstart.json")
        for speedup in (3.0, 3.5, 4.0):
            write_record(_record(speedup), path)
        doc = json.load(open(path))
        assert doc["latest"]["campaign"]["speedup"] == 4.0
        assert [e["campaign_speedup"] for e in doc["trajectory"]] == \
            [3.0, 3.5, 4.0]

    def test_legacy_bare_record_migrates(self, tmp_path):
        path = str(tmp_path / "BENCH_warmstart.json")
        with open(path, "w") as fh:
            json.dump(_record(2.5, fingerprint="legacy00"), fh)
        write_record(_record(3.5), path)
        doc = json.load(open(path))
        # The legacy record became the first trajectory entry, stamped
        # with the old file's mtime; the new run follows it.
        assert [e["fingerprint"] for e in doc["trajectory"]] == \
            ["legacy00", "abcd1234"]
        assert doc["trajectory"][0]["recorded_at"].endswith("Z")
        assert doc["latest"]["fingerprint"] == "abcd1234"

    def test_corrupt_file_does_not_block_the_bench(self, tmp_path):
        path = str(tmp_path / "BENCH_warmstart.json")
        with open(path, "w") as fh:
            fh.write("{ torn json")
        write_record(_record(3.0), path)
        doc = json.load(open(path))
        assert len(doc["trajectory"]) == 1


class TestReadLatest:
    def test_reads_trajectory_document(self, tmp_path):
        path = str(tmp_path / "BENCH_warmstart.json")
        write_record(_record(3.0), path)
        assert read_latest(path)["campaign"]["speedup"] == 3.0

    def test_reads_legacy_bare_record(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as fh:
            json.dump(_record(2.5), fh)
        assert read_latest(path)["campaign"]["speedup"] == 2.5

    def test_missing_or_invalid_gives_none(self, tmp_path):
        assert read_latest(str(tmp_path / "absent.json")) is None
        path = str(tmp_path / "junk.json")
        with open(path, "w") as fh:
            fh.write("[1, 2]")
        assert read_latest(path) is None
