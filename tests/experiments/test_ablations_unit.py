"""Unit-level smoke tests for the ablation harnesses (the full runs
live in benchmarks/bench_ablations.py)."""

import pytest

from repro.experiments.ablations import (
    AblationRow,
    ablate_at_coverage,
    ablate_blocking,
    ablate_interval,
    format_ablation,
)
from repro.experiments.figure7 import Figure7Config


class TestStructures:
    def test_blocking_rows_shape(self):
        rows = ablate_blocking(seeds=1, horizon=400.0)
        assert [r.label for r in rows] == ["blocking on", "blocking off"]
        assert all("lines" in r.metrics for r in rows)

    def test_coverage_rows_shape(self):
        rows = ablate_at_coverage(coverages=(1.0,), seeds=1, horizon=1500.0)
        assert rows[0].label == "coverage 1.0"
        assert rows[0].metrics["error detected (takeover)"] == 1

    def test_interval_rows_monotone_saves(self):
        rows = ablate_interval(intervals=(5.0, 20.0),
                               base=Figure7Config(horizon=8_000.0,
                                                  replications=1))
        saves = [r.metrics["stable saves/h (3 procs)"] for r in rows]
        assert saves[0] > saves[1]
        assert all(r.metrics["E[D_wt]"] == rows[0].metrics["E[D_wt]"]
                   for r in rows)

    def test_format_handles_heterogeneous_metrics(self):
        rows = [AblationRow("a", {"x": 1}), AblationRow("b", {"y": 2})]
        text = format_ablation("T", rows)
        assert "T" in text and "x" in text and "y" in text
