"""Unit tests for experiment reporting helpers."""

from repro.experiments.reporting import (
    format_cell,
    format_kv_block,
    format_table,
    log_series_bar,
)


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_tiny_and_huge_use_scientific(self):
        assert "e" in format_cell(1e-7)
        assert "e" in format_cell(1e7)

    def test_zero_stays_fixed(self):
        assert format_cell(0.0) == "0.000"

    def test_non_floats_pass_through(self):
        assert format_cell(5) == "5"
        assert format_cell("x") == "x"
        assert format_cell(None) == "None"
        assert format_cell(True) == "True"


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(["a", "long_header"],
                             [[1, 2], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_contains_all_cells(self):
        table = format_table(["x"], [["hello"], ["world"]])
        assert "hello" in table and "world" in table


class TestKvBlock:
    def test_renders_pairs(self):
        block = format_kv_block("B", [("key", 1.5), ("other", "v")])
        assert block.splitlines()[0] == "B"
        assert "key" in block and "1.500" in block


class TestLogSeriesBar:
    def test_monotone_in_value(self):
        assert len(log_series_bar(10.0)) < len(log_series_bar(1000.0))

    def test_clamps_to_range(self):
        assert len(log_series_bar(1e9, lo=1, hi=100, width=10)) == 10
        assert len(log_series_bar(0.0001, lo=1, hi=100, width=10)) == 1

    def test_nonpositive_empty(self):
        assert log_series_bar(0.0) == ""
