"""Tests for the scenario reproductions and the Table 1 harness.

The benchmarks run these at full size; here each scenario's *claim* is
asserted (reduced sizes where the scenario allows it).
"""

import pytest

from repro.experiments.scenarios import (
    figure1_checkpoint_pattern,
    figure2_tb_blocking,
    figure3_modified_pattern,
    figure4a_naive_loss,
    figure4b_in_transit_notification,
    figure6_coordination_cases,
)
from repro.experiments.table1 import Table1Config, format_table1, run_table1


class TestScenarioClaims:
    def test_figure1(self):
        result = figure1_checkpoint_pattern(horizon=3000.0)
        assert result.passed, result.details

    def test_figure2(self):
        result = figure2_tb_blocking(horizon=250.0)
        assert result.passed, result.details

    def test_figure3(self):
        result = figure3_modified_pattern(horizon=3000.0)
        assert result.passed, result.details

    def test_figure4a(self):
        # Default horizon: the scenario's fault timing is tuned to the
        # default action stream (the stream is horizon-dependent).
        result = figure4a_naive_loss()
        assert result.passed, result.details

    def test_figure4b(self):
        result = figure4b_in_transit_notification(max_seeds=20)
        assert result.passed, result.details

    def test_figure6(self):
        result = figure6_coordination_cases(horizon=2000.0)
        assert result.passed, result.details


class TestTable1:
    @pytest.fixture(scope="class")
    def observations(self):
        return run_table1(Table1Config(horizon=3000.0))

    def test_original_is_confidence_oblivious(self, observations):
        orig = observations["original"]
        assert orig.blocking_dirty.count == 0
        assert set(orig.contents) == {"current-state"}

    def test_adapted_contents_follow_dirty_bit(self, observations):
        adap = observations["adapted"]
        assert adap.contents.get("volatile-copy", 0) > 0
        assert adap.contents.get("current-state", 0) > 0

    def test_notifications_blocked_only_by_original(self, observations):
        assert observations["original"].blocked_kinds.get("passed_AT", 0) > 0
        assert observations["adapted"].blocked_kinds.get("passed_AT", 0) == 0

    def test_formatting_renders(self, observations):
        text = format_table1(observations, Table1Config(horizon=3000.0))
        assert "Blocking period" in text
        assert "volatile-copy" in text
