"""Tests for the ASCII timeline renderer."""

import pytest

from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.experiments.timeline import render_timeline
from repro.types import ProcessId, Role


@pytest.fixture(scope="module")
def systems():
    out = {}
    for scheme in (Scheme.MDCD_ONLY, Scheme.COORDINATED):
        horizon = 2000.0
        system = build_system(SystemConfig(
            scheme=scheme, seed=11, horizon=horizon,
            workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.004,
                                     step_rate=0.01, horizon=horizon),
            workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.004,
                                     step_rate=0.01, horizon=horizon)))
        system.run()
        out[scheme] = system
    return out


def lanes(text):
    out = {}
    for line in text.splitlines()[1:]:
        label, _, body = line.partition("|")
        out[label.strip()] = body.rstrip("|")
    return out


class TestRendering:
    def test_lane_per_process_and_fixed_width(self, systems):
        system = systems[Scheme.MDCD_ONLY]
        text = render_timeline(system.trace,
                               [p.process_id for p in system.process_list()],
                               since=100.0, until=1900.0, width=80)
        body = lanes(text)
        assert set(body) == {"P1_act", "P1_sdw", "P2"}
        assert all(len(lane) == 80 for lane in body.values())

    def test_empty_window_rejected(self, systems):
        system = systems[Scheme.MDCD_ONLY]
        with pytest.raises(ValueError):
            render_timeline(system.trace, [], since=5.0, until=5.0)

    def test_fig1_active_fully_contaminated(self, systems):
        system = systems[Scheme.MDCD_ONLY]
        text = render_timeline(system.trace,
                               [p.process_id for p in system.process_list()],
                               since=100.0, until=1900.0, width=80)
        active_lane = lanes(text)["P1_act"]
        assert "░" not in active_lane  # constant suspicion (Fig. 1)

    def test_fig1_type2_marks_present(self, systems):
        system = systems[Scheme.MDCD_ONLY]
        text = render_timeline(system.trace,
                               [p.process_id for p in system.process_list()],
                               since=100.0, until=1900.0, width=120)
        assert "2" in lanes(text)["P2"]
        assert "1" in lanes(text)["P2"]

    def test_fig3_pseudo_view_for_active(self, systems):
        system = systems[Scheme.COORDINATED]
        text = render_timeline(system.trace,
                               [p.process_id for p in system.process_list()],
                               since=100.0, until=1900.0, width=120,
                               pseudo_for=ProcessId(Role.ACTIVE_1.value))
        active_lane = lanes(text)["P1_act"]
        # The pseudo bit alternates: both shadings appear, plus pseudo
        # checkpoints and stable establishments; no Type-2 anywhere.
        assert "░" in active_lane and "▓" in active_lane
        assert "P" in active_lane
        assert "S" in active_lane
        assert "2" not in active_lane

    def test_shading_matches_checkpoint_transitions(self, systems):
        # A Type-1 mark must sit at a clean->dirty boundary: the cell
        # after a '1' (skipping other marks) is dirty.
        system = systems[Scheme.MDCD_ONLY]
        text = render_timeline(system.trace,
                               [p.process_id for p in system.process_list()],
                               since=100.0, until=1900.0, width=160)
        lane = lanes(text)["P1_sdw"]
        for i, ch in enumerate(lane):
            if ch == "1":
                following = next((c for c in lane[i + 1:] if c in "░▓"), None)
                assert following in ("▓", None)
