"""Tests for the Figure 7 harness (reduced sizes; the full sweep lives
in benchmarks/)."""

from repro.experiments.figure7 import (
    Figure7Config,
    Figure7Point,
    format_figure7,
    run_point,
)


def small_config():
    return Figure7Config(internal_rates=(60, 200), horizon=10_000.0,
                         replications=1)


class TestRunPoint:
    def test_point_has_samples_for_both_schemes(self):
        point = run_point(small_config(), 60)
        assert point.n_co > 5
        assert point.n_wt > 5
        assert point.n_co == point.n_wt  # paired crash schedules

    def test_coordination_wins(self):
        point = run_point(small_config(), 60)
        assert point.e_d_co < point.e_d_wt
        assert point.measured_factor > 2.0

    def test_model_attached(self):
        point = run_point(small_config(), 60)
        assert point.model_co > 0
        assert point.model_wt > point.model_co


class TestConfig:
    def test_scaled_down(self):
        config = Figure7Config().scaled(0.5)
        assert config.horizon == Figure7Config().horizon * 0.5
        assert len(config.internal_rates) <= len(Figure7Config().internal_rates)


class TestFormatting:
    def test_format_contains_series(self):
        points = [Figure7Point(internal_rate=60, e_d_co=10.0, ci_co=1.0,
                               n_co=10, e_d_wt=100.0, ci_wt=5.0, n_wt=10,
                               model_co=9.0, model_wt=95.0)]
        text = format_figure7(points)
        assert "E[D_co]" in text and "E[D_wt]" in text
        assert "60" in text
        assert "log-scale" in text
