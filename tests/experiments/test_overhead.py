"""Tests for the performance-overhead harness."""

import pytest

from repro.coordination.scheme import Scheme
from repro.experiments.overhead import (
    OverheadConfig,
    format_overhead,
    measure_scheme,
    run_overhead,
)


@pytest.fixture(scope="module")
def observations():
    return run_overhead(OverheadConfig(horizon=3000.0))


class TestMeasurements:
    def test_all_schemes_measured(self, observations):
        assert set(observations) == {"mdcd-only", "write-through",
                                     "naive", "coordinated"}

    def test_mdcd_only_never_blocks(self, observations):
        assert observations["mdcd-only"].blocked_time_fraction == 0.0
        assert observations["mdcd-only"].stable_saves_per_hour == 0.0

    def test_blocking_fraction_small(self, observations):
        for obs in observations.values():
            assert obs.blocked_time_fraction < 0.02

    def test_modified_protocol_checkpoints_less(self, observations):
        # Type-2 elimination: the coordinated scheme takes fewer
        # volatile checkpoints than the original protocol.
        assert (observations["coordinated"].volatile_saves_per_hour
                < observations["mdcd-only"].volatile_saves_per_hour)

    def test_identical_application_behaviour(self, observations):
        # The schemes change checkpointing, not the application: the AT
        # count and notification ratio are workload properties.
        at_counts = {obs.at_runs for obs in observations.values()}
        assert len(at_counts) == 1

    def test_storage_accounting_positive(self, observations):
        coordinated = observations["coordinated"]
        assert coordinated.volatile_kb_per_hour > 0
        assert coordinated.stable_kb_per_hour > 0


class TestFormatting:
    def test_table_renders_all_rows(self, observations):
        text = format_overhead(observations)
        for name in observations:
            assert name in text

    def test_single_scheme_measurement(self):
        obs = measure_scheme(OverheadConfig(horizon=1000.0), Scheme.COORDINATED)
        assert obs.scheme == "coordinated"
