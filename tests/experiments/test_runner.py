"""Unit tests for the campaign runner."""

from repro.experiments.runner import CampaignResult, replication_seeds, run_campaign


def _det_task(seed):
    """Module-level (hence picklable) deterministic task."""
    return [float(seed % 13), float(seed % 7)]


class TestSeeds:
    def test_stable_across_calls(self):
        assert replication_seeds(1, "x", 3) == replication_seeds(1, "x", 3)

    def test_distinct_per_replication(self):
        seeds = replication_seeds(1, "x", 10)
        assert len(set(seeds)) == 10

    def test_label_pairs_configurations(self):
        # Same label + master seed -> same seeds: this is what pairs the
        # E[D_co] and E[D_wt] campaigns.
        assert replication_seeds(7, "rate60", 4) == replication_seeds(7, "rate60", 4)
        assert replication_seeds(7, "rate60", 4) != replication_seeds(7, "rate80", 4)


class TestRunCampaign:
    def test_aggregates_all_samples(self):
        result = run_campaign("t", 1, 3, lambda seed: [1.0, 2.0])
        assert result.stat.count == 6
        assert result.mean == 1.5
        assert result.replications == 3

    def test_passes_derived_seeds(self):
        seen = []
        run_campaign("t", 1, 2, lambda seed: seen.append(seed) or [0.0])
        assert seen == replication_seeds(1, "t", 2)

    def test_ci_property(self):
        result = run_campaign("t", 1, 1, lambda seed: [1.0, 3.0])
        assert result.ci95 > 0

    def test_result_round_trips_through_dict(self):
        result = run_campaign("t", 1, 2, lambda seed: [1.0, 2.0])
        clone = CampaignResult.from_dict(result.to_dict())
        assert clone.label == result.label
        assert clone.samples == result.samples
        assert clone.replications == result.replications
        assert clone.mean == result.mean
        assert clone.stat.variance == result.stat.variance

    def test_result_dict_is_json_safe(self):
        import json
        result = run_campaign("t", 1, 1, lambda seed: [4.0])
        clone = CampaignResult.from_dict(json.loads(
            json.dumps(result.to_dict())))
        assert clone.samples == [4.0]

    def test_workers_path_matches_serial(self):
        serial = run_campaign("w", 2, 5, _det_task)
        parallel = run_campaign("w", 2, 5, _det_task, workers=2)
        assert parallel.samples == serial.samples
        assert parallel.replications == serial.replications
