"""Unit tests for the campaign runner."""

from repro.experiments.runner import CampaignResult, replication_seeds, run_campaign


class TestSeeds:
    def test_stable_across_calls(self):
        assert replication_seeds(1, "x", 3) == replication_seeds(1, "x", 3)

    def test_distinct_per_replication(self):
        seeds = replication_seeds(1, "x", 10)
        assert len(set(seeds)) == 10

    def test_label_pairs_configurations(self):
        # Same label + master seed -> same seeds: this is what pairs the
        # E[D_co] and E[D_wt] campaigns.
        assert replication_seeds(7, "rate60", 4) == replication_seeds(7, "rate60", 4)
        assert replication_seeds(7, "rate60", 4) != replication_seeds(7, "rate80", 4)


class TestRunCampaign:
    def test_aggregates_all_samples(self):
        result = run_campaign("t", 1, 3, lambda seed: [1.0, 2.0])
        assert result.stat.count == 6
        assert result.mean == 1.5
        assert result.replications == 3

    def test_passes_derived_seeds(self):
        seen = []
        run_campaign("t", 1, 2, lambda seed: seen.append(seed) or [0.0])
        assert seen == replication_seeds(1, "t", 2)

    def test_ci_property(self):
        result = run_campaign("t", 1, 1, lambda seed: [1.0, 3.0])
        assert result.ci95 > 0
