"""Smoke test for the one-shot reproduction report."""

from repro.experiments.figure7 import Figure7Config
from repro.experiments.report import generate_report


def test_report_regenerates_everything():
    text = generate_report(Figure7Config(internal_rates=(60, 200),
                                         horizon=10_000.0, replications=1))
    # Every artifact family is present...
    for marker in ("Figure 1", "Figure 2", "Figure 3", "Figure 4(a)",
                   "Figure 4(b)", "Figure 6", "Table 1", "E[D_co]",
                   "Performance cost by scheme", "timelines"):
        assert marker in text, marker
    # ...and every scenario claim reproduced.
    assert "Scenario verdict: 6/6" in text
    assert "[FAIL]" not in text
