"""Content-addressed blob store: dedup, verification, refs."""

import pytest

from repro.fabric.cas import BlobStore, blob_digest


@pytest.fixture
def store(tmp_path):
    return BlobStore(tmp_path / "cas")


class TestBlobs:
    def test_put_get_roundtrip(self, store):
        digest = store.put(b"hello fabric")
        assert digest == blob_digest(b"hello fabric")
        assert store.get(digest) == b"hello fabric"
        assert store.hits == 1 and store.puts == 1

    def test_put_is_idempotent(self, store):
        first = store.put(b"payload")
        second = store.put(b"payload")
        assert first == second
        assert store.puts == 1 and store.dedup_puts == 1
        assert store.bytes_written == len(b"payload")

    def test_missing_blob_is_none(self, store):
        assert store.get(blob_digest(b"never stored")) is None
        assert store.misses == 1

    def test_corrupt_blob_counts_as_absent(self, store):
        digest = store.put(b"original bytes")
        (store.root / "blobs" / digest).write_bytes(b"bit-flipped")
        assert store.get(digest) is None
        assert store.misses == 1

    def test_has_does_not_verify_or_count(self, store):
        digest = store.put(b"x" * 100)
        assert store.has(digest)
        assert not store.has(blob_digest(b"other"))
        assert store.hits == 0 and store.misses == 0

    def test_digest_validation(self, store):
        with pytest.raises(ValueError):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError):
            store.get("abc")

    def test_digests_lists_sorted(self, store):
        digests = {store.put(bytes([n])) for n in range(5)}
        assert store.digests() == sorted(digests)

    def test_concurrent_writer_tmp_does_not_collide(self, store):
        # pid-suffixed temp names: a same-pid sequential double write is
        # the degenerate case; the property is simply that the final
        # rename always leaves verified content.
        digest = store.put(b"racing content")
        store.dedup_puts = 0
        (store.root / "blobs" / digest).unlink()
        assert store.put(b"racing content") == digest
        assert store.get(digest) == b"racing content"


class TestRefs:
    def test_ref_roundtrip(self, store):
        digest = store.put(b"image set")
        store.set_ref("imgset-abc123", digest)
        assert store.ref("imgset-abc123") == digest

    def test_missing_ref_is_none(self, store):
        assert store.ref("no-such-ref") is None

    def test_dangling_ref_is_none(self, store):
        store.set_ref("dangle", blob_digest(b"never stored"))
        assert store.ref("dangle") is None

    def test_ref_repoint(self, store):
        one = store.put(b"one")
        two = store.put(b"two")
        store.set_ref("latest", one)
        store.set_ref("latest", two)
        assert store.ref("latest") == two

    def test_ref_name_validation(self, store):
        digest = store.put(b"data")
        with pytest.raises(ValueError):
            store.set_ref("../escape", digest)
        with pytest.raises(ValueError):
            store.set_ref("a/b", digest)

    def test_stats_shape(self, store):
        store.put(b"z")
        stats = store.stats()
        assert stats["puts"] == 1 and stats["blobs"] == 1
        assert set(stats) == {"hits", "misses", "puts", "dedup_puts",
                              "bytes_written", "blobs"}
