"""End-to-end fabric campaigns: equivalence, death, resume, dedup.

Workers are real subprocesses (spawned through the CLI), so the kill
tests exercise genuine process death — EOF on the supervisor's socket,
half-executed shards, torn journal appends — not simulations of it.
Everything asserts bit-for-bit equality against the in-process serial
paths: the fabric moves execution, never changes it.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.audit import AuditConfig
from repro.audit.campaign import _run_one_schedule
from repro.audit.generator import generate_schedules, reference_timeline
from repro.fabric import (
    FabricConfig,
    FabricSupervisor,
    plan_shards,
    read_journal,
    run_fabric_campaign,
    spawn_worker,
)
from repro.flock.runner import _run_flock_shard
from repro.warmstart import share_schedule_seeds


@pytest.fixture(scope="module")
def config():
    return AuditConfig(scheme="coordinated", seed=3, schedules=16,
                       horizon=240.0)


@pytest.fixture(scope="module")
def timeline(config):
    return reference_timeline(config)


@pytest.fixture(scope="module")
def shared(config, timeline):
    return share_schedule_seeds(
        config, generate_schedules(config, timeline=timeline))


@pytest.fixture(scope="module")
def serial_cold(config, shared):
    cd = config.to_dict()
    return [_run_one_schedule((cd, s.to_dict())) for s in shared]


@pytest.fixture(scope="module")
def serial_flock(config, shared):
    return _run_flock_shard(
        (config.to_dict(), [s.to_dict() for s in shared], None, 32))


class TestEquivalence:
    def test_cold_campaign_matches_serial(self, config, shared, serial_cold,
                                          tmp_path):
        results, stats = run_fabric_campaign(
            config, shared, mode="cold", workers=2,
            cas_dir=str(tmp_path / "cas"),
            fabric=FabricConfig(shard_size=4))
        assert results == serial_cold
        assert stats["shards"] == len(plan_shards(config, shared,
                                                  shard_size=4))
        assert stats["workers"]

    def test_flock_campaign_matches_serial_flock(self, config, shared,
                                                 serial_flock, timeline,
                                                 tmp_path):
        results, stats = run_fabric_campaign(
            config, shared, mode="flock", workers=1,
            cas_dir=str(tmp_path / "cas"), timeline=timeline)
        assert results == serial_flock
        assert stats["mode"] == "fabric-flock"

    def test_flock_and_cold_agree_on_verdicts(self, serial_cold,
                                              serial_flock):
        def verdicts(results):
            return [(r["violated"], r["error"]) for r in results]
        assert verdicts(serial_cold) == verdicts(serial_flock)


class TestWorkerDeath:
    def test_kill9_worker_mid_campaign(self, config, shared, serial_cold,
                                       tmp_path):
        """SIGKILL one of two workers mid-flight: the campaign must
        still complete with results identical to serial."""
        supervisor = FabricSupervisor(
            config, shared, mode="cold", cas_root=str(tmp_path / "cas"),
            journal_path=str(tmp_path / "journal.jsonl"),
            fabric=FabricConfig(shard_size=2, heartbeat_timeout=1.5))
        supervisor.prepare()
        victim = spawn_worker("127.0.0.1", supervisor.port,
                              str(tmp_path / "cas"), name="victim")
        survivor = spawn_worker("127.0.0.1", supervisor.port,
                                str(tmp_path / "cas"), name="survivor")

        def assassinate():
            time.sleep(0.9)
            try:
                os.kill(victim.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

        killer = threading.Thread(target=assassinate)
        killer.start()
        try:
            results = supervisor.serve()
        finally:
            killer.join()
            for proc in (victim, survivor):
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert results == serial_cold
        kinds = [r["type"]
                 for r in read_journal(str(tmp_path / "journal.jsonl"))]
        assert kinds[0] == "campaign"
        assert kinds.count("done") == len(supervisor.plan)


class TestSupervisorResume:
    def test_resume_from_partial_journal(self, config, shared, serial_cold,
                                         tmp_path):
        """A supervisor restarted over a half-written journal (torn
        tail included) re-dispatches only the missing shards and
        reassembles the identical result set."""
        journal = tmp_path / "journal.jsonl"
        cas = str(tmp_path / "cas")
        first, stats1 = run_fabric_campaign(
            config, shared, mode="cold", workers=1, cas_dir=cas,
            journal=str(journal), fabric=FabricConfig(shard_size=4))
        assert first == serial_cold
        assert stats1["recovered_shards"] == 0

        # Re-create the journal a kill -9'd supervisor leaves behind:
        # header, a prefix of the done records, one torn append.
        records = read_journal(str(journal))
        done = [r for r in records if r["type"] == "done"]
        keep = done[: len(done) // 2]
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(records[0]) + "\n")
            for record in keep:
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps(done[-1])[:17])  # torn mid-append

        second, stats2 = run_fabric_campaign(
            config, shared, mode="cold", workers=1, cas_dir=cas,
            journal=str(journal), fabric=FabricConfig(shard_size=4))
        assert second == serial_cold
        assert stats2["recovered_shards"] == len(keep)

    def test_fully_complete_journal_needs_no_workers(self, config, shared,
                                                     serial_cold, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        cas = str(tmp_path / "cas")
        run_fabric_campaign(config, shared, mode="cold", workers=1,
                            cas_dir=cas, journal=journal,
                            fabric=FabricConfig(shard_size=4))
        # Zero workers: completion must come entirely from the journal.
        results, stats = run_fabric_campaign(
            config, shared, mode="cold", workers=0, cas_dir=cas,
            journal=journal, fabric=FabricConfig(shard_size=4))
        assert results == serial_cold
        assert stats["recovered_shards"] == stats["shards"]
        assert stats["workers"] == []


class TestTransferEconomics:
    def test_image_set_transfers_exactly_once_across_campaigns(
            self, config, shared, serial_flock, timeline, tmp_path):
        """Distinct worker CAS dir (the separate-host shape): campaign
        one ships each image set once; campaign two ships nothing."""
        sup_cas = str(tmp_path / "sup-cas")
        worker_cas = str(tmp_path / "worker-cas")
        r1, s1 = run_fabric_campaign(
            config, shared, mode="flock", workers=1, cas_dir=sup_cas,
            worker_cas_dirs=[worker_cas], timeline=timeline)
        r2, s2 = run_fabric_campaign(
            config, shared, mode="flock", workers=1, cas_dir=sup_cas,
            worker_cas_dirs=[worker_cas], timeline=timeline)
        assert r1 == serial_flock and r2 == serial_flock

        prefixes = len({s.prefix for s in plan_shards(config, shared)
                        if s.prefix is not None})
        assert prefixes >= 1
        w1 = s1["worker_stats"]["w0"]
        w2 = s2["worker_stats"]["w0"]
        assert w1["transfers"] == prefixes
        assert sum(s1["blob_serves"].values()) == prefixes
        assert w2["transfers"] == 0, "second campaign must re-ship nothing"
        assert w2["cas_hits"] >= prefixes
        assert s2["blob_serves"] == {}
        # The supervisor reused its exported blobs via refs, too.
        assert s1["sets_exported"] >= 1 and s2["sets_exported"] == 0


class TestDegradation:
    def test_exhausted_shard_runs_in_supervisor(self, config, shared,
                                                serial_cold, tmp_path):
        """Shards past the retry budget execute in-process; the
        campaign completes with identical results and no workers."""
        supervisor = FabricSupervisor(
            config, shared, mode="cold", cas_root=str(tmp_path / "cas"),
            fabric=FabricConfig(shard_size=4, max_retries=1))
        supervisor.prepare()
        for shard in supervisor.plan:
            supervisor._attempts[shard.shard_id] = 5  # past the budget
        supervisor._degrade_exhausted()
        results = supervisor.serve()
        assert results == serial_cold
        assert supervisor.stats()["local_runs"] == len(supervisor.plan)

    def test_strikes_exclude_workers(self, config, shared, tmp_path):
        supervisor = FabricSupervisor(
            config, shared, mode="cold", cas_root=str(tmp_path / "cas"),
            journal_path=str(tmp_path / "j.jsonl"),
            fabric=FabricConfig(max_worker_strikes=2))
        supervisor.prepare()
        supervisor._strike("flaky", "shard 0 died")
        assert "flaky" not in supervisor._excluded
        supervisor._strike("flaky", "shard 1 died")
        assert "flaky" in supervisor._excluded
        supervisor.journal.close()
        kinds = [r["type"] for r in read_journal(str(tmp_path / "j.jsonl"))]
        assert "exclude" in kinds


@pytest.mark.slow
class TestSupervisorKill9:
    def test_kill9_supervisor_then_resume(self, config, tmp_path):
        """SIGKILL the supervisor process mid-campaign; a restart over
        the same journal completes with a serial-identical artifact."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        serial_art = tmp_path / "serial.json"
        subprocess.run(
            [sys.executable, "-m", "repro", "audit", "--schedules", "24",
             "--horizon", "240", "--seed", "3", "--out", str(serial_art)],
            env=env, check=True, capture_output=True, timeout=300)

        fabric_cmd = [
            sys.executable, "-m", "repro", "audit", "--schedules", "24",
            "--horizon", "240", "--seed", "3", "--fabric", "2",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--cas-dir", str(tmp_path / "cas"),
            "--out", str(tmp_path / "fabric.json")]
        first = subprocess.Popen(fabric_cmd, env=env,
                                 stdout=subprocess.DEVNULL,
                                 stderr=subprocess.DEVNULL)
        time.sleep(2.5)
        try:
            os.kill(first.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        first.wait()

        second = subprocess.run(fabric_cmd, env=env, capture_output=True,
                                text=True, timeout=300)
        assert second.returncode == 0, second.stdout + second.stderr
        with open(serial_art) as fh:
            serial_report = json.load(fh)
        with open(tmp_path / "fabric.json") as fh:
            fabric_report = json.load(fh)
        for field in ("violations", "errors", "shrunk", "fingerprint"):
            assert fabric_report[field] == serial_report[field]
