"""Fabric dialogue: frame helpers, blob chunking, FrameChannel."""

import socket
import threading

import pytest

from repro.fabric import protocol
from repro.fabric.cas import blob_digest
from repro.fabric.protocol import (
    BlobAssembler,
    FabricProtocolError,
    FrameChannel,
    blob_frames,
    expect,
    frame,
)


class TestFrameHelpers:
    def test_frame_builds_typed_body(self):
        assert frame("task", shard=3) == {"type": "task", "shard": 3}

    def test_expect_accepts_listed_types(self):
        body = frame("result", shard=1)
        assert expect(body, "result", "heartbeat") is body

    def test_expect_rejects_wrong_type(self):
        with pytest.raises(FabricProtocolError):
            expect(frame("task"), "result")

    def test_expect_rejects_non_frames(self):
        with pytest.raises(FabricProtocolError):
            expect(["not", "a", "frame"])
        with pytest.raises(FabricProtocolError):
            expect({"no_type": True})


class TestBlobTransfer:
    def _roundtrip(self, data: bytes) -> bytes:
        frames = list(blob_frames(blob_digest(data), data))
        assembler = BlobAssembler(frames[0])
        out = None
        for body in frames[1:]:
            out = assembler.feed(body)
        return out

    def test_small_blob_roundtrip(self):
        assert self._roundtrip(b"tiny") == b"tiny"

    def test_empty_blob_roundtrip(self):
        assert self._roundtrip(b"") == b""

    def test_multi_chunk_roundtrip(self, monkeypatch):
        monkeypatch.setattr(protocol, "BLOB_CHUNK_BYTES", 64)
        data = bytes(range(256)) * 3
        frames = list(blob_frames(blob_digest(data), data))
        assert len(frames) > 3  # header + several chunks + end
        assembler = BlobAssembler(frames[0])
        out = None
        for body in frames[1:]:
            out = assembler.feed(body)
        assert out == data

    def test_out_of_order_chunk_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "BLOB_CHUNK_BYTES", 8)
        data = b"0123456789abcdef"
        frames = list(blob_frames(blob_digest(data), data))
        assembler = BlobAssembler(frames[0])
        with pytest.raises(FabricProtocolError, match="out of order"):
            assembler.feed(frames[2])  # seq 1 before seq 0

    def test_truncated_transfer_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "BLOB_CHUNK_BYTES", 8)
        data = b"0123456789abcdef"
        frames = list(blob_frames(blob_digest(data), data))
        assembler = BlobAssembler(frames[0])
        assembler.feed(frames[1])
        with pytest.raises(FabricProtocolError, match="truncated"):
            assembler.feed(frames[-1])  # blob-end with a chunk missing

    def test_content_digest_mismatch_rejected(self):
        data = b"authentic bytes"
        frames = list(blob_frames(blob_digest(b"forged"), data))
        assembler = BlobAssembler(frames[0])
        assembler.feed(frames[1])
        with pytest.raises(FabricProtocolError, match="digest"):
            assembler.feed(frames[2])

    def test_interleaved_blob_rejected(self):
        a = list(blob_frames(blob_digest(b"aaa"), b"aaa"))
        b = list(blob_frames(blob_digest(b"bbb"), b"bbb"))
        assembler = BlobAssembler(a[0])
        with pytest.raises(FabricProtocolError, match="interleaved"):
            assembler.feed(b[1])

    def test_undecodable_base64_rejected(self):
        data = b"payload"
        frames = list(blob_frames(blob_digest(data), data))
        frames[1]["data"] = "!!! not base64 !!!"
        with pytest.raises(FabricProtocolError, match="undecodable"):
            BlobAssembler(frames[0]).feed(frames[1])


class TestFrameChannel:
    @pytest.fixture
    def pair(self):
        left, right = socket.socketpair()
        yield FrameChannel(left), FrameChannel(right)
        left.close()
        right.close()

    def test_send_recv_roundtrip(self, pair):
        left, right = pair
        left.send(frame("hello", worker="w0"))
        assert right.recv(timeout=2.0) == {"type": "hello", "worker": "w0"}

    def test_multiple_frames_buffer(self, pair):
        left, right = pair
        left.send(frame("a"))
        left.send(frame("b"))
        assert right.recv(timeout=2.0)["type"] == "a"
        assert right.recv(timeout=2.0)["type"] == "b"

    def test_timeout_returns_none(self, pair):
        _left, right = pair
        assert right.recv(timeout=0.05) is None

    def test_closed_peer_raises(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionError):
            right.recv(timeout=2.0)

    def test_recv_blob_over_socket(self, pair, monkeypatch):
        monkeypatch.setattr(protocol, "BLOB_CHUNK_BYTES", 128)
        left, right = pair
        data = bytes(range(256)) * 4
        digest = blob_digest(data)

        def serve():
            for body in blob_frames(digest, data):
                left.send(body)

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            header = right.recv(timeout=2.0)
            assert right.recv_blob(header, timeout=2.0) == data
        finally:
            thread.join()
