"""Shard planning: flock-aware grouping, chunking, ordering."""

import pytest

from repro.audit import AuditConfig
from repro.audit.generator import generate_schedules, reference_timeline
from repro.fabric.plan import plan_prefixes, plan_shards
from repro.warmstart import share_schedule_seeds
from repro.warmstart.store import PrefixKey


@pytest.fixture(scope="module")
def config():
    return AuditConfig(scheme="coordinated", seed=5, schedules=24,
                       horizon=240.0)


@pytest.fixture(scope="module")
def shared(config):
    tl = reference_timeline(config)
    return share_schedule_seeds(
        config, generate_schedules(config, timeline=tl))


@pytest.fixture(scope="module")
def diverse(config):
    return generate_schedules(config)


class TestPlanning:
    def test_plan_is_deterministic(self, config, shared):
        assert plan_shards(config, shared) == plan_shards(config, shared)

    def test_every_schedule_planned_exactly_once(self, config, shared):
        plan = plan_shards(config, shared, shard_size=4)
        seen = [i for shard in plan for i in shard.indices]
        assert sorted(seen) == list(range(len(shared)))

    def test_shard_ids_are_positional(self, config, shared):
        plan = plan_shards(config, shared, shard_size=4)
        assert [s.shard_id for s in plan] == list(range(len(plan)))

    def test_grouped_shards_share_one_prefix(self, config, shared):
        for shard in plan_shards(config, shared, shard_size=6):
            if shard.prefix is None:
                continue
            digests = {PrefixKey.for_schedule(config, shared[i]).digest()
                       for i in shard.indices}
            assert digests == {shard.prefix}

    def test_shard_size_bounds_every_shard(self, config, shared):
        for shard in plan_shards(config, shared, shard_size=5):
            assert 1 <= len(shard.indices) <= 5

    def test_largest_groups_dispatch_first(self, config, shared):
        plan = plan_shards(config, shared, shard_size=100)
        group_sizes = [len(s.indices) for s in plan if s.prefix is not None]
        assert group_sizes == sorted(group_sizes, reverse=True)

    def test_mixed_shards_trail_the_plan(self, config, shared):
        plan = plan_shards(config, shared, shard_size=4)
        kinds = [s.prefix is None for s in plan]
        assert kinds == sorted(kinds)  # all False before all True

    def test_divergence_ascending_within_group(self, config, shared):
        from repro.warmstart.engine import divergence_time
        for shard in plan_shards(config, shared, shard_size=100):
            if shard.prefix is None:
                continue
            times = [divergence_time(shared[i]) for i in shard.indices]
            assert times == sorted(times)

    def test_diverse_seeds_mostly_pool_cold(self, config, diverse):
        # Per-schedule seeds -> singleton prefixes -> mixed shards.
        plan = plan_shards(config, diverse, shard_size=8)
        mixed = [s for s in plan if s.prefix is None]
        assert sum(len(s.indices) for s in mixed) >= len(diverse) - 4

    def test_plan_prefixes_are_distinct_sorted(self, config, shared):
        plan = plan_shards(config, shared, shard_size=3)
        prefixes = plan_prefixes(plan)
        assert prefixes == sorted(set(prefixes))
        assert all(isinstance(p, str) for p in prefixes)

    def test_to_dict_shape(self, config, shared):
        shard = plan_shards(config, shared, shard_size=4)[0]
        data = shard.to_dict()
        assert data["shard_id"] == 0
        assert data["indices"] == list(shard.indices)
