"""Dispatch journal: campaign identity, recovery, torn tails."""

import json

import pytest

from repro.audit import AuditConfig
from repro.audit.generator import generate_schedules
from repro.fabric.journal import (
    DispatchJournal,
    JournalMismatch,
    campaign_key,
    read_journal,
)


@pytest.fixture(scope="module")
def config():
    return AuditConfig(scheme="coordinated", seed=2, schedules=6,
                       horizon=200.0)


@pytest.fixture(scope="module")
def schedules(config):
    return generate_schedules(config)


class TestCampaignKey:
    def test_stable_across_calls(self, config, schedules):
        assert campaign_key(config, schedules, "cold") == \
            campaign_key(config, schedules, "cold")

    def test_mode_changes_key(self, config, schedules):
        assert campaign_key(config, schedules, "cold") != \
            campaign_key(config, schedules, "flock")

    def test_schedule_subset_changes_key(self, config, schedules):
        assert campaign_key(config, schedules, "cold") != \
            campaign_key(config, schedules[:-1], "cold")


class TestJournalLifecycle:
    def test_fresh_journal_writes_header(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            assert not journal.resumed
            journal.shard_done(0, "w0", [{"violated": False}])
        records = read_journal(str(path))
        assert records[0] == {"type": "campaign", "key": key}
        assert records[1]["type"] == "done"

    def test_resume_recovers_done_shards(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            journal.shard_done(0, "w0", [{"r": 1}])
            journal.shard_done(2, "w1", [{"r": 2}])
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            assert journal.resumed
            assert journal.recovered == {0: [{"r": 1}], 2: [{"r": 2}]}

    def test_wrong_campaign_refused(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        with DispatchJournal(str(path)) as journal:
            journal.open(campaign_key(config, schedules, "cold"))
        with pytest.raises(JournalMismatch):
            DispatchJournal(str(path)).open(
                campaign_key(config, schedules, "flock"))

    def test_torn_tail_is_tolerated(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            journal.shard_done(0, "w0", [{"r": 1}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "done", "shard": 1, "resu')  # kill -9 here
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            assert journal.recovered == {0: [{"r": 1}]}

    def test_torn_middle_is_an_error(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("NOT JSON\n")
            fh.write(json.dumps({"type": "done", "shard": 1,
                                 "results": []}) + "\n")
        with pytest.raises(ValueError):
            DispatchJournal(str(path)).open(key)

    def test_notes_and_exclusions_are_recorded(self, tmp_path, config,
                                               schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            journal.note("steal", shard=3, worker="w1")
            journal.worker_excluded("w9", "too many strikes")
        kinds = [r["type"] for r in read_journal(str(path))]
        assert kinds == ["campaign", "steal", "exclude"]

    def test_notes_do_not_affect_recovery(self, tmp_path, config, schedules):
        path = tmp_path / "j.jsonl"
        key = campaign_key(config, schedules, "cold")
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            journal.note("requeue", shard=1, reason="worker died", attempt=1)
            journal.shard_done(1, "w0", [{"r": 9}])
        with DispatchJournal(str(path)) as journal:
            journal.open(key)
            assert journal.recovered == {1: [{"r": 9}]}
