"""Unit tests for message records."""

from repro.messages.message import DEVICE, Message, passed_at_notification
from repro.types import MessageKind, ProcessId


def internal(**kw):
    return Message(kind=MessageKind.INTERNAL, sender=ProcessId("A"),
                   receiver=ProcessId("B"), **kw)


class TestIdentity:
    def test_msg_ids_unique(self):
        assert internal().msg_id != internal().msg_id

    def test_dedup_key_defaults_to_msg_id(self):
        m = internal()
        assert m.dedup_key == m.msg_id

    def test_clone_for_resend_keeps_logical_identity(self):
        m = internal(sn=5, payload="p")
        clone = m.clone_for_resend()
        assert clone.msg_id != m.msg_id
        assert clone.dedup_key == m.msg_id
        assert clone.resend_of == m.msg_id
        assert clone.sn == 5 and clone.payload == "p"

    def test_clone_of_clone_keeps_original_key(self):
        m = internal()
        second = m.clone_for_resend().clone_for_resend()
        assert second.dedup_key == m.msg_id


class TestKinds:
    def test_is_application(self):
        assert internal().is_application
        external = Message(kind=MessageKind.EXTERNAL, sender=ProcessId("A"),
                           receiver=DEVICE)
        assert external.is_application
        note = passed_at_notification(ProcessId("A"), ProcessId("B"), 3, 1)
        assert not note.is_application

    def test_passed_at_builder(self):
        note = passed_at_notification(ProcessId("A"), ProcessId("B"),
                                      msg_sn=7, ndc=2)
        assert note.kind is MessageKind.PASSED_AT
        assert note.sn == 7 and note.ndc == 2
        assert note.payload is None


class TestDescribe:
    def test_describe_mentions_endpoints_and_fields(self):
        m = internal(sn=4, ndc=2, dirty_bit=1)
        text = m.describe()
        assert "A->B" in text
        assert "sn=4" in text and "ndc=2" in text and "db=1" in text

    def test_describe_flags_corruption(self):
        assert "CORRUPT" in internal(corrupt=True).describe()
        assert "CORRUPT" not in internal().describe()
