"""Unit tests for the shadow's suppressed-message log."""

import pytest

from repro.messages.log import MessageLog
from repro.messages.message import Message
from repro.types import MessageKind, ProcessId


def msg(sn):
    return Message(kind=MessageKind.INTERNAL, sender=ProcessId("S"),
                   receiver=ProcessId("P2"), sn=sn)


def loaded(*sns):
    log = MessageLog()
    for sn in sns:
        log.append(sn, msg(sn))
    return log


class TestAppend:
    def test_appends_in_order(self):
        log = loaded(1, 2, 3)
        assert [e.sn for e in log] == [1, 2, 3]

    def test_rejects_non_increasing_sn(self):
        log = loaded(3)
        with pytest.raises(ValueError):
            log.append(3, msg(3))
        with pytest.raises(ValueError):
            log.append(2, msg(2))


class TestReclaim:
    def test_reclaims_up_to_sn(self):
        log = loaded(1, 2, 3, 4)
        dropped = log.reclaim_up_to(2)
        assert dropped == 2
        assert [e.sn for e in log] == [3, 4]

    def test_reclaim_counts_accumulate(self):
        log = loaded(1, 2, 3)
        log.reclaim_up_to(1)
        log.reclaim_up_to(3)
        assert log.reclaimed_count == 3

    def test_reclaim_nothing(self):
        log = loaded(5, 6)
        assert log.reclaim_up_to(4) == 0
        assert len(log) == 2


class TestEntriesAfter:
    def test_none_returns_all(self):
        log = loaded(1, 2)
        assert len(log.entries_after(None)) == 2

    def test_strictly_after(self):
        log = loaded(1, 2, 3)
        assert [e.sn for e in log.entries_after(2)] == [3]

    def test_clear(self):
        log = loaded(1, 2)
        log.clear()
        assert len(log) == 0
