"""Unit tests for sequence numbers, ack tracking and deduplication."""

from repro.messages.message import Message
from repro.messages.sequence import (
    AckTracker,
    ReceiveDeduplicator,
    SequenceAllocator,
    latest_sn,
)
from repro.types import MessageKind, ProcessId


def msg(sn=None, sender="A"):
    return Message(kind=MessageKind.INTERNAL, sender=ProcessId(sender),
                   receiver=ProcessId("B"), sn=sn)


class TestSequenceAllocator:
    def test_allocates_monotonically(self):
        alloc = SequenceAllocator()
        assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]

    def test_current_tracks_last(self):
        alloc = SequenceAllocator()
        alloc.allocate()
        assert alloc.current == 1

    def test_restore_rewinds(self):
        alloc = SequenceAllocator()
        for _ in range(5):
            alloc.allocate()
        alloc.restore(2)
        assert alloc.allocate() == 3


class TestAckTracker:
    def test_unacked_until_acked(self):
        tracker = AckTracker()
        m = msg()
        tracker.sent(m)
        assert tracker.unacknowledged() == [m]
        tracker.acked(m.msg_id)
        assert tracker.unacknowledged() == []

    def test_unknown_ack_ignored(self):
        tracker = AckTracker()
        tracker.acked(999)
        assert tracker.acked_count == 0

    def test_unacknowledged_in_send_order(self):
        tracker = AckTracker()
        sent = [msg() for _ in range(4)]
        for m in sent:
            tracker.sent(m)
        assert tracker.unacknowledged() == sent

    def test_restore_replaces_contents(self):
        tracker = AckTracker()
        tracker.sent(msg())
        replacement = [msg(), msg()]
        tracker.restore(replacement)
        assert tracker.unacknowledged() == sorted(replacement,
                                                  key=lambda m: m.msg_id)
        assert len(tracker) == 2


class TestDeduplicator:
    def test_fresh_message_not_duplicate(self):
        dedup = ReceiveDeduplicator()
        assert not dedup.is_duplicate(msg())

    def test_recorded_message_is_duplicate(self):
        dedup = ReceiveDeduplicator()
        m = msg()
        dedup.record(m)
        assert dedup.is_duplicate(m)

    def test_resend_of_recorded_is_duplicate(self):
        dedup = ReceiveDeduplicator()
        m = msg()
        dedup.record(m)
        assert dedup.is_duplicate(m.clone_for_resend())

    def test_snapshot_restore_roundtrip(self):
        dedup = ReceiveDeduplicator()
        m = msg()
        dedup.record(m)
        snapshot = dedup.snapshot()
        other = ReceiveDeduplicator()
        other.restore(snapshot)
        assert other.is_duplicate(m)

    def test_restore_discards_later_records(self):
        dedup = ReceiveDeduplicator()
        early = msg()
        snapshot_before = dedup.snapshot()
        dedup.record(early)
        dedup.restore(snapshot_before)
        assert not dedup.is_duplicate(early)


class TestLatestSn:
    def test_none_when_empty(self):
        assert latest_sn([]) is None

    def test_highest_overall(self):
        assert latest_sn([msg(sn=1), msg(sn=9), msg(sn=4)]) == 9

    def test_filter_by_sender(self):
        msgs = [msg(sn=1, sender="A"), msg(sn=9, sender="C")]
        assert latest_sn(msgs, sender=ProcessId("A")) == 1

    def test_ignores_null_sns(self):
        assert latest_sn([msg(sn=None), msg(sn=2)]) == 2
