"""Unit tests for drifting clocks."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import ClockConfig, DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def make_clock(delta=0.01, rho=1e-5, seed=3, name="c1", sim=None):
    sim = sim if sim is not None else Simulator()
    return sim, DriftingClock(sim, ClockConfig(delta=delta, rho=rho),
                              RngRegistry(seed), name=name)


class TestConfig:
    def test_rejects_negative_delta(self):
        with pytest.raises(ClockError):
            ClockConfig(delta=-1.0)

    def test_rejects_negative_rho(self):
        with pytest.raises(ClockError):
            ClockConfig(rho=-1e-5)

    def test_max_skew_formula(self):
        config = ClockConfig(delta=0.5, rho=1e-4)
        assert config.max_skew(0.0) == 0.5
        assert config.max_skew(1000.0) == pytest.approx(0.5 + 0.2)


class TestDrift:
    def test_drift_within_bounds(self):
        for seed in range(20):
            _, clock = make_clock(rho=1e-4, seed=seed)
            assert -1e-4 <= clock.drift <= 1e-4

    def test_initial_offset_within_half_delta(self):
        for seed in range(20):
            _, clock = make_clock(delta=0.2, seed=seed)
            assert abs(clock.read(0.0)) <= 0.1 + 1e-12

    def test_two_clocks_within_delta(self):
        sim = Simulator()
        reg = RngRegistry(5)
        config = ClockConfig(delta=0.2, rho=0.0)
        a = DriftingClock(sim, config, reg, "a")
        b = DriftingClock(sim, config, reg, "b")
        assert abs(a.read(0.0) - b.read(0.0)) <= 0.2

    def test_clock_advances_with_true_time(self):
        _, clock = make_clock()
        assert clock.read(100.0) > clock.read(50.0)

    def test_drift_rate_applies(self):
        sim = Simulator()
        clock = DriftingClock(sim, ClockConfig(delta=0.0, rho=1e-3),
                              RngRegistry(1), "d")
        elapsed_local = clock.read(1000.0) - clock.read(0.0)
        assert elapsed_local == pytest.approx(1000.0 * (1 + clock.drift))


class TestConversion:
    def test_true_time_roundtrip(self):
        _, clock = make_clock(rho=1e-4, seed=9)
        for t in (0.0, 10.0, 1234.5):
            local = clock.read(t)
            assert clock.true_time_of(local) == pytest.approx(t, abs=1e-9)

    def test_now_matches_read_of_sim_now(self):
        sim, clock = make_clock()
        sim.schedule_at(50.0, lambda: None)
        sim.run()
        assert clock.now() == clock.read(sim.now)


class TestResync:
    def test_resync_bounds_error(self):
        for seed in range(10):
            sim, clock = make_clock(delta=0.2, rho=1e-4, seed=seed)
            sim.schedule_at(5000.0, lambda: None)
            sim.run()
            clock.resync()
            assert abs(clock.now() - sim.now) <= 0.1 + 1e-12

    def test_resync_resets_elapsed(self):
        sim, clock = make_clock()
        sim.schedule_at(100.0, lambda: None)
        sim.run()
        assert clock.elapsed_since_resync() == pytest.approx(100.0)
        clock.resync()
        assert clock.elapsed_since_resync() == 0.0

    def test_resync_to_explicit_reference(self):
        sim, clock = make_clock(delta=0.0)
        clock.resync(reference_local=500.0)
        assert clock.now() == pytest.approx(500.0)

    def test_resync_notifies_listeners(self):
        _, clock = make_clock()
        seen = []
        clock.on_resync(seen.append)
        clock.resync()
        assert seen == [clock]

    def test_drift_survives_resync(self):
        sim, clock = make_clock(rho=1e-3)
        before = clock.drift
        clock.resync()
        assert clock.drift == before
