"""Unit tests for crashable nodes."""

import pytest

from repro.checkpoint import Checkpoint
from repro.errors import NodeCrashedError
from repro.types import CheckpointKind, ProcessId


def make_ckpt(pid="P", epoch=None):
    return Checkpoint.capture(ProcessId(pid), CheckpointKind.TYPE_1,
                              state={"x": 1}, taken_at=0.0, work_done=0.0,
                              epoch=epoch)


class TestCrash:
    def test_crash_sets_flag(self, make_node):
        node = make_node()
        node.crash()
        assert node.crashed

    def test_crash_erases_volatile(self, make_node):
        node = make_node()
        node.volatile.save(make_ckpt())
        node.crash()
        assert node.volatile.peek(ProcessId("P")) is None

    def test_crash_preserves_stable(self, make_node):
        node = make_node()
        node.stable.save(make_ckpt(epoch=1))
        node.crash()
        assert node.stable.peek(ProcessId("P")) is not None

    def test_crash_cancels_timers(self, make_node, sim):
        node = make_node()
        fired = []
        node.timers.set_alarm_after(1.0, lambda: fired.append(1))
        node.crash()
        sim.run()
        assert fired == []

    def test_crash_notifies_listeners_once(self, make_node):
        node = make_node()
        seen = []
        node.on_crash(seen.append)
        node.crash()
        node.crash()
        assert seen == [node]

    def test_crash_count(self, make_node):
        node = make_node()
        node.crash()
        node.restart()
        node.crash()
        assert node.crash_count == 2

    def test_ensure_up_raises_when_crashed(self, make_node):
        node = make_node()
        node.crash()
        with pytest.raises(NodeCrashedError):
            node.ensure_up()

    def test_ensure_up_passes_when_up(self, make_node):
        make_node().ensure_up()


class TestRestart:
    def test_restart_clears_flag(self, make_node):
        node = make_node()
        node.crash()
        node.restart()
        assert not node.crashed

    def test_restart_notifies_listeners(self, make_node):
        node = make_node()
        seen = []
        node.on_restart(seen.append)
        node.crash()
        node.restart()
        assert seen == [node]

    def test_restart_without_crash_is_noop(self, make_node):
        node = make_node()
        seen = []
        node.on_restart(seen.append)
        node.restart()
        assert seen == []

    def test_restart_resynchronizes_clock(self, make_node, sim):
        node = make_node()
        sim.schedule_at(1000.0, lambda: None)
        sim.run()
        node.crash()
        node.restart()
        assert node.clock.elapsed_since_resync() == 0.0
