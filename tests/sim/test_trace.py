"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder
from repro.types import ProcessId


def loaded_recorder():
    trace = TraceRecorder()
    trace.record(1.0, "checkpoint.volatile.type-1", ProcessId("P1"), work=1.0)
    trace.record(2.0, "checkpoint.stable", ProcessId("P2"), epoch=1)
    trace.record(3.0, "at.pass", ProcessId("P1"))
    trace.record(4.0, "checkpoint.volatile.type-2", ProcessId("P1"))
    return trace


class TestRecording:
    def test_disabled_recorder_drops_records(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "x", None)
        assert len(trace) == 0

    def test_len_counts_records(self):
        assert len(loaded_recorder()) == 4

    def test_iteration_yields_in_order(self):
        times = [rec.time for rec in loaded_recorder()]
        assert times == [1.0, 2.0, 3.0, 4.0]


class TestQueries:
    def test_category_prefix_filter(self):
        trace = loaded_recorder()
        assert len(trace.records("checkpoint")) == 3
        assert len(trace.records("checkpoint.volatile")) == 2

    def test_process_filter(self):
        trace = loaded_recorder()
        assert len(trace.records(process=ProcessId("P1"))) == 3

    def test_combined_filters(self):
        trace = loaded_recorder()
        recs = trace.records("checkpoint", ProcessId("P1"))
        assert len(recs) == 2

    def test_time_window(self):
        trace = loaded_recorder()
        assert len(trace.records(since=2.0, until=3.0)) == 2

    def test_last(self):
        trace = loaded_recorder()
        last = trace.last("checkpoint.volatile")
        assert last is not None and last.time == 4.0

    def test_last_no_match_returns_none(self):
        assert loaded_recorder().last("nothing") is None

    def test_count(self):
        assert loaded_recorder().count("at.") == 1

    def test_categories_sorted_unique(self):
        cats = loaded_recorder().categories()
        assert cats == sorted(set(cats))
        assert "at.pass" in cats

    def test_timeline_renders_lines(self):
        lines = loaded_recorder().timeline(["checkpoint"])
        assert len(lines) == 3
        assert all("checkpoint" in line for line in lines)

    def test_record_data_is_captured(self):
        trace = loaded_recorder()
        rec = trace.records("checkpoint.stable")[0]
        assert rec.data == {"epoch": 1}


class TestCategoryFilter:
    def test_keeps_only_matching_prefixes(self):
        trace = TraceRecorder(categories=("checkpoint.volatile", "at."))
        trace.record(1.0, "checkpoint.volatile.type-1", None)
        trace.record(2.0, "checkpoint.stable", None)
        trace.record(3.0, "at.pass", None)
        trace.record(4.0, "blocking.start", None)
        assert [rec.category for rec in trace] == \
            ["checkpoint.volatile.type-1", "at.pass"]

    def test_wants_reflects_filter(self):
        trace = TraceRecorder(categories=("blocking.",))
        assert trace.wants("blocking.start")
        assert not trace.wants("checkpoint.stable")

    def test_wants_without_filter_accepts_everything(self):
        assert TraceRecorder().wants("anything.at.all")

    def test_disabled_recorder_wants_nothing(self):
        trace = TraceRecorder(enabled=False, categories=("blocking.",))
        assert not trace.wants("blocking.start")

    def test_empty_filter_drops_everything(self):
        trace = TraceRecorder(categories=())
        trace.record(1.0, "at.pass", None)
        assert len(trace) == 0
        assert not trace.wants("at.pass")
