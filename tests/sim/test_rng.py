"""Unit tests for the seeded RNG registry."""

import random

import pytest

from repro.sim.rng import BatchedUniform, RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(12345, "stream") < (1 << 64)


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_different_names_are_independent(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("net").random()
        b = RngRegistry(7).stream("net").random()
        assert a == b

    def test_unrelated_stream_isolated_from_draw_order(self):
        # Drawing from one stream must not perturb another — the
        # variance-isolation property the paired experiments rely on.
        reg1 = RngRegistry(7)
        reg1.stream("noise").random()
        v1 = reg1.stream("signal").random()
        reg2 = RngRegistry(7)
        v2 = reg2.stream("signal").random()
        assert v1 == v2

    def test_fork_changes_universe(self):
        reg = RngRegistry(7)
        child = reg.fork("rep1")
        assert child.stream("x").random() != reg.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(7).fork("rep1").stream("x").random()
        b = RngRegistry(7).fork("rep1").stream("x").random()
        assert a == b


class TestBatchedUniform:
    def test_bit_for_bit_matches_sequential_uniform(self):
        # The campaign-determinism contract: prefetched blocks produce
        # exactly the values the equivalent uniform() calls would.
        batched_rng = random.Random(99)
        plain_rng = random.Random(99)
        batched = BatchedUniform(batched_rng, 0.004, 0.04, block=7)
        assert [batched.next() for _ in range(100)] == \
            [plain_rng.uniform(0.004, 0.04) for _ in range(100)]

    def test_block_boundary_is_invisible(self):
        values = {}
        for block in (1, 3, 256):
            batched = BatchedUniform(random.Random(5), -1.0, 2.0, block=block)
            values[block] = [batched.next() for _ in range(10)]
        assert values[1] == values[3] == values[256]

    def test_degenerate_range_consumes_nothing(self):
        rng = random.Random(5)
        batched = BatchedUniform(rng, 0.25, 0.25)
        assert batched.next() == 0.25
        assert rng.random() == random.Random(5).random()

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            BatchedUniform(random.Random(1), 1.0, 0.5)
