"""Unit tests for the local-clock timer service."""

import pytest

from repro.errors import SchedulingError
from repro.sim.clock import ClockConfig, DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import TimerService


def make_service(delta=0.0, rho=0.0, seed=1):
    sim = Simulator()
    clock = DriftingClock(sim, ClockConfig(delta=delta, rho=rho),
                          RngRegistry(seed), "t")
    return sim, clock, TimerService(sim, clock)


class TestAlarms:
    def test_fires_at_local_deadline(self):
        sim, clock, timers = make_service()
        fired = []
        timers.set_alarm(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired and fired[0] == pytest.approx(clock.true_time_of(10.0))

    def test_fires_with_args(self):
        sim, _, timers = make_service()
        got = []
        timers.set_alarm(1.0, got.append, args=("payload",))
        sim.run()
        assert got == ["payload"]

    def test_set_alarm_after(self):
        sim, clock, timers = make_service()
        fired = []
        timers.set_alarm_after(5.0, lambda: fired.append(clock.now()))
        sim.run()
        assert fired[0] == pytest.approx(5.0, abs=1e-9)

    def test_negative_relative_delay_raises(self):
        _, _, timers = make_service()
        with pytest.raises(SchedulingError):
            timers.set_alarm_after(-1.0, lambda: None)

    def test_past_deadline_fires_immediately(self):
        sim, _, timers = make_service()
        sim.schedule_at(20.0, lambda: None)
        sim.run()
        fired = []
        timers.set_alarm(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [20.0]

    def test_cancel_prevents_firing(self):
        sim, _, timers = make_service()
        fired = []
        alarm = timers.set_alarm(10.0, lambda: fired.append(1))
        alarm.cancel()
        sim.run()
        assert fired == []

    def test_pending_counts(self):
        _, _, timers = make_service()
        a = timers.set_alarm(10.0, lambda: None)
        timers.set_alarm(20.0, lambda: None)
        assert timers.pending() == 2
        a.cancel()
        assert timers.pending() == 1

    def test_cancel_all(self):
        sim, _, timers = make_service()
        fired = []
        timers.set_alarm(10.0, lambda: fired.append(1))
        timers.set_alarm(20.0, lambda: fired.append(2))
        timers.cancel_all()
        sim.run()
        assert fired == []


class TestResyncInteraction:
    def test_alarm_survives_resync(self):
        sim, clock, timers = make_service(delta=0.5, rho=0.0, seed=7)
        fired = []
        timers.set_alarm(100.0, lambda: fired.append(clock.now()))
        sim.schedule_at(10.0, clock.resync)
        sim.run()
        assert len(fired) == 1
        # After the resync the alarm still fires when the (re-anchored)
        # local clock reads the deadline.
        assert fired[0] == pytest.approx(100.0, abs=1e-6)

    def test_resync_making_deadline_past_fires_immediately(self):
        sim, clock, timers = make_service(delta=0.0)
        fired = []
        timers.set_alarm(50.0, lambda: fired.append(sim.now))
        # Jump the local clock far ahead of the deadline at t=10.
        sim.schedule_at(10.0, lambda: clock.resync(reference_local=200.0))
        sim.run()
        assert fired == [10.0]

    def test_fired_alarm_not_rearmed_by_resync(self):
        sim, clock, timers = make_service()
        fired = []
        timers.set_alarm(5.0, lambda: fired.append(sim.now))
        sim.schedule_at(20.0, clock.resync)
        sim.run()
        assert len(fired) == 1


class TestBulkResync:
    def test_resync_rearms_every_pending_alarm(self):
        sim, clock, timers = make_service(delta=0.5, rho=0.0, seed=3)
        fired = []
        for k in range(5):
            timers.set_alarm(100.0 + 10.0 * k,
                             lambda k=k: fired.append((k, clock.now())))
        sim.schedule_at(10.0, clock.resync)
        sim.run()
        assert [k for k, _ in fired] == [0, 1, 2, 3, 4]
        for k, local in fired:
            assert local == pytest.approx(100.0 + 10.0 * k, abs=1e-6)

    def test_resync_tie_order_matches_alarm_order(self):
        # Alarms sharing one deadline keep their set order through the
        # bulk reschedule (sequence numbers assigned in alarm order).
        sim, clock, timers = make_service(delta=0.3)
        fired = []
        for k in range(4):
            timers.set_alarm(50.0, lambda k=k: fired.append(k))
        sim.schedule_at(5.0, clock.resync)
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_cancelled_alarm_not_rearmed_by_resync(self):
        sim, clock, timers = make_service(delta=0.2)
        fired = []
        timers.set_alarm(40.0, lambda: fired.append("keep"))
        dropped = timers.set_alarm(40.0, lambda: fired.append("drop"))
        dropped.cancel()
        sim.schedule_at(5.0, clock.resync)
        sim.run()
        assert fired == ["keep"]

    def test_repeated_resyncs_fire_each_alarm_once(self):
        sim, clock, timers = make_service(delta=0.4, seed=9)
        fired = []
        for k in range(3):
            timers.set_alarm(100.0 + k, lambda k=k: fired.append(k))
        for t in (10.0, 20.0, 30.0):
            sim.schedule_at(t, clock.resync)
        sim.run()
        assert sorted(fired) == [0, 1, 2]
        assert len(fired) == 3
