"""Unit tests for the event primitives."""

from repro.sim.events import Event, EventPriority, make_event


def _noop():
    pass


class TestOrdering:
    def test_orders_by_time(self):
        early = make_event(1.0, _noop)
        late = make_event(2.0, _noop)
        assert early < late
        assert not late < early

    def test_same_time_orders_by_priority(self):
        delivery = make_event(1.0, _noop, priority=EventPriority.DELIVERY)
        timer = make_event(1.0, _noop, priority=EventPriority.TIMER)
        action = make_event(1.0, _noop, priority=EventPriority.ACTION)
        control = make_event(1.0, _noop, priority=EventPriority.CONTROL)
        assert delivery < timer < action < control

    def test_same_time_same_priority_orders_by_insertion(self):
        first = make_event(1.0, _noop)
        second = make_event(1.0, _noop)
        assert first < second

    def test_explicit_seq_pins_tiebreak(self):
        a = make_event(1.0, _noop, seq=10)
        b = make_event(1.0, _noop, seq=5)
        assert b < a

    def test_priority_beats_insertion_order(self):
        later_inserted = make_event(1.0, _noop, priority=EventPriority.DELIVERY)
        # Insert another afterwards with a lower-urgency priority.
        earlier_priority = make_event(1.0, _noop, priority=EventPriority.CONTROL)
        assert later_inserted < earlier_priority


class TestCancellation:
    def test_not_cancelled_initially(self):
        event = make_event(1.0, _noop)
        assert not event.cancelled

    def test_cancel_marks(self):
        event = make_event(1.0, _noop)
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = make_event(1.0, _noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancelled_flag_does_not_affect_ordering(self):
        a = make_event(1.0, _noop)
        b = make_event(2.0, _noop)
        a.cancel()
        assert a < b


class TestFire:
    def test_fire_invokes_callback_with_args(self):
        got = []
        event = make_event(1.0, got.append, args=("x",))
        event.fire()
        assert got == ["x"]

    def test_label_is_preserved(self):
        event = make_event(1.0, _noop, label="hello")
        assert event.label == "hello"
