"""Unit tests for the event primitives."""

from repro.sim.events import (
    Event,
    EventPool,
    EventPriority,
    EventSequencer,
    make_event,
    reset_event_sequence,
)


def _noop():
    pass


class TestOrdering:
    def test_orders_by_time(self):
        early = make_event(1.0, _noop)
        late = make_event(2.0, _noop)
        assert early < late
        assert not late < early

    def test_same_time_orders_by_priority(self):
        delivery = make_event(1.0, _noop, priority=EventPriority.DELIVERY)
        timer = make_event(1.0, _noop, priority=EventPriority.TIMER)
        action = make_event(1.0, _noop, priority=EventPriority.ACTION)
        control = make_event(1.0, _noop, priority=EventPriority.CONTROL)
        assert delivery < timer < action < control

    def test_same_time_same_priority_orders_by_insertion(self):
        first = make_event(1.0, _noop)
        second = make_event(1.0, _noop)
        assert first < second

    def test_explicit_seq_pins_tiebreak(self):
        a = make_event(1.0, _noop, seq=10)
        b = make_event(1.0, _noop, seq=5)
        assert b < a

    def test_priority_beats_insertion_order(self):
        later_inserted = make_event(1.0, _noop, priority=EventPriority.DELIVERY)
        # Insert another afterwards with a lower-urgency priority.
        earlier_priority = make_event(1.0, _noop, priority=EventPriority.CONTROL)
        assert later_inserted < earlier_priority


class TestCancellation:
    def test_not_cancelled_initially(self):
        event = make_event(1.0, _noop)
        assert not event.cancelled

    def test_cancel_marks(self):
        event = make_event(1.0, _noop)
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = make_event(1.0, _noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancelled_flag_does_not_affect_ordering(self):
        a = make_event(1.0, _noop)
        b = make_event(2.0, _noop)
        a.cancel()
        assert a < b


class TestFire:
    def test_fire_invokes_callback_with_args(self):
        got = []
        event = make_event(1.0, got.append, args=("x",))
        event.fire()
        assert got == ["x"]

    def test_label_is_preserved(self):
        event = make_event(1.0, _noop, label="hello")
        assert event.label == "hello"


class TestSequencerScoping:
    def test_own_sequencer_numbers_from_zero(self):
        sequencer = EventSequencer()
        a = make_event(1.0, _noop, sequencer=sequencer)
        b = make_event(1.0, _noop, sequencer=sequencer)
        assert (a.seq, b.seq) == (0, 1)
        assert a < b

    def test_sequencers_are_independent(self):
        first = EventSequencer()
        second = EventSequencer()
        make_event(1.0, _noop, sequencer=first)
        assert make_event(1.0, _noop, sequencer=second).seq == 0

    def test_fallback_sequence_resets(self):
        reset_event_sequence()
        a = make_event(1.0, _noop)
        reset_event_sequence()
        b = make_event(1.0, _noop)
        assert a.seq == b.seq

    def test_simulator_does_not_consume_fallback(self):
        # Simulators own their sequence; building one and scheduling on
        # it must not advance the make_event fallback.
        from repro.sim.kernel import Simulator
        reset_event_sequence()
        sim = Simulator()
        sim.schedule_at(1.0, _noop)
        sim.schedule_at(2.0, _noop)
        assert make_event(1.0, _noop).seq == 0

    def test_fresh_simulators_restart_sequences(self):
        from repro.sim.kernel import Simulator
        first = Simulator().schedule_at(1.0, _noop)
        second = Simulator().schedule_at(1.0, _noop)
        assert first.seq == second.seq == 0


class TestEventPool:
    def test_acquire_recycles_released_object(self):
        pool = EventPool()
        event = Event(1.0, 0, 0, _noop)
        pool.release(event)
        recycled = pool.acquire(2.0, 1, 7, _noop, ("x",), "lbl")
        assert recycled is event
        assert (recycled.time, recycled.priority, recycled.seq) == (2.0, 1, 7)
        assert recycled.args == ("x",)
        assert not recycled.cancelled
        assert pool.reused == 1

    def test_release_drops_references(self):
        pool = EventPool()
        payload = []
        event = Event(1.0, 0, 0, payload.append, (payload,))
        pool.release(event)
        assert event.callback is None
        assert event.args == ()
        assert event.sim is None

    def test_release_clears_cancelled_on_reacquire(self):
        pool = EventPool()
        event = Event(1.0, 0, 0, _noop)
        event.cancel()
        pool.release(event)
        assert not pool.acquire(1.0, 0, 1, _noop, (), "").cancelled

    def test_max_size_bounds_free_list(self):
        pool = EventPool(max_size=2)
        for k in range(5):
            pool.release(Event(float(k), 0, k, _noop))
        assert len(pool) == 2
        assert pool.released == 2

    def test_acquire_empty_pool_allocates(self):
        pool = EventPool()
        event = pool.acquire(1.0, 0, 0, _noop, (), "")
        assert isinstance(event, Event)
        assert pool.reused == 0
