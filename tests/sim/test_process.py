"""Unit tests for the SimProcess base class."""

import pytest

from repro.errors import NodeCrashedError
from repro.messages.message import Message
from repro.sim.process import SimProcess
from repro.types import MessageKind, ProcessId


class Recorder(SimProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.messages = []
        self.acks = []
        self.crashes = 0
        self.restarts = 0

    def handle_message(self, message):
        self.messages.append(message)
        return True

    def handle_ack(self, msg_id):
        self.acks.append(msg_id)

    def on_node_crash(self):
        self.crashes += 1

    def on_node_restart(self):
        self.restarts += 1


@pytest.fixture
def pair(sim, network, make_node):
    a = Recorder(ProcessId("A"), make_node("NA"), network)
    b = Recorder(ProcessId("B"), make_node("NB"), network)
    return a, b


def internal(sender, receiver, **kw):
    return Message(kind=MessageKind.INTERNAL, sender=sender.process_id,
                   receiver=receiver.process_id, **kw)


class TestTransmitAndDeliver:
    def test_roundtrip(self, sim, pair):
        a, b = pair
        m = internal(a, b)
        a.transmit(m)
        sim.run()
        assert b.messages == [m]
        assert a.acks == [m.msg_id]

    def test_transmit_refused_when_crashed(self, pair):
        a, b = pair
        a.node.crash()
        with pytest.raises(NodeCrashedError):
            a.transmit(internal(a, b))

    def test_delivery_to_crashed_node_is_dropped(self, sim, pair):
        a, b = pair
        a.transmit(internal(a, b))
        b.node.crash()
        sim.run()
        assert b.messages == []
        assert a.acks == []

    def test_crash_and_restart_hooks(self, pair):
        a, _ = pair
        a.node.crash()
        a.node.restart()
        assert a.crashes == 1
        assert a.restarts == 1

    def test_alive_reflects_node(self, pair):
        a, _ = pair
        assert a.alive
        a.node.crash()
        assert not a.alive

    def test_trace_records_send_and_deliver(self, sim, network, make_node, trace):
        a = Recorder(ProcessId("TA"), make_node("NTA"), network, trace)
        b = Recorder(ProcessId("TB"), make_node("NTB"), network, trace)
        a.transmit(internal(a, b))
        sim.run()
        assert trace.count("message.send") == 1
        assert trace.count("message.deliver") == 1
