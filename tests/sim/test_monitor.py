"""Unit tests for the statistics collectors."""

import math
import statistics

import pytest

from repro.sim.monitor import CounterSet, RunningStat, TimeWeightedValue, summarize


class TestRunningStat:
    def test_empty_stat_defaults(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.stderr == 0.0

    def test_matches_statistics_module(self):
        values = [3.0, 1.5, 4.0, 1.0, 5.9, 2.6]
        stat = summarize(values)
        assert stat.mean == pytest.approx(statistics.fmean(values))
        assert stat.variance == pytest.approx(statistics.variance(values))
        assert stat.stdev == pytest.approx(statistics.stdev(values))

    def test_min_max(self):
        stat = summarize([2.0, -1.0, 7.0])
        assert stat.minimum == -1.0
        assert stat.maximum == 7.0

    def test_single_sample_variance_zero(self):
        stat = summarize([4.2])
        assert stat.variance == 0.0

    def test_stderr(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stat = summarize(values)
        assert stat.stderr == pytest.approx(statistics.stdev(values) / 2.0)

    def test_confidence_halfwidth_small_sample_uses_t(self):
        stat = summarize([1.0, 2.0, 3.0, 4.0])
        # df = 3 -> t = 3.182, wider than the normal 1.96.
        assert stat.confidence_halfwidth() == pytest.approx(3.182 * stat.stderr)
        assert stat.confidence_halfwidth() > 1.96 * stat.stderr

    def test_confidence_halfwidth_large_sample_uses_normal(self):
        stat = summarize([float(i) for i in range(40)])
        assert stat.confidence_halfwidth() == pytest.approx(1.96 * stat.stderr)

    def test_confidence_halfwidth_explicit_z_wins(self):
        stat = summarize([1.0, 2.0])
        assert stat.confidence_halfwidth(z=2.0) == pytest.approx(2.0 * stat.stderr)

    def test_t_critical_monotone_to_normal(self):
        from repro.sim.monitor import t_critical_95
        values = [t_critical_95(df) for df in range(1, 35)]
        assert values == sorted(values, reverse=True)
        assert t_critical_95(29) == pytest.approx(2.045)
        assert t_critical_95(30) == 1.96

    def test_merge_equals_combined(self):
        a_vals, b_vals = [1.0, 2.0, 3.0], [10.0, 20.0]
        merged = summarize(a_vals)
        merged.merge(summarize(b_vals))
        combined = summarize(a_vals + b_vals)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty_sides(self):
        stat = summarize([1.0, 2.0])
        stat.merge(RunningStat())
        assert stat.count == 2
        empty = RunningStat()
        empty.merge(summarize([5.0]))
        assert empty.count == 1 and empty.mean == 5.0

    def test_merge_empty_into_empty(self):
        stat = RunningStat()
        stat.merge(RunningStat())
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.minimum is None and stat.maximum is None

    def test_merge_empty_into_nonempty_preserves_extrema(self):
        stat = summarize([-3.0, 8.0])
        stat.merge(RunningStat())
        assert (stat.minimum, stat.maximum) == (-3.0, 8.0)

    def test_merge_single_sample_shards(self):
        # Shard-per-sample merging must equal plain accumulation — the
        # degenerate sharding a one-replication-per-worker campaign hits.
        values = [4.0, -1.0, 2.5, 2.5, 9.0]
        merged = RunningStat()
        for v in values:
            merged.merge(summarize([v]))
        combined = summarize(values)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert (merged.minimum, merged.maximum) == (-1.0, 9.0)

    def test_merge_min_max_propagate_across_chains(self):
        a = summarize([5.0, 6.0])
        b = summarize([-10.0, 4.0])
        c = summarize([100.0])
        a.merge(b)
        a.merge(c)
        assert a.minimum == -10.0
        assert a.maximum == 100.0

    def test_to_dict_round_trip(self):
        stat = summarize([1.0, 2.5, -4.0])
        clone = RunningStat.from_dict(stat.to_dict())
        assert clone.count == stat.count
        assert clone.mean == stat.mean
        assert clone.variance == stat.variance
        assert (clone.minimum, clone.maximum) == (stat.minimum, stat.maximum)

    def test_to_dict_round_trip_empty(self):
        clone = RunningStat.from_dict(RunningStat().to_dict())
        assert clone.count == 0
        assert clone.minimum is None and clone.maximum is None

    def test_to_dict_is_json_safe(self):
        import json
        payload = json.dumps(summarize([1.0, 2.0]).to_dict())
        clone = RunningStat.from_dict(json.loads(payload))
        assert clone.mean == 1.5


class TestTimeWeightedValue:
    def test_constant_signal(self):
        signal = TimeWeightedValue(2.0, at=0.0)
        assert signal.integral(10.0) == pytest.approx(20.0)
        assert signal.mean(10.0) == pytest.approx(2.0)

    def test_step_change(self):
        signal = TimeWeightedValue(0.0, at=0.0)
        signal.set(1.0, at=4.0)
        assert signal.integral(10.0) == pytest.approx(6.0)
        assert signal.mean(10.0) == pytest.approx(0.6)

    def test_value_tracks_current(self):
        signal = TimeWeightedValue(0.0, at=0.0)
        signal.set(3.0, at=1.0)
        assert signal.value == 3.0

    def test_zero_span_mean_returns_value(self):
        signal = TimeWeightedValue(7.0, at=5.0)
        assert signal.mean(5.0) == 7.0


class TestCounterSet:
    def test_bump_and_get(self):
        counters = CounterSet()
        counters.bump("a")
        counters.bump("a", by=2)
        assert counters.get("a") == 3

    def test_missing_counter_is_zero(self):
        assert CounterSet().get("missing") == 0

    def test_as_dict_copies(self):
        counters = CounterSet()
        counters.bump("a")
        copy = counters.as_dict()
        copy["a"] = 99
        assert counters.get("a") == 1
