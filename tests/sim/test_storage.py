"""Unit tests for volatile and stable checkpoint stores."""

import pytest

from repro.checkpoint import Checkpoint
from repro.errors import StorageError
from repro.sim.storage import StableStore, VolatileStore
from repro.types import CheckpointKind, ProcessId


def ckpt(pid="P", epoch=None, work=0.0, kind=CheckpointKind.TYPE_1):
    return Checkpoint.capture(ProcessId(pid), kind, state={"w": work},
                              taken_at=work, work_done=work, epoch=epoch)


class TestVolatileStore:
    def test_keeps_only_most_recent(self):
        store = VolatileStore()
        store.save(ckpt(work=1.0))
        latest = ckpt(work=2.0)
        store.save(latest)
        assert store.load(ProcessId("P")) is latest

    def test_load_missing_raises(self):
        with pytest.raises(StorageError):
            VolatileStore().load(ProcessId("P"))

    def test_peek_missing_returns_none(self):
        assert VolatileStore().peek(ProcessId("P")) is None

    def test_per_process_isolation(self):
        store = VolatileStore()
        a, b = ckpt("A"), ckpt("B")
        store.save(a)
        store.save(b)
        assert store.load(ProcessId("A")) is a
        assert store.load(ProcessId("B")) is b

    def test_erase_clears_everything(self):
        store = VolatileStore()
        store.save(ckpt("A"))
        store.save(ckpt("B"))
        store.erase()
        assert store.peek(ProcessId("A")) is None
        assert store.peek(ProcessId("B")) is None

    def test_save_counter(self):
        store = VolatileStore()
        store.save(ckpt())
        store.save(ckpt())
        assert store.saves == 2


class TestStableStore:
    def test_requires_positive_history(self):
        with pytest.raises(StorageError):
            StableStore(history=0)

    def test_latest_returns_newest(self):
        store = StableStore()
        store.save(ckpt(epoch=1))
        newest = ckpt(epoch=2)
        store.save(newest)
        assert store.latest(ProcessId("P")) is newest

    def test_latest_missing_raises(self):
        with pytest.raises(StorageError):
            StableStore().latest(ProcessId("P"))

    def test_history_trims_old_epochs(self):
        store = StableStore(history=2)
        for epoch in (1, 2, 3):
            store.save(ckpt(epoch=epoch))
        assert store.epochs(ProcessId("P")) == [2, 3]

    def test_at_epoch_finds_retained(self):
        store = StableStore(history=3)
        for epoch in (1, 2, 3):
            store.save(ckpt(epoch=epoch))
        found = store.at_epoch(ProcessId("P"), 2)
        assert found is not None and found.epoch == 2

    def test_at_epoch_missing_returns_none(self):
        store = StableStore(history=2)
        store.save(ckpt(epoch=5))
        assert store.at_epoch(ProcessId("P"), 1) is None

    def test_history_listing_oldest_first(self):
        store = StableStore(history=3)
        for epoch in (1, 2):
            store.save(ckpt(epoch=epoch))
        assert [c.epoch for c in store.history(ProcessId("P"))] == [1, 2]

    def test_crash_survival_is_callers_concern(self):
        # Stable storage has no erase: its persistence is structural.
        assert not hasattr(StableStore(), "erase")

    def test_write_latency_attribute(self):
        assert StableStore(write_latency=0.2).write_latency == 0.2
