"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_in_past_raises(self, sim):
        sim.schedule_at(5.0, lambda: sim.stop())
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_current_time_is_allowed(self, sim):
        fired = []
        def outer():
            sim.schedule_at(sim.now, lambda: fired.append("inner"))
        sim.schedule_at(1.0, outer)
        sim.run()
        assert fired == ["inner"]

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_after(-0.1, lambda: None)

    def test_schedule_after_offsets_from_now(self, sim):
        times = []
        sim.schedule_at(3.0, lambda: sim.schedule_after(2.0,
                        lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]


class TestRun:
    def test_runs_in_time_order(self, sim):
        order = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule_at(t, order.append, args=(t,))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(5.0, fired.append, args=(5,))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_keeps_later_events_queued(self, sim):
        fired = []
        sim.schedule_at(5.0, fired.append, args=(5,))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_run_advances_now_to_until_even_when_idle(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_cancelled_events_are_skipped(self, sim):
        fired = []
        event = sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, fired.append, args=(2,))
        event.cancel()
        sim.run()
        assert fired == [2]

    def test_max_events_bounds_execution(self, sim):
        fired = []
        for t in range(5):
            sim.schedule_at(float(t + 1), fired.append, args=(t,))
        sim.run(max_events=2)
        assert len(fired) == 2

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, sim.stop)
        sim.schedule_at(3.0, fired.append, args=(3,))
        sim.run()
        assert fired == [1]
        assert sim.pending_count() == 1

    def test_reentrant_run_raises(self, sim):
        def nested():
            sim.run()
        sim.schedule_at(1.0, nested)
        with pytest.raises(SchedulingError):
            sim.run()

    def test_events_executed_counter(self, sim):
        for t in range(3):
            sim.schedule_at(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_same_time_priority_interleaving(self, sim):
        order = []
        sim.schedule_at(1.0, order.append, args=("action",),
                        priority=EventPriority.ACTION)
        sim.schedule_at(1.0, order.append, args=("delivery",),
                        priority=EventPriority.DELIVERY)
        sim.schedule_at(1.0, order.append, args=("timer",),
                        priority=EventPriority.TIMER)
        sim.run()
        assert order == ["delivery", "timer", "action"]


class TestStepAndPeek:
    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, fired.append, args=(2,))
        sim.step()
        assert fired == [1]
        assert sim.now == 1.0

    def test_step_on_empty_returns_none(self, sim):
        assert sim.step() is None

    def test_peek_time(self, sim):
        assert sim.peek_time() is None
        sim.schedule_at(7.0, lambda: None)
        assert sim.peek_time() == 7.0

    def test_peek_skips_cancelled(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_count_excludes_cancelled(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count() == 1
