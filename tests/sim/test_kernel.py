"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_in_past_raises(self, sim):
        sim.schedule_at(5.0, lambda: sim.stop())
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_current_time_is_allowed(self, sim):
        fired = []
        def outer():
            sim.schedule_at(sim.now, lambda: fired.append("inner"))
        sim.schedule_at(1.0, outer)
        sim.run()
        assert fired == ["inner"]

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_after(-0.1, lambda: None)

    def test_schedule_after_offsets_from_now(self, sim):
        times = []
        sim.schedule_at(3.0, lambda: sim.schedule_after(2.0,
                        lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]


class TestRun:
    def test_runs_in_time_order(self, sim):
        order = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule_at(t, order.append, args=(t,))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(5.0, fired.append, args=(5,))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_keeps_later_events_queued(self, sim):
        fired = []
        sim.schedule_at(5.0, fired.append, args=(5,))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_run_advances_now_to_until_even_when_idle(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_cancelled_events_are_skipped(self, sim):
        fired = []
        event = sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, fired.append, args=(2,))
        event.cancel()
        sim.run()
        assert fired == [2]

    def test_max_events_bounds_execution(self, sim):
        fired = []
        for t in range(5):
            sim.schedule_at(float(t + 1), fired.append, args=(t,))
        sim.run(max_events=2)
        assert len(fired) == 2

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, sim.stop)
        sim.schedule_at(3.0, fired.append, args=(3,))
        sim.run()
        assert fired == [1]
        assert sim.pending_count() == 1

    def test_reentrant_run_raises(self, sim):
        def nested():
            sim.run()
        sim.schedule_at(1.0, nested)
        with pytest.raises(SchedulingError):
            sim.run()

    def test_events_executed_counter(self, sim):
        for t in range(3):
            sim.schedule_at(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_same_time_priority_interleaving(self, sim):
        order = []
        sim.schedule_at(1.0, order.append, args=("action",),
                        priority=EventPriority.ACTION)
        sim.schedule_at(1.0, order.append, args=("delivery",),
                        priority=EventPriority.DELIVERY)
        sim.schedule_at(1.0, order.append, args=("timer",),
                        priority=EventPriority.TIMER)
        sim.run()
        assert order == ["delivery", "timer", "action"]


class TestStepAndPeek:
    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule_at(1.0, fired.append, args=(1,))
        sim.schedule_at(2.0, fired.append, args=(2,))
        sim.step()
        assert fired == [1]
        assert sim.now == 1.0

    def test_step_on_empty_returns_none(self, sim):
        assert sim.step() is None

    def test_peek_time(self, sim):
        assert sim.peek_time() is None
        sim.schedule_at(7.0, lambda: None)
        assert sim.peek_time() == 7.0

    def test_peek_skips_cancelled(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_count_excludes_cancelled(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count() == 1


class TestRunUntilBoundary:
    def test_until_peeks_instead_of_popping(self, sim):
        # A boundary-straddling run must leave the heap untouched — the
        # head is peeked, never popped and re-pushed.
        event = sim.schedule_at(5.0, lambda: None)
        before = list(sim._heap)
        sim.run(until=2.0)
        assert sim._heap == before
        assert sim._heap[0] is event
        assert event.in_heap

    def test_chunked_until_runs_preserve_tie_order(self, sim):
        # Same-time same-priority events straddling several until
        # boundaries fire in insertion order, exactly as one run() would.
        order = []
        for k in range(6):
            sim.schedule_at(10.0, order.append, args=(k,))
        for until in (2.0, 4.0, 6.0, 8.0):
            sim.run(until=until)
        assert order == []
        sim.run()
        assert order == list(range(6))


class TestPendingCountAccounting:
    def test_double_cancel_counts_once(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_count() == 1

    def test_cancel_after_step_does_not_corrupt_count(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        stepped = sim.step()
        # The event already left the heap; a late cancel of the handle
        # must not decrement the live counter.
        stepped.cancel()
        assert sim.pending_count() == 1

    def test_count_tracks_mixed_operations(self, sim):
        events = [sim.schedule_at(float(k + 1), lambda: None)
                  for k in range(6)]
        events[1].cancel()
        events[4].cancel()
        sim.step()
        assert sim.pending_count() == 3


class TestCompaction:
    def test_compaction_shrinks_heap_and_keeps_live_events(self, sim):
        fired = []
        for k in range(100):
            sim.schedule_at(float(k + 1), fired.append, args=(k,))
        doomed = [sim.schedule_at(1000.0 + k, lambda: None)
                  for k in range(200)]
        for event in doomed:
            event.cancel()
        # The cancelled majority was physically removed...
        assert sim.compactions >= 1
        assert len(sim._heap) < 300
        assert sim.pending_count() == 100
        # ...and no live event was dropped.
        sim.run()
        assert fired == list(range(100))

    def test_few_cancels_stay_lazy(self, sim):
        events = [sim.schedule_at(float(k + 1), lambda: None)
                  for k in range(100)]
        for event in events[:30]:
            event.cancel()
        assert sim.compactions == 0
        assert sim.pending_count() == 70


class TestScheduleMany:
    def _fire_order(self, bulk):
        sim = Simulator()
        order = []
        emit = order.append
        sim.schedule_at(1.0, emit, args=("pre",))
        specs = [(2.0, emit, (k,), EventPriority.TIMER, "") for k in range(8)]
        if bulk:
            sim.schedule_many(specs)
        else:
            for time, callback, args, priority, label in specs:
                sim.schedule_at(time, callback, args=args,
                                priority=priority, label=label)
        sim.schedule_at(2.0, emit, args=("post",))
        sim.run()
        return order

    def test_bulk_and_loop_orders_agree(self):
        assert self._fire_order(bulk=True) == self._fire_order(bulk=False)

    def test_returns_events_in_spec_order(self, sim):
        events = sim.schedule_many(
            [(3.0, lambda: None, (), EventPriority.ACTION, "a"),
             (1.0, lambda: None, (), EventPriority.ACTION, "b")])
        assert [e.label for e in events] == ["a", "b"]
        assert events[0].seq < events[1].seq

    def test_rejects_past_times(self, sim):
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_many(
                [(1.0, lambda: None, (), EventPriority.ACTION, "late")])


class TestPooling:
    def test_fired_events_are_recycled(self):
        sim = Simulator(pooling=True)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50:
                sim.schedule_after(1.0, tick)

        sim.schedule_after(1.0, tick)
        sim.run()
        assert count[0] == 50
        assert sim.pool.reused > 0
        assert len(sim.pool) >= 1

    def test_pooling_preserves_execution_order(self):
        def run_workload(sim):
            order = []

            def emit(tag):
                order.append((sim.now, tag))

            events = [sim.schedule_at(float(k % 7) + 1.0, emit, args=(k,))
                      for k in range(60)]
            for event in events[::3]:
                event.cancel()
            sim.run()
            return order

        assert run_workload(Simulator(pooling=True)) == \
            run_workload(Simulator())

    def test_stepped_events_are_not_recycled(self):
        sim = Simulator(pooling=True)
        sim.schedule_at(1.0, lambda: None)
        stepped = sim.step()
        # The caller holds the handle; it must not be in the free list.
        assert stepped is not None
        assert len(sim.pool) == 0
