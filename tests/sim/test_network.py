"""Unit tests for the simulated network."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.messages.message import DEVICE, Message
from repro.sim.network import Endpoint, Network, NetworkConfig
from repro.types import MessageKind, ProcessId


def msg(sender="A", receiver="B", kind=MessageKind.INTERNAL, **kw):
    return Message(kind=kind, sender=ProcessId(sender),
                   receiver=ProcessId(receiver), **kw)


def register(network, name, deliver=None, on_ack=None, alive=None):
    got = []
    network.register(Endpoint(
        process_id=ProcessId(name),
        deliver=deliver if deliver is not None else (lambda m: got.append(m)),
        on_ack=on_ack,
        is_alive=alive if alive is not None else (lambda: True)))
    return got


class TestConfig:
    def test_rejects_negative_tmin(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(t_min=-1.0)

    def test_rejects_tmax_below_tmin(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(t_min=0.1, t_max=0.01)


class TestDelivery:
    def test_delivers_within_bounds(self, sim, network):
        got = register(network, "B")
        register(network, "A")
        m = msg()
        network.send(m)
        sim.run()
        assert got == [m]
        delay = sim.now - m.send_time
        assert network.config.t_min <= delay <= network.config.t_max

    def test_unknown_receiver_is_dropped(self, sim, network):
        register(network, "A")
        network.send(msg(receiver="nobody"))
        sim.run()
        assert network.dropped_count == 1

    def test_unknown_sender_endpoint_raises_on_lookup(self, network):
        with pytest.raises(NetworkError):
            network.endpoint(ProcessId("ghost"))

    def test_duplicate_registration_raises(self, network):
        register(network, "A")
        with pytest.raises(NetworkError):
            register(network, "A")

    def test_dead_receiver_drops(self, sim, network):
        register(network, "A")
        got = register(network, "B", alive=lambda: False)
        network.send(msg())
        sim.run()
        assert got == []
        assert network.dropped_count == 1

    def test_device_messages_land_in_device_log(self, sim, network):
        register(network, "A")
        m = msg(receiver=DEVICE, kind=MessageKind.EXTERNAL)
        network.send(m)
        sim.run()
        assert network.device_log == [m]

    def test_counters(self, sim, network):
        register(network, "A")
        register(network, "B")
        network.send(msg())
        sim.run()
        assert network.sent_count == 1
        assert network.delivered_count == 1


class TestFifo:
    def test_fifo_preserves_per_pair_order(self, sim, rng):
        network = Network(sim, NetworkConfig(t_min=0.001, t_max=0.5, fifo=True), rng)
        order = []
        network.register(Endpoint(ProcessId("B"), lambda m: order.append(m.msg_id)))
        register(network, "A")
        sent = [msg() for _ in range(30)]
        for m in sent:
            network.send(m)
        sim.run()
        assert order == [m.msg_id for m in sent]

    def test_non_fifo_can_reorder(self, sim, rng):
        network = Network(sim, NetworkConfig(t_min=0.001, t_max=0.5, fifo=False), rng)
        order = []
        network.register(Endpoint(ProcessId("B"), lambda m: order.append(m.msg_id)))
        register(network, "A")
        sent = [msg() for _ in range(30)]
        for m in sent:
            network.send(m)
        sim.run()
        assert sorted(order) == sorted(m.msg_id for m in sent)
        assert order != [m.msg_id for m in sent]


class TestAcks:
    def test_accepted_delivery_is_acked(self, sim, network):
        acks = []
        register(network, "A", on_ack=acks.append)
        register(network, "B")
        m = msg()
        network.send(m)
        sim.run()
        assert acks == [m.msg_id]

    def test_rejected_delivery_is_not_acked(self, sim, network):
        acks = []
        register(network, "A", on_ack=acks.append)
        network.register(Endpoint(ProcessId("B"), lambda m: False))
        network.send(msg())
        sim.run()
        assert acks == []

    def test_none_return_counts_as_accepted(self, sim, network):
        acks = []
        register(network, "A", on_ack=acks.append)
        network.register(Endpoint(ProcessId("B"), lambda m: None))
        network.send(msg())
        sim.run()
        assert len(acks) == 1

    def test_ack_messages_are_not_acked(self, sim, network):
        acks = []
        register(network, "A", on_ack=acks.append)
        register(network, "B")
        network.send(msg(kind=MessageKind.ACK))
        sim.run()
        assert acks == []

    def test_explicit_ack(self, sim, network):
        acks = []
        register(network, "A", on_ack=acks.append)
        register(network, "B")
        m = msg()
        network.ack(m)
        sim.run()
        assert acks == [m.msg_id]

    def test_dead_sender_does_not_receive_ack(self, sim, network):
        acks = []
        alive = {"up": True}
        register(network, "A", on_ack=acks.append, alive=lambda: alive["up"])
        register(network, "B")
        network.send(msg())
        alive["up"] = False
        sim.run()
        assert acks == []


class TestInFlight:
    def test_in_flight_reflects_wire_contents(self, sim, network):
        register(network, "A")
        register(network, "B")
        m = msg()
        network.send(m)
        assert network.in_flight() == [m]
        sim.run()
        assert network.in_flight() == []
