"""Tests for upgrade commissioning (seamless coordination disengagement,
paper Section 4.2 last paragraph)."""

import pytest

from conftest import EXTERNAL, INTERNAL, action, settle

from repro.app.faults import HardwareFaultPlan
from repro.coordination.scheme import Scheme
from repro.errors import ProtocolError
from repro.types import StableContent


def guarded_traffic(system, rounds=2):
    for _ in range(rounds):
        system.active.software.on_send_internal(action(INTERNAL))
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)


class TestCommissioning:
    def test_rejected_after_takeover(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        system.low_version.fault_active = True
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.sw_recovery.completed
        with pytest.raises(ProtocolError):
            system.commission_upgrade()

    def test_rejected_twice(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        system.commission_upgrade()
        with pytest.raises(ProtocolError):
            system.commission_upgrade()

    def test_shadow_retired(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        guarded_traffic(system)
        system.commission_upgrade()
        assert system.shadow.deposed
        assert len(system.shadow.msg_log) == 0
        assert system.shadow.process_id not in \
            system.peer.software.component1_recipients

    def test_dirty_bits_stay_zero(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        guarded_traffic(system)
        system.commission_upgrade()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.active.mdcd.dirty_bit == 0
        assert system.peer.mdcd.dirty_bit == 0

    def test_no_more_acceptance_tests(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        system.commission_upgrade()
        before = system.active.counters.get("at.pass")
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.active.counters.get("at.pass") == before

    def test_history_validated_and_acks_released(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        guarded_traffic(system)
        assert len(system.active.acks) > 0  # deferred acks pending
        system.commission_upgrade()
        settle(system)
        assert len(system.active.acks) == 0
        assert not system.peer.journal_recv.records(validated=False)


class TestAdaptedTbDegeneratesToOriginal:
    def test_post_commission_contents_are_current_state(self, manual_system):
        from repro.tb.blocking import TbConfig
        system = manual_system(scheme=Scheme.COORDINATED,
                               tb=TbConfig(interval=10.0))
        guarded_traffic(system)
        system.commission_upgrade()
        commissioned_at = system.sim.now
        system.sim.run(until=commissioned_at + 50.0)
        for proc in (system.active, system.peer):
            for ckpt in proc.node.stable.history(proc.process_id):
                if ckpt.taken_at > commissioned_at and ckpt.epoch:
                    assert ckpt.content is StableContent.CURRENT_STATE

    def test_hardware_recovery_still_works(self, manual_system):
        from repro.tb.blocking import TbConfig
        system = manual_system(scheme=Scheme.COORDINATED,
                               tb=TbConfig(interval=10.0))
        guarded_traffic(system)
        system.commission_upgrade()
        t = system.sim.now
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=t + 25.0,
                                              repair_time=1.0))
        system.sim.run(until=t + 40.0)
        assert system.hw_recovery.recoveries == 1
        # Only the two in-service processes roll back.
        assert len(system.hw_recovery.records) == 2
        assert not system.peer.component.state.corrupt
