"""Unit tests for the original MDCD engines (paper Section 2.1)."""

from conftest import EXTERNAL, INTERNAL, action, settle

from repro.coordination.scheme import Scheme
from repro.types import CheckpointKind


class TestActiveEngine:
    def test_dirty_bit_constant_one(self, manual_system):
        system = manual_system()
        assert system.active.mdcd.dirty_bit == 1
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.active.mdcd.dirty_bit == 1

    def test_internal_send_flagged_dirty_with_sn(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        recs = system.peer.journal_recv.records(sender=system.active.process_id)
        assert len(recs) == 1
        assert recs[0].sent_dirty == 1
        assert recs[0].sn == 1
        assert not recs[0].validated

    def test_active_never_checkpoints(self, manual_system):
        system = manual_system()
        for _ in range(3):
            system.active.software.on_send_internal(action(INTERNAL))
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.active.volatile_checkpoint() is None

    def test_at_pass_broadcasts_notification(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.shadow.counters.get("recv.passed_at") == 1
        assert system.peer.counters.get("recv.passed_at") == 1

    def test_at_pass_validates_prior_sends(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        recs = system.peer.journal_recv.records(sender=system.active.process_id)
        assert all(r.validated for r in recs)

    def test_at_failure_triggers_recovery(self, manual_system):
        system = manual_system()
        system.low_version.fault_active = True
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.sw_recovery.completed
        assert system.active.deposed


class TestShadowEngine:
    def test_outgoing_suppressed_and_logged(self, manual_system):
        system = manual_system()
        system.shadow.software.on_send_internal(action(INTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert len(system.shadow.msg_log) == 2
        assert system.shadow.counters.get("suppressed") == 2
        assert system.peer.counters.get("recv.applied") == 0

    def test_shadow_sn_tracks_active_sn(self, manual_system):
        system = manual_system()
        for _ in range(2):
            system.active.software.on_send_internal(action(INTERNAL))
            system.shadow.software.on_send_internal(action(INTERNAL))
        system.active.software.on_send_external(action(EXTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.shadow.sn.current == system.active.sn.current

    def test_type1_on_first_dirty_receipt(self, manual_system):
        system = manual_system()
        # Make P2 dirty, then have it send to component 1.
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.shadow.mdcd.dirty_bit == 1
        ckpt = system.shadow.volatile_checkpoint()
        assert ckpt is not None and ckpt.kind is CheckpointKind.TYPE_1

    def test_no_second_type1_while_dirty(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.shadow.counters.get("checkpoint.type-1") == 1

    def test_passed_at_sets_vr_reclaims_and_type2(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))  # dirties shadow
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        shadow = system.shadow
        assert shadow.mdcd.dirty_bit == 0
        assert shadow.mdcd.vr == system.active.sn.current
        assert len(shadow.msg_log) == 0  # all entries <= vr reclaimed
        assert shadow.counters.get("checkpoint.type-2") == 1

    def test_type2_only_when_previously_dirty(self, manual_system):
        system = manual_system()
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.shadow.counters.get("checkpoint.type-2") == 0


class TestPeerEngine:
    def test_type1_then_dirty_on_active_message(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        peer = system.peer
        assert peer.mdcd.dirty_bit == 1
        assert peer.mdcd.msg_sn_p1act == 1
        assert peer.counters.get("checkpoint.type-1") == 1

    def test_type1_snapshot_predates_contamination(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        snapshot = system.peer.volatile_checkpoint().restore_state()
        assert snapshot.mdcd.dirty_bit == 0
        assert snapshot.app_state.inputs_applied == 0

    def test_dirty_external_runs_at_and_broadcasts(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        peer = system.peer
        assert peer.counters.get("at.pass") == 1
        assert peer.mdcd.dirty_bit == 0
        assert peer.counters.get("checkpoint.type-2") == 1
        assert system.shadow.counters.get("recv.passed_at") == 1
        assert system.active.counters.get("recv.passed_at") == 1

    def test_clean_external_skips_at(self, manual_system):
        system = manual_system()
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.peer.counters.get("at.pass") == 0
        assert system.peer.counters.get("sent.external") == 1

    def test_peer_notification_carries_active_sn(self, manual_system):
        system = manual_system()
        for _ in range(3):
            system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        # The shadow's VR reflects P2's record of P1_act's last SN.
        assert system.shadow.mdcd.vr == 3

    def test_internal_piggybacks_dirty_bit(self, manual_system):
        system = manual_system()
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        recs = system.shadow.journal_recv.records(sender=system.peer.process_id)
        assert recs and recs[0].sent_dirty == 1

    def test_at_failure_escalates(self, manual_system):
        system = manual_system()
        system.low_version.fault_active = True
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.sw_recovery.completed
