"""Fixtures for MDCD engine tests: manually-driven guarded systems."""

import pytest

from repro.app.workload import Action, ActionKind, WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.tb.blocking import TbConfig


def action(kind=ActionKind.SEND_INTERNAL, stimulus=7, index=10_000_000):
    """A synthetic action for direct engine invocation."""
    return Action(index=index, kind=kind, gap=0.0, stimulus=stimulus)


INTERNAL = ActionKind.SEND_INTERNAL
EXTERNAL = ActionKind.SEND_EXTERNAL


@pytest.fixture
def manual_system():
    """Factory: a three-process system with (effectively) no workload of
    its own, driven by calling engine handlers directly.  TB intervals
    are long enough that no establishment interferes unless a test asks
    for one."""
    def build(scheme=Scheme.MDCD_ONLY, seed=2, horizon=500.0, **overrides):
        config = SystemConfig(
            scheme=scheme, seed=seed, horizon=horizon,
            tb=overrides.pop("tb", TbConfig(interval=10_000.0)),
            workload1=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                     step_rate=0.001, horizon=horizon),
            workload2=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                     step_rate=0.001, horizon=horizon),
            **overrides)
        system = build_system(config)
        system.start()
        return system
    return build


def settle(system, duration=1.0):
    """Let in-flight messages drain."""
    system.sim.run(until=system.sim.now + duration)
