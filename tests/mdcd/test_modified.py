"""Unit tests for the modified MDCD engines (Appendix A)."""

from conftest import EXTERNAL, INTERNAL, action, settle

from repro.coordination.scheme import Scheme
from repro.messages.message import passed_at_notification
from repro.types import CheckpointKind, ProcessId


def modified(manual_system, **kw):
    return manual_system(scheme=Scheme.COORDINATED, **kw)


class TestPseudoDirtyBit:
    def test_pseudo_checkpoint_before_first_internal_send(self, manual_system):
        system = modified(manual_system)
        active = system.active
        assert active.mdcd.pseudo_dirty_bit == 0
        active.software.on_send_internal(action(INTERNAL))
        assert active.mdcd.pseudo_dirty_bit == 1
        ckpt = active.volatile_checkpoint()
        assert ckpt is not None and ckpt.kind is CheckpointKind.PSEUDO

    def test_pseudo_snapshot_predates_send(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        snapshot = system.active.volatile_checkpoint().restore_state()
        assert snapshot.sn_value == 0
        assert snapshot.mdcd.pseudo_dirty_bit == 0

    def test_single_pseudo_per_suspicion_window(self, manual_system):
        system = modified(manual_system)
        for _ in range(3):
            system.active.software.on_send_internal(action(INTERNAL))
        assert system.active.counters.get("checkpoint.pseudo") == 1

    def test_own_at_pass_resets_pseudo(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        system.active.software.on_send_external(action(EXTERNAL))
        assert system.active.mdcd.pseudo_dirty_bit == 0

    def test_new_window_takes_new_pseudo_checkpoint(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        system.active.software.on_send_external(action(EXTERNAL))
        system.active.software.on_send_internal(action(INTERNAL))
        assert system.active.counters.get("checkpoint.pseudo") == 2

    def test_peer_notification_resets_pseudo(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.active.mdcd.pseudo_dirty_bit == 0

    def test_actual_dirty_bit_still_constant(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_external(action(EXTERNAL))
        assert system.active.mdcd.dirty_bit == 1


class TestNoType2:
    def test_no_type2_checkpoints_anywhere(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        for proc in system.process_list():
            assert proc.counters.get("checkpoint.type-2") == 0


class TestNdcGating:
    def test_matching_ndc_accepted(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.peer.mdcd.dirty_bit == 1
        # All engines are at Ndc 0 (genesis); a notification with ndc=0
        # matches and cleans.
        note = passed_at_notification(system.active.process_id,
                                      system.peer.process_id, msg_sn=1, ndc=0)
        system.peer.dispatch(note)
        assert system.peer.mdcd.dirty_bit == 0

    def test_mismatching_ndc_gated(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        note = passed_at_notification(system.active.process_id,
                                      system.peer.process_id, msg_sn=1, ndc=5)
        system.peer.dispatch(note)
        assert system.peer.mdcd.dirty_bit == 1
        assert system.peer.counters.get("passed_at.ndc_mismatch") == 1

    def test_future_ndc_notification_deferred_and_replayed(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        note = passed_at_notification(system.active.process_id,
                                      system.peer.process_id, msg_sn=1, ndc=1)
        system.peer.dispatch(note)
        assert system.peer.mdcd.dirty_bit == 1  # gated now
        # When the local epoch catches up, the stashed notification is
        # replayed and the knowledge applied.
        system.peer.hardware.ndc = 1
        assert system.peer.reprocess_notifications() == 1
        assert system.peer.mdcd.dirty_bit == 0

    def test_stale_ndc_notification_not_deferred(self, manual_system):
        system = modified(manual_system)
        system.peer.hardware.ndc = 3
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        note = passed_at_notification(system.active.process_id,
                                      system.peer.process_id, msg_sn=1, ndc=1)
        system.peer.dispatch(note)
        assert system.peer.counters.get("passed_at.deferred", ) == 0


class TestPeerValidBound:
    def test_validated_at_receipt_does_not_contaminate(self, manual_system):
        system = modified(manual_system)
        peer = system.peer
        # P2 learns that P1_act messages up to sn=5 are valid.
        note = passed_at_notification(system.active.process_id,
                                      peer.process_id, msg_sn=5, ndc=0)
        peer.dispatch(note)
        assert peer.mdcd.vr == 5
        # A dirty-flagged message with sn <= 5 arrives afterwards (it
        # was overtaken by the notification): no contamination.
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert peer.mdcd.dirty_bit == 0
        assert peer.counters.get("checkpoint.type-1") == 0
        recs = peer.journal_recv.records(sender=system.active.process_id)
        assert recs and recs[0].validated

    def test_beyond_bound_still_contaminates(self, manual_system):
        system = modified(manual_system)
        peer = system.peer
        note = passed_at_notification(system.active.process_id,
                                      peer.process_id, msg_sn=0, ndc=0)
        peer.dispatch(note)
        system.active.software.on_send_internal(action(INTERNAL))  # sn=1 > 0
        settle(system)
        assert peer.mdcd.dirty_bit == 1


class TestShadowModified:
    def test_reclaim_and_vr_on_notification(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.shadow.mdcd.vr == 2
        assert len(system.shadow.msg_log) == 0

    def test_no_type2_on_validation(self, manual_system):
        system = modified(manual_system)
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.shadow.mdcd.dirty_bit == 1
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.shadow.mdcd.dirty_bit == 0
        assert system.shadow.counters.get("checkpoint.type-2") == 0
