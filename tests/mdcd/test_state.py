"""Unit tests for the MDCD knowledge state."""

from repro.mdcd.state import MdcdState


class TestDefaults:
    def test_clean_by_default(self):
        state = MdcdState()
        assert state.dirty_bit == 0
        assert state.pseudo_dirty_bit == 0
        assert state.vr is None
        assert state.msg_sn_p1act == 0
        assert state.guarded


class TestCopy:
    def test_copy_is_independent(self):
        state = MdcdState(dirty_bit=1, vr=5)
        copy = state.copy()
        copy.dirty_bit = 0
        copy.vr = 9
        assert state.dirty_bit == 1
        assert state.vr == 5

    def test_copy_preserves_fields(self):
        state = MdcdState(dirty_bit=1, pseudo_dirty_bit=1, vr=3,
                          msg_sn_p1act=7, guarded=False)
        copy = state.copy()
        assert copy == state
