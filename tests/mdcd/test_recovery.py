"""Unit tests for MDCD software error recovery (shadow takeover)."""

from conftest import EXTERNAL, INTERNAL, action, settle

from repro.coordination.scheme import Scheme
from repro.types import RecoveryAction


def contaminate_and_fail(system):
    """Activate the defect, propagate contamination, fail the next AT."""
    system.low_version.fault_active = True
    system.active.software.on_send_internal(action(INTERNAL))
    settle(system)
    system.peer.software.on_send_internal(action(INTERNAL))
    settle(system)
    system.active.software.on_send_external(action(EXTERNAL))
    settle(system)


class TestLocalDecisions:
    def test_dirty_processes_roll_back(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        recovery = system.sw_recovery
        assert recovery.completed
        assert recovery.decisions[system.peer.process_id] is RecoveryAction.ROLLBACK
        assert recovery.decisions[system.shadow.process_id] is RecoveryAction.ROLLBACK

    def test_clean_processes_roll_forward(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        system.low_version.fault_active = True
        # Contaminate only P2 (the shadow never hears from it).
        system.active.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        settle(system)
        recovery = system.sw_recovery
        assert recovery.decisions[system.shadow.process_id] is RecoveryAction.ROLL_FORWARD
        assert recovery.decisions[system.peer.process_id] is RecoveryAction.ROLLBACK

    def test_rollback_restores_clean_ground_truth(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        assert not system.peer.component.state.corrupt
        assert not system.shadow.component.state.corrupt

    def test_recovery_is_idempotent(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        decisions_before = dict(system.sw_recovery.decisions)
        # A second detection is traced and ignored.
        system.sw_recovery.recover(system.peer, failed_message=None)
        assert system.sw_recovery.decisions == decisions_before


class TestTakeover:
    def test_active_deposed_and_stopped(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        assert system.active.deposed
        system.active.perform_action(action(INTERNAL))
        settle(system)
        # A deposed active sends nothing.
        assert system.active.counters.get("sent.internal") <= 1

    def test_shadow_resends_unvalidated_log_entries(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        system.low_version.fault_active = True
        # Two internal messages, never validated.
        for _ in range(2):
            system.active.software.on_send_internal(action(INTERNAL))
            system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        applied_before = system.peer.counters.get("recv.applied")
        system.active.software.on_send_external(action(EXTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert system.sw_recovery.completed
        assert system.sw_recovery.resent >= 2
        # P2 rolled back past the active's invalid messages and received
        # the shadow's correct replacements instead.
        assert system.peer.counters.get("recv.applied") >= applied_before

    def test_validated_entries_are_suppressed_not_resent(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        # A validated exchange first.
        system.active.software.on_send_internal(action(INTERNAL))
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        system.active.software.on_send_external(action(EXTERNAL))
        system.shadow.software.on_send_external(action(EXTERNAL))
        settle(system)
        # Then the fault manifests.
        contaminate_and_fail(system)
        # Entries covered by VR were reclaimed at validation, so the
        # takeover resends only the unvalidated tail.
        assert system.sw_recovery.resent <= 3

    def test_promoted_shadow_sends_unsuppressed(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        sent_before = system.shadow.counters.get("sent.internal")
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.shadow.counters.get("sent.internal") == sent_before + 1

    def test_promoted_shadow_messages_are_born_valid(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        system.shadow.software.on_send_internal(action(INTERNAL))
        settle(system)
        recs = system.peer.journal_recv.records(sender=system.shadow.process_id)
        assert recs and all(r.validated for r in recs)
        assert system.peer.mdcd.dirty_bit == 0

    def test_peer_stops_addressing_deposed_active(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        assert system.active.process_id not in \
            system.peer.software.component1_recipients
        dropped_before = system.active.counters.get("dropped.deposed")
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.active.counters.get("dropped.deposed") == dropped_before

    def test_guarded_operation_ends(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        assert not system.shadow.mdcd.guarded
        assert not system.peer.mdcd.guarded
        # Dirty bits stay zero from here on.
        system.shadow.software.on_send_internal(action(INTERNAL))
        system.peer.software.on_send_internal(action(INTERNAL))
        settle(system)
        assert system.shadow.mdcd.dirty_bit == 0
        assert system.peer.mdcd.dirty_bit == 0

    def test_incarnation_bumped(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        before = system.incarnation.value
        contaminate_and_fail(system)
        assert system.incarnation.value == before + 1


class TestPostTakeoverOperation:
    def test_system_keeps_computing_cleanly(self, manual_system):
        system = manual_system(scheme=Scheme.COORDINATED)
        contaminate_and_fail(system)
        for _ in range(3):
            system.shadow.software.on_send_internal(action(INTERNAL))
            system.peer.software.on_send_internal(action(INTERNAL))
            settle(system)
        system.peer.software.on_send_external(action(EXTERNAL))
        settle(system)
        assert not system.peer.component.state.corrupt
        assert not system.shadow.component.state.corrupt
        assert system.trace.count("at.fail") == 1  # only the original failure
