"""Group views, the deterministic shadow election, the N-ary bound-map
helpers, and the script-target resolution the runtime backends share."""

import pytest

from repro.runtime.script import member_targets, topology_script
from repro.topology.election import CRASHED, DEPOSED, UP, elect_successor
from repro.topology.engines import covered_by, merge_bounds, route
from repro.topology.model import Topology, parse_topology
from repro.topology.view import GroupView


def statuses(topo, **overrides):
    base = {m.role_id: UP for m in topo.members}
    base.update(overrides)
    return base


class TestElection:
    def test_prefers_lowest_rank(self):
        topo = Topology.general(components=1, shadows=3, peers=1)
        assert elect_successor(topo, 1, statuses(topo)) == "C1_sdw1"

    def test_skips_crashed_shadows(self):
        topo = Topology.general(components=1, shadows=3, peers=1)
        got = elect_successor(topo, 1, statuses(topo, C1_sdw1=CRASHED))
        assert got == "C1_sdw2"

    def test_skips_deposed_shadows(self):
        topo = Topology.general(components=1, shadows=2, peers=1)
        got = elect_successor(topo, 1, statuses(topo, C1_sdw1=DEPOSED))
        assert got == "C1_sdw2"

    def test_no_eligible_shadow_returns_none(self):
        topo = Topology.general(components=1, shadows=2, peers=1)
        got = elect_successor(topo, 1, statuses(topo, C1_sdw1=CRASHED,
                                                C1_sdw2=DEPOSED))
        assert got is None

    def test_per_component_isolation(self):
        topo = Topology.general(components=2, shadows=2, peers=1)
        s = statuses(topo, C1_sdw1=CRASHED)
        assert elect_successor(topo, 1, s) == "C1_sdw2"
        assert elect_successor(topo, 2, s) == "C2_sdw1"


class TestGroupView:
    def test_crash_restart_cycle(self):
        topo = Topology.general(components=1, shadows=1, peers=1)
        view = GroupView(topo)
        assert view.epoch == 0
        epoch = view.note_crash("C1_act")
        assert epoch == 1 and not view.is_up("C1_act")
        epoch = view.note_restart("C1_act")
        assert epoch == 2 and view.is_up("C1_act")

    def test_duplicate_status_does_not_bump_epoch(self):
        view = GroupView(Topology.general(components=1, shadows=1, peers=1))
        view.note_crash("C1_act")
        assert view.note_crash("C1_act") == 1

    def test_promotion_forces_new_epoch(self):
        view = GroupView(Topology.general(components=1, shadows=2, peers=1))
        before = view.epoch
        view.note_promoted("C1_sdw1")
        assert view.epoch == before + 1
        assert view.acting_active(1) == "C1_sdw1"

    def test_deposed_member_stays_deposed_across_restart(self):
        view = GroupView(Topology.general(components=1, shadows=1, peers=1))
        view.note_deposed("C1_act")
        view.note_restart("C1_act")
        assert view.status["C1_act"] == DEPOSED
        assert view.acting_active(1) is None

    def test_node_crash_marks_all_collocated_members(self):
        topo = Topology.paper()
        view = GroupView(topo)
        view.node_crashed("N1a")
        assert not view.is_up("P1_act")
        assert view.is_up("P1_sdw") and view.is_up("P2")
        assert view.in_service() == ("P1_sdw", "P2")

    def test_elect_excludes_already_promoted_shadows(self):
        view = GroupView(Topology.general(components=1, shadows=2, peers=1))
        view.note_promoted("C1_sdw1")
        assert view.elect(1) == "C1_sdw2"


class TestBoundMaps:
    def test_route_is_deterministic_and_total(self):
        targets = ["P1", "P2", "P3"]
        assert route(0, targets) == "P1"
        assert route(4, targets) == "P2"
        assert {route(s, targets) for s in range(9)} == set(targets)

    def test_merge_takes_per_source_maximum(self):
        merged = merge_bounds({"C1_act": 3, "C2_act": 1},
                              {"C1_act": 2, "C2_act": 5})
        assert merged == {"C1_act": 3, "C2_act": 5}

    def test_merge_handles_none(self):
        assert merge_bounds(None, {"C1_act": 1}) == {"C1_act": 1}
        assert merge_bounds(None, None) == {}

    def test_covered_by_requires_every_source(self):
        assert covered_by({"C1_act": 2}, {"C1_act": 2})
        assert not covered_by({"C1_act": 3}, {"C1_act": 2})
        assert not covered_by({"C2_act": 1}, {"C1_act": 9})
        assert covered_by({}, {})


class TestScriptTargets:
    def test_component_target_expands_to_active_and_shadows(self):
        topo = parse_topology("1x2+1")
        assert member_targets("C1", topo) == \
            ("C1_act", "C1_sdw1", "C1_sdw2")

    def test_peer_target_is_itself(self):
        topo = parse_topology("1x1+2")
        assert member_targets("P2", topo) == ("P2",)

    def test_guarded_member_cannot_be_addressed_directly(self):
        topo = parse_topology("1x1+1")
        with pytest.raises(ValueError):
            member_targets("C1_act", topo)

    def test_topology_script_covers_every_component_and_a_crash(self):
        topo = parse_topology("2x2+2")
        script = topology_script(topo)
        targets = {op.target for op in script if op.op == "internal"}
        assert {"C1", "C2"} <= targets
        ops = [op.op for op in script]
        assert "crash" in ops and "restart" in ops
        crashed = [op.target for op in script if op.op == "crash"]
        assert crashed == [topo.peers()[0].node_id]

    def test_topology_script_deterministic(self):
        topo = parse_topology("2x1+2")
        assert topology_script(topo) == topology_script(topo)
