"""The Topology value object: paper shape, general shapes, parsing,
queries, and the canonical fingerprint."""

import pytest

from repro.topology.model import MemberKind, Topology, parse_topology

PAPER_FINGERPRINT = "3d195c3d79d3c1e0"


class TestPaperShape:
    def test_members_and_roles(self):
        topo = Topology.paper()
        assert topo.is_paper
        assert topo.role_ids() == ("P1_act", "P1_sdw", "P2")
        assert topo.node_ids() == ("N1a", "N1b", "N2")
        assert topo.n_components == 1
        assert topo.n_shadows == 1
        assert topo.n_peers == 1
        assert topo.size == 3

    def test_kinds_and_components(self):
        topo = Topology.paper()
        assert topo.member("P1_act").kind is MemberKind.ACTIVE
        assert topo.member("P1_sdw").kind is MemberKind.SHADOW
        assert topo.member("P2").kind is MemberKind.PEER
        assert topo.active_of(1).role_id == "P1_act"
        assert [s.role_id for s in topo.shadows_of(1)] == ["P1_sdw"]
        assert [p.role_id for p in topo.peers()] == ["P2"]

    def test_paper_fingerprint_pinned(self):
        # The golden Fig. 6 digests are keyed by this value
        # (tests/golden/fig6_traces.json); changing the default
        # membership must fail loudly.
        assert Topology.paper().fingerprint() == PAPER_FINGERPRINT

    def test_exempt_and_guarded(self):
        topo = Topology.paper()
        assert topo.exempt_role_ids() == ("P1_act",)
        assert topo.guarded_pairs() == {"P1_act": ("P1_sdw",)}


class TestGeneralShapes:
    def test_member_naming(self):
        topo = Topology.general(components=2, shadows=2, peers=3)
        assert topo.active_of(1).role_id == "C1_act"
        assert topo.active_of(2).role_id == "C2_act"
        assert [s.role_id for s in topo.shadows_of(2)] == \
            ["C2_sdw1", "C2_sdw2"]
        assert [p.role_id for p in topo.peers()] == ["P1", "P2", "P3"]
        assert topo.size == 2 * 3 + 3

    def test_nodes_are_distinct(self):
        topo = Topology.general(components=3, shadows=2, peers=2)
        nodes = topo.node_ids()
        assert len(nodes) == len(set(nodes)) == topo.size

    def test_members_on(self):
        topo = Topology.general(components=1, shadows=2, peers=1)
        shadow = topo.shadows_of(1)[0]
        assert [m.role_id for m in topo.members_on(shadow.node_id)] == \
            [shadow.role_id]

    def test_shadow_ranks_ordered(self):
        topo = Topology.general(components=1, shadows=3, peers=1)
        ranks = [s.rank for s in topo.shadows_of(1)]
        assert ranks == sorted(ranks)

    def test_fingerprints_separate_shapes(self):
        seen = set()
        for spec in ("paper", "1x1+1", "1x2+1", "2x1+1", "2x2+3"):
            seen.add(parse_topology(spec).fingerprint())
        assert len(seen) == 5

    def test_fingerprint_deterministic(self):
        a = parse_topology("2x2+3").fingerprint()
        b = parse_topology("2x2+3").fingerprint()
        assert a == b == "6c688af71c01319e"


class TestParsing:
    def test_paper_spec(self):
        assert parse_topology("paper").is_paper

    def test_nxk_default_peers(self):
        topo = parse_topology("2x2")
        assert topo.n_components == 2
        assert topo.n_shadows == 2
        assert topo.n_peers == 2  # defaults to N

    def test_nxk_plus_u(self):
        topo = parse_topology("1x2+2")
        assert (topo.n_components, topo.n_shadows, topo.n_peers) == (1, 2, 2)
        assert topo.size == 5

    @pytest.mark.parametrize("bad", ["", "0x1", "1x0", "axb", "1x1+",
                                     "paperx", "2x2+0x", "2x2+0"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_topology(bad)

    def test_unknown_member_raises(self):
        with pytest.raises(KeyError):
            Topology.paper().member("C9_act")
