"""Flock-runner tests: grouping, sharding, gates, equivalence, workers."""

from repro.audit.campaign import audit_schedule, run_audit
from repro.audit.config import AuditConfig
from repro.audit.generator import reference_timeline
from repro.audit.schedule import CrashSpec, FaultSchedule, SoftwareFaultSpec
from repro.flock import FlockRunner, _run_flock_shard
from repro.warmstart import ImageStore, WarmRunner, share_schedule_seeds

import pytest

SMALL = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                    horizon=120.0, tb_interval=20.0)


@pytest.fixture(scope="module")
def timeline():
    return reference_timeline(SMALL)


def _shared_seed() -> int:
    return share_schedule_seeds(
        SMALL, [FaultSchedule(label="probe", system_seed=0,
                              origin="test")])[0].system_seed


def _crash(label: str, at: float, seed=None) -> FaultSchedule:
    return FaultSchedule(label=label,
                         system_seed=_shared_seed() if seed is None else seed,
                         crashes=(CrashSpec(node_id="N2", crash_at=at,
                                            repair_time=2.0),),
                         origin="test")


class TestGrouping:
    def test_groups_largest_first_divergence_ascending(self):
        schedules = [_crash("solo", 40.0, seed=999),
                     _crash("c", 90.0), _crash("a", 30.0), _crash("b", 60.0)]
        runner = FlockRunner(SMALL)
        groups = runner.groups(schedules)
        assert groups == [[2, 3, 1], [0]]

    def test_shards_split_to_fork_batch(self):
        schedules = [_crash(f"s{i}", 20.0 + i) for i in range(7)]
        runner = FlockRunner(SMALL, fork_batch=3)
        assert runner.shards(schedules) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_plan_is_idempotent(self):
        """run_audit plans, then run_batch plans the same campaign
        again — singleton groups must not inflate past the gate."""
        schedules = [_crash("solo", 40.0, seed=999)]
        runner = FlockRunner(SMALL)
        runner.plan(schedules)
        runner.plan(schedules)
        assert runner._group_counts[
            runner._key(schedules[0]).digest()] == 1


class TestPolicy:
    def test_singleton_group_stays_cold(self):
        runner = FlockRunner(SMALL)
        sched = _crash("solo", 60.0)
        runner.plan([sched])
        findings = runner.audit_schedule(sched)
        assert findings == audit_schedule(SMALL, sched)
        assert runner.cold_runs == 1 and runner.flock_runs == 0
        assert runner.templates_built == 0

    def test_min_group_builds_one_template(self):
        runner = FlockRunner(SMALL)
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        runner.plan(schedules)
        for sched in schedules:
            assert runner.audit_schedule(sched) == \
                audit_schedule(SMALL, sched)
        assert runner.flock_runs == 2 and runner.cold_runs == 0
        assert runner.templates_built == 1

    def test_early_divergence_falls_back_cold(self):
        runner = FlockRunner(SMALL)
        schedules = [_crash("early", 0.5), _crash("late", 80.0)]
        runner.plan(schedules)
        findings = runner.audit_schedule(schedules[0])
        assert findings == audit_schedule(SMALL, schedules[0])
        assert runner.cold_runs == 1

    def test_consume_only_runner_never_builds(self):
        runner = FlockRunner(SMALL, build_missing=False)
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        runner.plan(schedules)
        runner.audit_schedule(schedules[0])
        assert runner.templates_built == 0 and runner.cold_runs == 1


class TestRunBatch:
    def test_matches_cold_campaign(self):
        schedules = [_crash("a", 30.2), _crash("b", 30.4),
                     _crash("c", 62.0), _crash("d", 95.0)]
        runner = FlockRunner(SMALL)
        results = runner.run_batch(schedules)
        assert [r["schedule"]["label"] for r in results] == \
            ["a", "b", "c", "d"]          # input order restored
        for sched, result in zip(schedules, results):
            cold = audit_schedule(SMALL, sched)
            assert result["violated"] == bool(cold)
            assert result["findings"] == [f.to_dict() for f in cold]
            assert result["error"] is None
            assert result["flock"] is True
        stats = runner.stats()
        assert stats["templates_built"] == 1
        assert stats["forks"] == 4
        # Nearby divergences share a quantized dump position.
        assert stats["dumps"] < stats["forks"]
        assert stats["pool_reused"] > 0

    def test_mixed_fault_kinds(self):
        schedules = [
            FaultSchedule(label="sw", system_seed=_shared_seed(),
                          software=(SoftwareFaultSpec(activate_at=55.0),),
                          origin="test"),
            _crash("cr", 70.0),
        ]
        runner = FlockRunner(SMALL)
        for sched, result in zip(schedules, runner.run_batch(schedules)):
            cold = audit_schedule(SMALL, sched)
            assert result["violated"] == bool(cold)
            assert result["findings"] == [f.to_dict() for f in cold]

    def test_stats_shape(self):
        runner = FlockRunner(SMALL)
        runner.run_batch([_crash("a", 50.0), _crash("b", 80.0)])
        stats = runner.stats()
        for field in ("flock_runs", "cold_runs", "templates_built",
                      "decode_seconds", "build_seconds", "fork_seconds",
                      "run_seconds", "forks", "dumps", "dump_bytes",
                      "shared_objects", "advance_seconds",
                      "dump_encode_seconds"):
            assert field in stats, field
        assert stats["run_seconds"] > 0.0
        assert stats["dump_bytes"] > 0


class TestEnsureTemplate:
    def test_predumps_at_fault_instants(self):
        original = FaultSchedule(
            label="orig", system_seed=_shared_seed(),
            software=(SoftwareFaultSpec(activate_at=64.0),),
            crashes=(CrashSpec(node_id="N2", crash_at=40.0,
                               repair_time=2.0),),
            origin="test")
        runner = FlockRunner(SMALL)
        runner.ensure_template(original)
        assert runner.templates_built == 1
        digest = runner._key(original).digest()
        assert runner._templates[digest].dump_positions() == [39.0, 63.0]
        # Candidates now fork regardless of the order the shrinker
        # tries them in (template advancement is monotone).
        late = FaultSchedule(
            label="late", system_seed=_shared_seed(),
            software=original.software, origin="test")
        early = FaultSchedule(
            label="early", system_seed=_shared_seed(),
            crashes=original.crashes, origin="test")
        assert runner.violates(late) == \
            bool(audit_schedule(SMALL, late))
        assert runner.violates(early) == \
            bool(audit_schedule(SMALL, early))
        assert runner.flock_runs == 2

    def test_override_only_original_skipped(self):
        original = FaultSchedule(label="ovr", system_seed=_shared_seed(),
                                 overrides=(("clock_delta", 0.9),),
                                 origin="test")
        runner = FlockRunner(SMALL)
        runner.ensure_template(original)
        assert runner.templates_built == 0


class TestWorkerShard:
    def test_shard_without_store_builds_reference(self):
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        results = _run_flock_shard(
            (SMALL.to_dict(), [s.to_dict() for s in schedules], None, 32))
        for sched, result in zip(schedules, results):
            assert result["error"] is None
            assert result["flock"] is True
            assert result["violated"] == bool(audit_schedule(SMALL, sched))

    def test_shard_with_store_thaws_image(self, timeline, tmp_path):
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        builder = WarmRunner(SMALL, store=ImageStore(root=tmp_path),
                             timeline=timeline)
        builder.plan(schedules)
        assert builder.ensure_images(schedules[0])
        results = _run_flock_shard(
            (SMALL.to_dict(), [s.to_dict() for s in schedules],
             str(tmp_path), 32))
        assert all(r["flock"] for r in results)
        assert all(r["error"] is None for r in results)

    def test_shard_with_empty_store_degrades_cold(self, tmp_path):
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        results = _run_flock_shard(
            (SMALL.to_dict(), [s.to_dict() for s in schedules],
             str(tmp_path), 32))
        for sched, result in zip(schedules, results):
            assert result["error"] is None
            assert result["flock"] is False
            assert result["violated"] == bool(audit_schedule(SMALL, sched))


class TestRunAuditIntegration:
    def test_flock_report_matches_cold(self, timeline):
        schedules = [_crash("a", 30.0), _crash("b", 60.0),
                     _crash("c", 90.0)]
        cold = run_audit(SMALL, schedules=schedules, timeline=timeline)
        flock = run_audit(SMALL, schedules=schedules, timeline=timeline,
                          flock=True)
        assert flock.violations == cold.violations
        assert flock.errors == cold.errors
        assert flock.warmstart["mode"] == "flock"
        assert flock.warmstart["flock_runs"] == 3

    def test_flock_config_knob_enables_it(self, timeline):
        config = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                             horizon=120.0, tb_interval=20.0, flock=True)
        schedules = [_crash("a", 30.0), _crash("b", 60.0)]
        report = run_audit(config, schedules=schedules, timeline=timeline)
        assert report.warmstart is not None
        assert report.warmstart["mode"] == "flock"

    def test_flock_knobs_stay_out_of_fingerprint(self):
        on = AuditConfig(scheme="coordinated", seed=11, flock=True,
                         fork_batch=7)
        off = AuditConfig(scheme="coordinated", seed=11)
        assert on.fingerprint() == off.fingerprint()
        assert "flock" not in on.to_dict()
        assert "fork_batch" not in on.to_dict()
