"""Template tests: quantization, monotone advance, dump cache, refusal."""

import math

import pytest

from repro.audit.auditor import OnlineAuditor
from repro.audit.campaign import build_audit_system
from repro.audit.config import AuditConfig
from repro.audit.golden import canonical_trace_lines, trace_digest
from repro.audit.schedule import CrashSpec, FaultSchedule
from repro.errors import AuditViolation
from repro.flock import FORK_QUANTUM, ForkTemplate, fork_position
from repro.warmstart import share_schedule_seeds

SMALL = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                    horizon=120.0, tb_interval=20.0)


def _shared_seed() -> int:
    return share_schedule_seeds(
        SMALL, [FaultSchedule(label="probe", system_seed=0,
                              origin="test")])[0].system_seed


def _crash(label: str, at: float) -> FaultSchedule:
    return FaultSchedule(label=label, system_seed=_shared_seed(),
                         crashes=(CrashSpec(node_id="N2", crash_at=at,
                                            repair_time=2.0),),
                         origin="test")


def _cold_digest(sched: FaultSchedule) -> str:
    system = build_audit_system(SMALL, sched)
    auditor = OnlineAuditor(system, fail_fast=False)
    try:
        system.run()
    except AuditViolation:
        pass
    try:
        auditor.finalize()
    except AuditViolation:
        pass
    return trace_digest(canonical_trace_lines(system))


class TestForkPosition:
    def test_quantized_strictly_before_divergence(self):
        assert fork_position(30.0, 120.0) == 29.0
        assert fork_position(30.5, 120.0) == 30.0
        assert fork_position(0.4, 120.0) == 0.0

    def test_fault_free_caps_short_of_horizon(self):
        pos = fork_position(float("inf"), 120.0)
        assert pos < 120.0
        assert pos == math.floor((120.0 - 1e-6) / FORK_QUANTUM) * FORK_QUANTUM

    def test_boundary_cluster_shares_a_position(self):
        # Schedules aiming at jittered offsets after one instant land
        # on the same grid point — one cached dump serves the cluster;
        # the just-before probes share the preceding grid point.
        after = {fork_position(60.0 + d, 120.0)
                 for d in (0.05, 0.3, 0.7, 0.95)}
        before = {fork_position(60.0 + d, 120.0) for d in (-0.4, -0.2)}
        assert after == {60.0}
        assert before == {59.0}


class TestForkTemplate:
    def test_advance_is_monotone_and_dumps_cache(self):
        template = ForkTemplate.from_reference(SMALL, _crash("t", 50.0))
        assert template.advance_to(30.0)
        assert template.position == 30.0
        first = template.dump()
        assert template.dump() is first            # cached
        assert template.advance_to(20.0)           # no-op, never rewinds
        assert template.position == 30.0
        assert template.advance_to(45.0)
        assert template.dump_positions() == [30.0]
        template.dump()
        assert template.dump_positions() == [30.0, 45.0]

    def test_dump_at_serves_older_positions(self):
        template = ForkTemplate.from_reference(SMALL, _crash("t", 50.0))
        template.advance_to(20.0)
        early = template.dump()
        template.advance_to(40.0)
        template.dump()
        assert template.dump_at(25.0) is early
        assert template.dump_at(19.0) is None

    def test_fork_runs_bit_identical_to_cold(self):
        sched = _crash("fork", 47.0)
        template = ForkTemplate.from_reference(SMALL, sched)
        template.advance_to(fork_position(47.0, SMALL.horizon))
        system, auditor = template.fork()
        sched.arm(system)
        try:
            system.run()
        except AuditViolation:
            pass
        try:
            auditor.finalize()
        except AuditViolation:
            pass
        assert trace_digest(canonical_trace_lines(system)) == \
            _cold_digest(sched)

    def test_sequential_forks_are_independent(self):
        a, b = _crash("a", 40.0), _crash("b", 40.0)
        template = ForkTemplate.from_reference(SMALL, a)
        template.advance_to(fork_position(40.0, SMALL.horizon))
        digests = []
        for sched in (a, b):
            system, auditor = template.fork()
            sched.arm(system)
            try:
                system.run()
            except AuditViolation:
                pass
            digests.append(trace_digest(canonical_trace_lines(system)))
        assert digests[0] == digests[1] == _cold_digest(a)
        assert template.forks == 2

    def test_template_advances_past_forked_positions(self):
        """Forking never freezes the template: later (larger
        divergence) schedules keep advancing the same resident run."""
        template = ForkTemplate.from_reference(SMALL, _crash("t", 30.0))
        template.advance_to(29.0)
        template.dump()
        template.fork()
        assert template.advance_to(80.0)
        assert template.position == 80.0


class _ViolatedAuditor:
    violated = True
    fail_fast = False
    findings = ()


class TestViolatedReference:
    def test_advance_refuses(self):
        sched = FaultSchedule(label="v", system_seed=_shared_seed(),
                              origin="test")
        system = build_audit_system(SMALL, sched)
        system.run(until=20.0)
        template = ForkTemplate(system, _ViolatedAuditor())
        assert template.advance_to(60.0) is False
        assert template.position == 20.0           # never ran further

    def test_dump_refuses(self):
        sched = FaultSchedule(label="v", system_seed=_shared_seed(),
                              origin="test")
        system = build_audit_system(SMALL, sched)
        system.run(until=20.0)
        template = ForkTemplate(system, _ViolatedAuditor())
        with pytest.raises(RuntimeError, match="violated"):
            template.dump()

    def test_clean_dumps_survive_later_violation(self):
        """The last clean cached dump keeps serving forks after the
        reference turns violated (the shrink fallback path)."""
        sched = _crash("t", 50.0)
        template = ForkTemplate.from_reference(SMALL, sched)
        template.advance_to(40.0)
        clean = template.dump()
        template.auditor = _ViolatedAuditor()
        assert template.dump_at(45.0) is clean
        system, _auditor = template.fork(clean)
        assert system.sim.now == 40.0
