"""Fork-context tests: shared-table growth, dump stability, registry."""

from repro.audit.campaign import build_audit_system
from repro.audit.config import AuditConfig
from repro.audit.schedule import FaultSchedule
from repro.flock import ForkContext, collect_shared
from repro.flock.fork import SHARED_STR_MIN

SMALL = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                    horizon=120.0, tb_interval=20.0)


def _reference_system(until: float = 40.0):
    sched = FaultSchedule(label="ref", system_seed=3, origin="test")
    system = build_audit_system(SMALL, sched)
    system.run(until=until)
    return system


class TestForkContext:
    def test_share_round_trip_preserves_identity(self):
        context = ForkContext()
        shared = {"k": [1, 2, 3]}
        context.share(shared)
        data = context.dumps({"inner": shared, "plain": [4, 5]})
        state = context.loads(data)
        assert state["inner"] is shared          # shared: same object
        assert state["plain"] == [4, 5]          # private: fresh copy

    def test_table_is_grow_only(self):
        """Dumps taken early must stay decodable after the table grows
        — the shrink path forks from dumps cached before later
        advancement registered more shared objects."""
        context = ForkContext()
        first = {"gen": 1}
        context.share(first)
        early = context.dumps({"ref": first})
        for i in range(50):
            context.share({"gen": i + 2})
        assert context.loads(early)["ref"] is first

    def test_long_strings_are_interned(self):
        context = ForkContext()
        label = "x" * (SHARED_STR_MIN + 4)
        context.share(label)
        out = context.loads(context.dumps({"label": label}))
        assert out["label"] is label

    def test_short_strings_stay_inline(self):
        """Sub-threshold strings are not worth a table indirection."""
        context = ForkContext()
        label = "ab"
        context.share(label)
        data = context.dumps({"label": label})
        assert context.loads(data)["label"] == "ab"

    def test_unshared_objects_copy(self):
        context = ForkContext()
        private = {"mutable": True}
        out = context.loads(context.dumps({"p": private}))
        assert out["p"] == private and out["p"] is not private


class TestCollectShared:
    def test_registers_config_and_prefix_state(self):
        system = _reference_system()
        context = ForkContext()
        seen = collect_shared(context, system)
        assert len(context) > 0
        assert seen == len(system.trace._records)

    def test_incremental_trace_registration(self):
        system = _reference_system(until=30.0)
        context = ForkContext()
        seen = collect_shared(context, system)
        before = len(context)
        system.run(until=60.0)
        seen2 = collect_shared(context, system, trace_seen=seen)
        assert seen2 == len(system.trace._records) > seen
        assert len(context) > before

    def test_forked_copy_shares_trace_records_not_the_list(self):
        system = _reference_system()
        context = ForkContext()
        collect_shared(context, system)
        copy = context.loads(context.dumps({"system": system}))["system"]
        assert copy.trace._records is not system.trace._records
        assert all(a is b for a, b in zip(copy.trace._records,
                                          system.trace._records))
        # Suffix records appended to the copy never touch the template.
        n = len(system.trace._records)
        copy.run(until=50.0)
        assert len(system.trace._records) == n
