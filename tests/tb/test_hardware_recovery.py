"""Unit tests for hardware error recovery (the global rollback)."""

import pytest

from conftest import EXTERNAL, INTERNAL, action, run_to

from repro.app.faults import HardwareFaultPlan
from repro.coordination.scheme import Scheme


def crash_and_recover(system, node="N2", at=25.0, repair=1.0, until=40.0):
    system.inject_crash(HardwareFaultPlan(node_id=node, crash_at=at,
                                          repair_time=repair))
    run_to(system, until)


class TestGlobalRollback:
    def test_all_processes_roll_back(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system)
        assert system.hw_recovery.recoveries == 1
        assert len(system.hw_recovery.records) == 3
        assert {r.process_id for r in system.hw_recovery.records} == \
            {p.process_id for p in system.process_list()}

    def test_line_is_min_common_epoch(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system, at=25.0)
        # Two establishments (10, 20) completed before the crash at 25.
        assert all(r.epoch == 2 for r in system.hw_recovery.records)

    def test_distances_are_nonnegative_and_bounded(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system, at=25.0)
        for record in system.hw_recovery.records:
            assert 0.0 <= record.distance < 25.0

    def test_crashed_process_distance_measured_to_crash(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system, at=25.0, repair=5.0)
        peer_record = next(r for r in system.hw_recovery.records
                           if r.process_id == system.peer.process_id)
        # Rolled from crash time (25) back to the epoch-2 state (~20):
        # the 5 s repair outage adds no undone work.
        assert peer_record.distance == pytest.approx(5.0, abs=1.0)

    def test_crash_before_any_establishment_uses_genesis(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system, at=5.0, until=8.0)
        assert all(r.epoch == 0 for r in system.hw_recovery.records)

    def test_timers_rearm_after_recovery(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system, at=25.0, until=60.0)
        # Establishments continue after the recovery.
        assert all(p.hardware.ndc >= 4 for p in system.process_list())

    def test_incarnation_bumped(self, tb_system):
        system = tb_system(interval=10.0)
        before = system.incarnation.value
        crash_and_recover(system)
        assert system.incarnation.value == before + 1


class TestRecoverabilityMechanics:
    def _send_just_before_expiry(self, system, epoch_local_time=20.0):
        """Schedule a clean P2 internal send so close to its own timer
        expiry that the acknowledgement cannot return before the state
        is captured — the message lands in the checkpoint's saved
        unacknowledged set (the Neves-Fuchs recoverability mechanism)."""
        expiry = system.peer.node.timers.clock.true_time_of(epoch_local_time)
        system.sim.schedule_at(
            expiry - 0.003,
            lambda: system.peer.software.on_send_internal(action(INTERNAL)))

    def test_in_flight_message_saved_and_resent(self, tb_system):
        system = tb_system(interval=10.0)
        self._send_just_before_expiry(system)
        crash_and_recover(system, at=25.0)
        assert system.peer.counters.get("resent") >= 1

    def test_resends_are_deduplicated_or_reapplied_exactly_once(self, tb_system):
        system = tb_system(interval=10.0)
        self._send_just_before_expiry(system)
        crash_and_recover(system, at=25.0)
        # Whether or not the shadow's restored state reflected the
        # original receipt, after recovery the message is applied
        # exactly once.
        assert system.shadow.component.state.inputs_applied == 1

    def test_dirty_message_ack_deferred_until_validated(self, tb_system):
        system = tb_system(interval=10.0)
        # The active's dirty message is applied at P2 but its ack is
        # deferred — the message stays in the active's unacknowledged
        # set, hence restorable — until a validation covers it.
        system.sim.schedule_at(
            12.0, lambda: system.active.software.on_send_internal(action(INTERNAL)))
        run_to(system, 15.0)
        assert len(system.active.acks) == 1
        assert system.peer.counters.get("ack.deferred") == 1
        # The active passes an AT: the validation reaches P2, which
        # releases the deferred ack.
        system.sim.schedule_at(
            15.5, lambda: system.active.software.on_send_external(action(EXTERNAL)))
        run_to(system, 17.0)
        assert system.peer.counters.get("ack.released") == 1
        assert len(system.active.acks) == 0

    def test_ground_truth_clean_after_recovery(self, tb_system):
        system = tb_system(interval=10.0)
        crash_and_recover(system)
        for proc in system.process_list():
            assert not proc.component.state.corrupt

    def test_workload_resumes_after_recovery(self, tb_system):
        system = tb_system(interval=10.0, horizon=100.0)
        crash_and_recover(system, at=25.0, until=100.0)
        for proc in system.process_list():
            assert not proc.driver.paused


class TestRepeatedCrashes:
    def test_multiple_recoveries(self, tb_system):
        system = tb_system(interval=10.0, horizon=200.0)
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=25.0,
                                              repair_time=1.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1a", crash_at=65.0,
                                              repair_time=1.0))
        system.inject_crash(HardwareFaultPlan(node_id="N1b", crash_at=115.0,
                                              repair_time=1.0))
        run_to(system, 200.0)
        assert system.hw_recovery.recoveries == 3
        assert len(system.hw_recovery.distances()) == 9
        assert all(d >= 0 for d in system.hw_recovery.distances())

    def test_distances_by_process_grouping(self, tb_system):
        system = tb_system(interval=10.0, horizon=100.0)
        crash_and_recover(system, at=25.0, until=100.0)
        grouped = system.hw_recovery.distances_by_process()
        assert len(grouped) == 3
        assert all(len(v) == 1 for v in grouped.values())
