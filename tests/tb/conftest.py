"""Fixtures for TB engine tests."""

import pytest

from repro.app.workload import Action, ActionKind, WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system
from repro.sim.clock import ClockConfig
from repro.sim.network import NetworkConfig
from repro.tb.blocking import TbConfig


def action(kind=ActionKind.SEND_INTERNAL, stimulus=7, index=10_000_000):
    return Action(index=index, kind=kind, gap=0.0, stimulus=stimulus)


INTERNAL = ActionKind.SEND_INTERNAL
EXTERNAL = ActionKind.SEND_EXTERNAL


@pytest.fixture
def tb_system():
    """Factory: a three-process system with real TB timers and an
    otherwise-quiet workload, driven manually."""
    def build(scheme=Scheme.COORDINATED, seed=4, interval=10.0,
              horizon=500.0, delta=0.02, **overrides):
        quiet = WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                               step_rate=0.001, horizon=horizon)
        config = SystemConfig(
            scheme=scheme, seed=seed, horizon=horizon,
            clock=overrides.pop("clock", ClockConfig(delta=delta, rho=1e-6)),
            network=overrides.pop("network",
                                  NetworkConfig(t_min=0.002, t_max=0.02)),
            tb=overrides.pop("tb", TbConfig(interval=interval)),
            workload1=overrides.pop("workload1", quiet),
            workload2=overrides.pop("workload2", quiet),
            stable_history=100,
            **overrides)
        system = build_system(config)
        system.start()
        return system
    return build


def run_to(system, t):
    system.sim.run(until=t)
