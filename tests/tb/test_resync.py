"""Unit tests for the timer resynchronization service."""

from repro.sim.clock import ClockConfig, DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.tb.resync import ResyncService


def make_service(n_clocks=3, cooldown=1.0, delta=0.5, rho=1e-4, seed=6):
    sim = Simulator()
    reg = RngRegistry(seed)
    config = ClockConfig(delta=delta, rho=rho)
    clocks = [DriftingClock(sim, config, reg, f"c{i}") for i in range(n_clocks)]
    return sim, clocks, ResyncService(sim, clocks, cooldown=cooldown)


class TestRequest:
    def test_resyncs_all_clocks(self):
        sim, clocks, service = make_service()
        sim.schedule_at(1000.0, lambda: None)
        sim.run()
        assert service.request()
        assert all(c.elapsed_since_resync() == 0.0 for c in clocks)

    def test_bounds_pairwise_skew_after_resync(self):
        sim, clocks, service = make_service(delta=0.5)
        sim.schedule_at(10_000.0, lambda: None)
        sim.run()
        service.request()
        readings = [c.now() for c in clocks]
        assert max(readings) - min(readings) <= 0.5 + 1e-9

    def test_cooldown_coalesces(self):
        sim, _, service = make_service(cooldown=5.0)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert service.request()
        assert not service.request()
        assert service.resync_count == 1
        assert service.coalesced_count == 1

    def test_request_after_cooldown_runs(self):
        sim, _, service = make_service(cooldown=5.0)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        service.request()
        sim.schedule_at(20.0, lambda: None)
        sim.run()
        assert service.request()
        assert service.resync_count == 2

    def test_register_adds_clock(self):
        sim, clocks, service = make_service(n_clocks=1)
        extra = DriftingClock(sim, ClockConfig(delta=0.5, rho=1e-4),
                              RngRegistry(9), "extra")
        service.register(extra)
        sim.schedule_at(100.0, lambda: None)
        sim.run()
        service.request()
        assert extra.elapsed_since_resync() == 0.0

    def test_max_elapsed_since_resync(self):
        sim, _, service = make_service()
        sim.schedule_at(42.0, lambda: None)
        sim.run()
        assert service.max_elapsed_since_resync() == 42.0
