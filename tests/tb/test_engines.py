"""Unit tests for the TB engine lifecycle (original and adapted)."""

import pytest

from conftest import EXTERNAL, INTERNAL, action, run_to

from repro.coordination.scheme import Scheme
from repro.messages.message import Message, passed_at_notification
from repro.types import MessageKind, ProcessId, StableContent


class TestGenesisAndTimers:
    def test_genesis_checkpoint_at_start(self, tb_system):
        system = tb_system()
        for proc in system.process_list():
            genesis = proc.node.stable.at_epoch(proc.process_id, 0)
            assert genesis is not None
            assert genesis.meta.get("genesis")

    def test_establishments_every_interval(self, tb_system):
        system = tb_system(interval=10.0)
        run_to(system, 51.0)
        for proc in system.process_list():
            assert proc.hardware.ndc == 5

    def test_timers_approximately_aligned(self, tb_system):
        system = tb_system(interval=10.0, delta=0.02)
        run_to(system, 35.0)
        starts = [rec.time for rec in system.trace.records("tb.establish.start")
                  if rec.data["epoch"] == 2]
        assert len(starts) == 3
        assert max(starts) - min(starts) <= 0.02 + 1e-6

    def test_epoch_counts_completions(self, tb_system):
        system = tb_system(interval=10.0)
        run_to(system, 10.001)  # timers expired, blocking in progress
        assert all(p.hardware.ndc == 0 for p in system.process_list())
        run_to(system, 11.0)
        assert all(p.hardware.ndc == 1 for p in system.process_list())


class TestAdaptedContents:
    def test_clean_process_saves_current_state(self, tb_system):
        system = tb_system()
        run_to(system, 11.0)
        ckpt = system.peer.node.stable.at_epoch(system.peer.process_id, 1)
        assert ckpt.content is StableContent.CURRENT_STATE

    def test_dirty_process_copies_volatile(self, tb_system):
        system = tb_system()
        system.active.software.on_send_internal(action(INTERNAL))
        run_to(system, 11.0)
        peer_ckpt = system.peer.node.stable.at_epoch(system.peer.process_id, 1)
        assert peer_ckpt.content is StableContent.VOLATILE_COPY
        volatile = system.peer.volatile_checkpoint()
        assert peer_ckpt.work_done == volatile.work_done

    def test_pseudo_bit_drives_active_contents(self, tb_system):
        system = tb_system()
        system.active.software.on_send_internal(action(INTERNAL))
        run_to(system, 11.0)
        active_ckpt = system.active.node.stable.at_epoch(
            system.active.process_id, 1)
        assert active_ckpt.content is StableContent.VOLATILE_COPY

    def test_validated_active_saves_current(self, tb_system):
        system = tb_system()
        system.active.software.on_send_internal(action(INTERNAL))
        system.active.software.on_send_external(action(EXTERNAL))  # AT pass
        run_to(system, 11.0)
        active_ckpt = system.active.node.stable.at_epoch(
            system.active.process_id, 1)
        assert active_ckpt.content is StableContent.CURRENT_STATE


class TestMidBlockingSwap:
    def _enter_blocking_dirty(self, system):
        system.active.software.on_send_internal(action(INTERNAL))
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        peer = system.peer
        assert peer.hardware.in_blocking
        return peer

    def test_swap_on_matching_notification(self, tb_system):
        system = tb_system()
        peer = self._enter_blocking_dirty(system)
        note = passed_at_notification(system.active.process_id,
                                      peer.process_id, msg_sn=1, ndc=0)
        peer.dispatch(note)
        run_to(system, 11.0)
        ckpt = peer.node.stable.at_epoch(peer.process_id, 1)
        assert ckpt.content is StableContent.SWAPPED_TO_CURRENT
        assert peer.counters.get("tb.swapped") == 1

    def test_no_swap_when_disabled(self, tb_system):
        from repro.tb.blocking import TbConfig
        system = tb_system(scheme=Scheme.COORDINATED_NO_SWAP)
        peer = self._enter_blocking_dirty(system)
        note = passed_at_notification(system.active.process_id,
                                      peer.process_id, msg_sn=1, ndc=0)
        peer.dispatch(note)
        run_to(system, 11.0)
        ckpt = peer.node.stable.at_epoch(peer.process_id, 1)
        assert ckpt.content is StableContent.VOLATILE_COPY

    def test_mismatched_notification_does_not_swap(self, tb_system):
        system = tb_system()
        peer = self._enter_blocking_dirty(system)
        note = passed_at_notification(system.active.process_id,
                                      peer.process_id, msg_sn=1, ndc=1)
        peer.dispatch(note)
        run_to(system, 11.0)
        ckpt = peer.node.stable.at_epoch(peer.process_id, 1)
        assert ckpt.content is StableContent.VOLATILE_COPY


class TestBuffering:
    def test_adapted_buffers_app_but_not_notifications(self, tb_system):
        system = tb_system()
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        peer = system.peer
        assert peer.hardware.in_blocking
        app = Message(kind=MessageKind.INTERNAL, sender=ProcessId("P1_act"),
                      receiver=peer.process_id)
        note = passed_at_notification(ProcessId("P1_act"), peer.process_id,
                                      msg_sn=1, ndc=0)
        assert peer.hardware.should_buffer(app)
        assert not peer.hardware.should_buffer(note)

    def test_original_buffers_everything(self, tb_system):
        system = tb_system(scheme=Scheme.NAIVE)
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        peer = system.peer
        assert peer.hardware.in_blocking
        note = passed_at_notification(ProcessId("P1_act"), peer.process_id,
                                      msg_sn=1, ndc=None)
        assert peer.hardware.should_buffer(note)

    def test_buffered_messages_processed_at_release(self, tb_system):
        system = tb_system()
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        assert system.peer.hardware.in_blocking
        system.active.software.on_send_internal(action(INTERNAL))
        run_to(system, system.sim.now + 0.021)  # delivered mid-blocking
        assert system.peer.buffered_count() == 1
        assert system.peer.counters.get("recv.applied") == 0
        run_to(system, 11.0)
        assert system.peer.buffered_count() == 0
        assert system.peer.counters.get("recv.applied") == 1

    def test_own_sends_deferred_during_blocking(self, tb_system):
        system = tb_system()
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        assert system.peer.hardware.in_blocking
        system.peer.perform_action(action(INTERNAL))
        assert system.peer.counters.get("sent.internal") == 0
        assert system.peer.counters.get("blocked.deferred_send") == 1
        run_to(system, 11.0)
        assert system.peer.counters.get("sent.internal") == 1


class TestCrashInteraction:
    def test_crash_mid_blocking_aborts_establishment(self, tb_system):
        system = tb_system()
        run_to(system, 10.0)
        run_to(system, system.sim.now + 0.001)
        assert system.peer.hardware.in_blocking
        system.nodes["N2"].crash()
        run_to(system, 11.0)
        assert system.trace.count("tb.establish.abort") >= 1
        assert system.peer.node.stable.at_epoch(system.peer.process_id, 1) is None

    def test_stop_prevents_further_establishments(self, tb_system):
        system = tb_system()
        run_to(system, 11.0)
        system.peer.hardware.stop()
        run_to(system, 31.0)
        assert system.peer.hardware.ndc == 1


class TestResyncGuard:
    def test_resync_requested_when_blocking_grows(self, tb_system):
        from repro.sim.clock import ClockConfig
        # Drift large enough that tau(1) outgrows 25% of a 10 s interval
        # within a few intervals: the Fig. 5 guard must fire.
        system = tb_system(clock=ClockConfig(delta=1.0, rho=0.02),
                           horizon=200.0)
        run_to(system, 100.0)
        assert system.resync is not None
        assert system.resync.resync_count >= 1

    def test_no_resync_with_tight_clocks(self, tb_system):
        system = tb_system(horizon=100.0)
        run_to(system, 100.0)
        assert system.resync.resync_count == 0
