"""Unit tests for the blocking-period formulas and TB configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import ClockConfig
from repro.sim.network import NetworkConfig
from repro.tb.blocking import (
    TbConfig,
    blocking_period,
    message_delay_term,
    worst_case_blocking,
)

CLOCK = ClockConfig(delta=0.1, rho=1e-5)
NET = NetworkConfig(t_min=0.01, t_max=0.05)


class TestConfig:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ConfigurationError):
            TbConfig(interval=0.0)

    def test_rejects_bad_resync_fraction(self):
        with pytest.raises(ConfigurationError):
            TbConfig(resync_limit_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TbConfig(resync_limit_fraction=1.5)

    def test_defaults_enable_everything(self):
        config = TbConfig()
        assert config.swap_on_confidence_change
        assert config.blocking_enabled
        assert config.save_unacked


class TestDelayTerm:
    def test_dirty_uses_tmax(self):
        assert message_delay_term(1, NET) == pytest.approx(0.05)

    def test_clean_uses_negative_tmin(self):
        assert message_delay_term(0, NET) == pytest.approx(-0.01)


class TestBlockingPeriod:
    def test_clean_formula(self):
        # tau(0) = delta + 2*rho*t - t_min
        assert blocking_period(0, CLOCK, 0.0, NET) == pytest.approx(0.09)

    def test_dirty_formula(self):
        # tau(1) = delta + 2*rho*t + t_max
        assert blocking_period(1, CLOCK, 0.0, NET) == pytest.approx(0.15)

    def test_drift_term_grows_with_elapsed(self):
        short = blocking_period(1, CLOCK, 0.0, NET)
        long = blocking_period(1, CLOCK, 10_000.0, NET)
        assert long == pytest.approx(short + 2 * 1e-5 * 10_000.0)

    def test_floor_applies(self):
        assert blocking_period(0, ClockConfig(delta=0.0, rho=0.0), 0.0, NET,
                               floor=0.03) == 0.03

    def test_never_negative(self):
        tiny = ClockConfig(delta=0.001, rho=0.0)
        assert blocking_period(0, tiny, 0.0, NET) == 0.0

    def test_dirty_exceeds_clean_by_tmax_plus_tmin(self):
        gap = (blocking_period(1, CLOCK, 5.0, NET)
               - blocking_period(0, CLOCK, 5.0, NET))
        assert gap == pytest.approx(NET.t_max + NET.t_min)

    def test_worst_case_is_dirty(self):
        assert worst_case_blocking(CLOCK, 7.0, NET) == \
            blocking_period(1, CLOCK, 7.0, NET)
