"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("scenarios", "fig7", "table1", "overhead",
                        "ablations", "demo", "timeline", "report",
                        "snapshot-stats", "bench-kernel", "bench-warmstart",
                        "bench-fabric", "audit", "live-demo",
                        "live-crosscheck"):
            args = parser.parse_args([command])
            assert callable(args.fn)

    def test_audit_flags(self):
        args = build_parser().parse_args(
            ["audit", "--scheme", "naive", "--seed", "3", "--schedules",
             "50", "--horizon", "400", "--workers", "2", "--shrink",
             "--out", "a.json", "--expect-violation"])
        assert args.scheme == "naive"
        assert args.seed == 3
        assert args.schedules == 50
        assert args.horizon == 400.0
        assert args.workers == 2
        assert args.shrink
        assert args.out == "a.json"
        assert args.expect_violation
        assert not args.expect_clean

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.scheme == "coordinated"
        assert args.schedules == 120
        assert not args.shrink
        assert not args.warmstart
        assert args.out is None
        assert args.replay is None
        assert args.mutation is None

    def test_audit_warmstart_flag(self):
        args = build_parser().parse_args(
            ["audit", "--scheme", "naive", "--warmstart", "--shrink"])
        assert args.warmstart
        assert args.shrink

    def test_audit_flock_flags(self):
        args = build_parser().parse_args(
            ["audit", "--scheme", "naive", "--flock", "--fork-batch", "16"])
        assert args.flock
        assert args.fork_batch == 16

    def test_audit_flock_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert not args.flock
        assert args.fork_batch == 32

    def test_bench_warmstart_flags(self):
        args = build_parser().parse_args(
            ["bench-warmstart", "--horizon", "450",
             "--json", "out.json", "--golden", "g.json"])
        assert args.horizon == 450.0
        assert args.json == "out.json"
        assert args.golden == "g.json"

    def test_bench_warmstart_defaults(self):
        args = build_parser().parse_args(["bench-warmstart"])
        assert args.horizon is None
        assert args.json is None
        assert args.golden is None

    def test_audit_fabric_flags(self):
        args = build_parser().parse_args(
            ["audit", "--fabric", "2", "--journal", "j.jsonl",
             "--cas-dir", "/tmp/cas"])
        assert args.fabric == 2
        assert args.journal == "j.jsonl"
        assert args.cas_dir == "/tmp/cas"

    def test_audit_fabric_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.fabric is None
        assert args.journal is None
        assert args.cas_dir is None

    def test_bench_fabric_flags(self):
        args = build_parser().parse_args(
            ["bench-fabric", "--schedules", "16", "--horizon", "300",
             "--workers", "3", "--json", "out.json"])
        assert args.schedules == 16
        assert args.horizon == 300.0
        assert args.workers == 3
        assert args.json == "out.json"

    def test_bench_fabric_defaults(self):
        args = build_parser().parse_args(["bench-fabric"])
        assert args.schedules is None
        assert args.horizon is None
        assert args.workers is None
        assert args.json is None

    def test_fabric_supervisor_flags(self):
        args = build_parser().parse_args(
            ["fabric-supervisor", "--cas-dir", "/tmp/cas", "--flock",
             "--port", "0", "--shard-size", "8", "--spawn-workers", "2",
             "--journal", "j.jsonl", "--out", "a.json"])
        assert args.cas_dir == "/tmp/cas"
        assert args.flock
        assert args.port == 0
        assert args.shard_size == 8
        assert args.spawn_workers == 2
        assert args.journal == "j.jsonl"
        assert args.out == "a.json"
        assert callable(args.fn)

    def test_fabric_supervisor_requires_cas_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fabric-supervisor"])

    def test_fabric_worker_flags(self):
        args = build_parser().parse_args(
            ["fabric-worker", "--connect", "hostA:7707",
             "--cas-dir", "/tmp/cas", "--name", "w7", "--once",
             "--connect-timeout", "5"])
        assert args.connect == "hostA:7707"
        assert args.cas_dir == "/tmp/cas"
        assert args.name == "w7"
        assert args.once
        assert args.connect_timeout == 5.0
        assert callable(args.fn)

    def test_fabric_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fabric-worker", "--cas-dir", "/x"])

    def test_audit_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--scheme", "mdcd-only"])

    def test_audit_rejects_unknown_mutation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--mutation", "bogus"])

    def test_snapshot_stats_flags(self):
        args = build_parser().parse_args(
            ["snapshot-stats", "--codec", "zpickle", "--full-snapshots",
             "--horizon", "500", "--seed", "3"])
        assert args.codec == "zpickle"
        assert args.full_snapshots
        assert args.horizon == 500.0
        assert args.seed == 3

    def test_snapshot_stats_rejects_unknown_codec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot-stats", "--codec", "bogus"])

    def test_fig7_full_flag(self):
        args = build_parser().parse_args(["fig7", "--full"])
        assert args.full

    def test_fig7_campaign_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--seed", "123", "--replications", "5",
             "--workers", "4", "--no-cache"])
        assert args.seed == 123
        assert args.replications == 5
        assert args.workers == 4
        assert args.no_cache

    def test_fig7_campaign_flags_default_off(self):
        args = build_parser().parse_args(["fig7"])
        assert args.seed is None
        assert args.replications is None
        assert args.workers is None
        assert not args.no_cache

    def test_overhead_campaign_flags(self):
        args = build_parser().parse_args(
            ["overhead", "--seed", "9", "--replications", "3",
             "--workers", "2"])
        assert args.seed == 9
        assert args.replications == 3
        assert args.workers == 2

    def test_overhead_has_no_cache_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overhead", "--no-cache"])

    def test_ablations_campaign_flags(self):
        args = build_parser().parse_args(
            ["ablations", "--seed", "4", "--replications", "2",
             "--workers", "8", "--no-cache"])
        assert args.seed == 4
        assert args.replications == 2
        assert args.workers == 8
        assert args.no_cache

    def test_table1_workers_flag(self):
        args = build_parser().parse_args(["table1", "--workers", "2"])
        assert args.workers == 2

    def test_bench_kernel_flags(self):
        args = build_parser().parse_args(
            ["bench-kernel", "--quick", "--events", "5000",
             "--horizon", "2000", "--repeats", "2", "--json", "out.json"])
        assert args.quick
        assert args.events == 5000
        assert args.horizon == 2000.0
        assert args.repeats == 2
        assert args.json == "out.json"

    def test_bench_kernel_defaults(self):
        args = build_parser().parse_args(["bench-kernel"])
        assert not args.quick
        assert args.events is None
        assert args.horizon is None
        assert args.json is None

    def test_seed_requires_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--seed", "xyz"])

    def test_demo_seed(self):
        args = build_parser().parse_args(["demo", "--seed", "9"])
        assert args.seed == 9

    def test_timeline_options(self):
        args = build_parser().parse_args(
            ["timeline", "--scheme", "mdcd-only", "--width", "60"])
        assert args.scheme == "mdcd-only" and args.width == 60

    def test_timeline_rejects_unknown_scheme(self):
        import pytest
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline", "--scheme", "bogus"])

    def test_live_demo_flags(self):
        args = build_parser().parse_args(
            ["live-demo", "--seed", "4", "--tb-interval", "0.5",
             "--heartbeat", "0.1", "--timeout", "0.5",
             "--deadline", "60", "--workdir", "/tmp/x"])
        assert args.seed == 4
        assert args.tb_interval == 0.5
        assert args.heartbeat == 0.1
        assert args.timeout == 0.5
        assert args.deadline == 60.0
        assert args.workdir == "/tmp/x"

    def test_live_demo_defaults(self):
        args = build_parser().parse_args(["live-demo"])
        assert args.seed == 0
        assert args.tb_interval == 0.8
        assert args.workdir is None

    def test_live_crosscheck_flags(self):
        args = build_parser().parse_args(
            ["live-crosscheck", "--seed", "12", "--smoke",
             "--workdir", "/tmp/y"])
        assert args.seed == 12
        assert args.smoke
        assert args.workdir == "/tmp/y"

    def test_live_crosscheck_defaults(self):
        args = build_parser().parse_args(["live-crosscheck"])
        assert args.seed == 0
        assert not args.smoke
        assert args.workdir is None


class TestExecution:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "shadow takeover: True" in out
        assert "violations: none" in out

    def test_table1_prints_table(self, capsys):
        assert main(["table1"]) == 0
        assert "adapted TB" in capsys.readouterr().out

    def test_overhead_prints_table(self, capsys):
        assert main(["overhead"]) == 0
        assert "coordinated" in capsys.readouterr().out

    def test_overhead_seed_override_changes_nothing_structural(self, capsys):
        assert main(["overhead", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "coordinated" in out and "write-through" in out

    def test_fig7_with_campaign_flags(self, capsys, tmp_path, monkeypatch):
        import dataclasses
        import repro.experiments.figure7 as fig7mod
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        real_run = fig7mod.run_figure7

        seen = {}

        def tiny_run(config, **kwargs):
            seen["config"] = config
            seen["kwargs"] = kwargs
            config = dataclasses.replace(config, internal_rates=(100,),
                                         horizon=500.0)
            return real_run(config, **kwargs)

        monkeypatch.setattr(fig7mod, "run_figure7", tiny_run)
        assert main(["fig7", "--seed", "7", "--replications", "2",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        # The CLI flags reached the harness...
        assert seen["config"].seed == 7
        assert seen["config"].replications == 2
        assert seen["kwargs"]["workers"] == 2
        assert seen["kwargs"]["cache"] is not None
        # ...and the campaign cells landed in the cache directory.
        assert list(tmp_path.glob("*.json"))


    def test_bench_kernel_quick_writes_record(self, capsys, tmp_path):
        import json
        out = tmp_path / "BENCH_kernel.json"
        assert main(["bench-kernel", "--quick", "--events", "4000",
                     "--horizon", "1500", "--json", str(out)]) == 0
        assert "determinism" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["bench"] == "kernel"
        assert document["trajectory"]
        assert "recorded_at" in document["trajectory"][-1]
        record = document["latest"]
        assert record["determinism"]["all"]
        assert set(record["microbench"]) == {"churn", "cancel_storm"}
        for bench in record["microbench"].values():
            assert bench["identical_execution"]
            assert set(bench["kernels"]) == {"legacy", "current", "pooled"}

    def test_snapshot_stats_prints_section_table(self, capsys):
        assert main(["snapshot-stats", "--horizon", "600",
                     "--codec", "zpickle"]) == 0
        out = capsys.readouterr().out
        assert "snapshot section" in out
        for section in ("app", "mdcd", "journals", "msg_log", "counters"):
            assert section in out

    def test_timeline_renders(self, capsys):
        assert main(["timeline", "--scheme", "mdcd-only", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "P1_act" in out and "|" in out

    def test_audit_conflicting_expectations(self, capsys):
        assert main(["audit", "--expect-violation", "--expect-clean"]) == 2

    def test_audit_naive_finds_and_shrinks(self, capsys, tmp_path):
        import json
        out = tmp_path / "naive.json"
        code = main(["audit", "--scheme", "naive", "--seed", "7",
                     "--schedules", "12", "--shrink", "--out", str(out),
                     "--expect-violation"])
        assert code == 0
        text = capsys.readouterr().out
        assert "VIOLATION" in text
        assert "SHRUNK" in text
        artifact = json.loads(out.read_text())
        assert artifact["violations"]
        assert artifact["shrunk"]

    def test_audit_warmstart_finds_violations(self, capsys):
        assert main(["audit", "--scheme", "naive", "--seed", "7",
                     "--schedules", "40", "--warmstart",
                     "--expect-violation"]) == 0
        out = capsys.readouterr().out
        assert "mode=warm" in out
        assert "warm" in out and "image sets" in out
        assert "VIOLATION" in out

    def test_audit_flock_finds_violations(self, capsys):
        assert main(["audit", "--scheme", "naive", "--seed", "7",
                     "--schedules", "40", "--flock",
                     "--expect-violation"]) == 0
        out = capsys.readouterr().out
        assert "mode=flock" in out
        assert "forked" in out and "templates" in out
        assert "VIOLATION" in out

    def test_bench_warmstart_reduced_writes_record(self, capsys, tmp_path):
        import json
        out = tmp_path / "BENCH_warmstart.json"
        assert main(["bench-warmstart", "--horizon", "300",
                     "--json", str(out)]) == 0
        assert "flock" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["bench"] == "warmstart"
        assert "flock_speedup" in document["trajectory"][-1]
        record = document["latest"]
        assert record["equivalent"]
        # The per-phase timing telemetry is surfaced in the record:
        # decode/run for the warm path, build/fork/run for flock.
        warm_stats = record["campaign"]["warmstart"]
        for field in ("decode_seconds", "run_seconds", "build_seconds"):
            assert field in warm_stats, field
        flock = record["flock"]
        assert flock["violations_identical"] and flock["digests_identical"]
        for field in ("fork_seconds", "run_seconds", "advance_seconds",
                      "decode_seconds", "build_seconds",
                      "dump_encode_seconds", "forks", "dumps"):
            assert field in flock["flock_stats"], field

    def test_bench_fabric_reduced_writes_record(self, capsys, tmp_path):
        import json
        out = tmp_path / "BENCH_fabric.json"
        assert main(["bench-fabric", "--schedules", "8", "--horizon",
                     "240", "--workers", "2", "--json", str(out)]) == 0
        assert "transfers" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["bench"] == "fabric"
        entry = document["trajectory"][-1]
        assert entry["equivalent"] and entry["transfer_once"]
        record = document["latest"]
        assert record["campaign"]["digests_identical"]
        assert record["transfers"]["second_transfers"] == 0

    def test_audit_fabric_small_campaign_clean(self, capsys, tmp_path):
        assert main(["audit", "--scheme", "coordinated", "--seed", "7",
                     "--schedules", "12", "--fabric", "2",
                     "--journal", str(tmp_path / "j.jsonl"),
                     "--cas-dir", str(tmp_path / "cas"),
                     "--expect-clean"]) == 0
        out = capsys.readouterr().out
        assert "fabric" in out
        assert "PASS" in out

    def test_audit_coordinated_small_campaign_clean(self, capsys):
        assert main(["audit", "--scheme", "coordinated", "--seed", "7",
                     "--schedules", "30", "--expect-clean"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_audit_replay_artifact(self, capsys, tmp_path):
        out = tmp_path / "naive.json"
        assert main(["audit", "--scheme", "naive", "--seed", "7",
                     "--schedules", "12", "--shrink", "--out", str(out),
                     "--expect-violation"]) == 0
        capsys.readouterr()
        assert main(["audit", "--replay", str(out),
                     "--expect-violation"]) == 0
        text = capsys.readouterr().out
        assert "VIOLATES" in text

    def test_live_crosscheck_smoke_equivalent(self, capsys, tmp_path):
        assert main(["live-crosscheck", "--smoke", "--seed", "5",
                     "--workdir", str(tmp_path / "live")]) == 0
        out = capsys.readouterr().out
        assert "equivalent: True" in out
        assert "P1_act" in out

    def test_live_demo_survives_kill9(self, capsys, tmp_path):
        import json
        workdir = tmp_path / "demo"
        assert main(["live-demo", "--seed", "2", "--tb-interval", "0.5",
                     "--heartbeat", "0.1", "--timeout", "0.5",
                     "--deadline", "60", "--workdir", str(workdir)]) == 0
        out = capsys.readouterr().out
        assert "demo PASSED" in out
        assert "shadow takeover" in out
        summary = json.loads((workdir / "demo_summary.json").read_text())
        assert summary["ok"]
        assert summary["takeover"]["reason"] == "heartbeat-timeout"
        # Decision artifacts were collected for every process.
        for name in ("P1_act", "P1_sdw", "P2"):
            assert (workdir / f"decisions_{name}.jsonl").exists()
