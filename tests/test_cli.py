"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("scenarios", "fig7", "table1", "overhead",
                        "ablations", "demo", "timeline", "report"):
            args = parser.parse_args([command])
            assert callable(args.fn)

    def test_fig7_full_flag(self):
        args = build_parser().parse_args(["fig7", "--full"])
        assert args.full

    def test_demo_seed(self):
        args = build_parser().parse_args(["demo", "--seed", "9"])
        assert args.seed == 9

    def test_timeline_options(self):
        args = build_parser().parse_args(
            ["timeline", "--scheme", "mdcd-only", "--width", "60"])
        assert args.scheme == "mdcd-only" and args.width == 60

    def test_timeline_rejects_unknown_scheme(self):
        import pytest
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline", "--scheme", "bogus"])


class TestExecution:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "shadow takeover: True" in out
        assert "violations: none" in out

    def test_table1_prints_table(self, capsys):
        assert main(["table1"]) == 0
        assert "adapted TB" in capsys.readouterr().out

    def test_overhead_prints_table(self, capsys):
        assert main(["overhead"]) == 0
        assert "coordinated" in capsys.readouterr().out


    def test_timeline_renders(self, capsys):
        assert main(["timeline", "--scheme", "mdcd-only", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "P1_act" in out and "|" in out
