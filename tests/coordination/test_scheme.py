"""Unit tests for the system builder."""

import pytest

from repro.coordination.scheme import Scheme, System, SystemConfig, build_system
from repro.mdcd.modified import ModifiedActiveEngine
from repro.mdcd.original import OriginalActiveEngine
from repro.coordination.naive import build_naive_system
from repro.coordination.write_through import WriteThroughEngine
from repro.tb.adapted import AdaptedTbEngine
from repro.tb.original import OriginalTbEngine
from repro.types import Role


class TestSchemeEnum:
    def test_stable_checkpoint_capability(self):
        assert not Scheme.MDCD_ONLY.has_stable_checkpoints
        for scheme in (Scheme.WRITE_THROUGH, Scheme.NAIVE,
                       Scheme.COORDINATED, Scheme.COORDINATED_NO_SWAP):
            assert scheme.has_stable_checkpoints

    def test_modified_mdcd_usage(self):
        assert Scheme.COORDINATED.uses_modified_mdcd
        assert Scheme.COORDINATED_NO_SWAP.uses_modified_mdcd
        assert not Scheme.NAIVE.uses_modified_mdcd


class TestWiring:
    def test_coordinated_uses_modified_and_adapted(self):
        system = build_system(SystemConfig(scheme=Scheme.COORDINATED))
        assert isinstance(system.active.software, ModifiedActiveEngine)
        assert isinstance(system.active.hardware, AdaptedTbEngine)
        assert system.resync is not None
        assert system.hw_recovery is not None

    def test_naive_uses_original_both(self):
        system = build_naive_system()
        assert isinstance(system.active.software, OriginalActiveEngine)
        assert isinstance(system.active.hardware, OriginalTbEngine)

    def test_write_through_engine(self):
        system = build_system(SystemConfig(scheme=Scheme.WRITE_THROUGH))
        assert isinstance(system.active.software, OriginalActiveEngine)
        assert isinstance(system.active.hardware, WriteThroughEngine)
        assert system.resync is None

    def test_mdcd_only_has_no_hardware_engine(self):
        system = build_system(SystemConfig(scheme=Scheme.MDCD_ONLY))
        assert system.active.hardware is None
        assert system.hw_recovery is None

    def test_no_swap_scheme_disables_swap(self):
        system = build_system(SystemConfig(scheme=Scheme.COORDINATED_NO_SWAP))
        assert not system.active.hardware.config.swap_on_confidence_change

    def test_three_distinct_nodes(self):
        system = build_system(SystemConfig())
        nodes = {proc.node.node_id for proc in system.process_list()}
        assert len(nodes) == 3

    def test_role_accessors(self):
        system = build_system(SystemConfig())
        assert system.active.role is Role.ACTIVE_1
        assert system.shadow.role is Role.SHADOW_1
        assert system.peer.role is Role.PEER_2

    def test_recovery_manager_installed(self):
        system = build_system(SystemConfig())
        for proc in system.process_list():
            assert proc.recovery_manager is system.sw_recovery


class TestConfig:
    def test_with_scheme_keeps_everything_else(self):
        base = SystemConfig(seed=9, horizon=123.0)
        other = base.with_scheme(Scheme.NAIVE)
        assert other.scheme is Scheme.NAIVE
        assert other.seed == 9 and other.horizon == 123.0

    def test_build_system_overrides(self):
        system = build_system(seed=77, scheme=Scheme.NAIVE)
        assert system.config.seed == 77
        assert system.config.scheme is Scheme.NAIVE


class TestExecution:
    def test_start_is_idempotent(self):
        system = build_system(SystemConfig(horizon=50.0))
        system.start()
        system.start()
        system.run(until=10.0)

    def test_run_defaults_to_horizon(self):
        system = build_system(SystemConfig(horizon=50.0))
        system.run()
        assert system.sim.now == 50.0

    def test_determinism_same_seed(self):
        def run(seed):
            system = build_system(SystemConfig(seed=seed, horizon=800.0))
            system.run()
            return (system.peer.component.state.value,
                    system.sim.events_executed,
                    {str(k): v for k, v in system.peer.counters.as_dict().items()})
        assert run(42) == run(42)

    def test_different_seeds_differ(self):
        def run(seed):
            system = build_system(SystemConfig(seed=seed, horizon=800.0))
            system.run()
            return system.sim.events_executed
        assert run(42) != run(43)

    def test_shadow_tracks_active_computation(self):
        system = build_system(SystemConfig(seed=3, horizon=2000.0))
        system.run()
        # Same version behaviour (no fault), same inputs: identical state.
        assert (system.shadow.component.state.value
                == system.active.component.state.value)
