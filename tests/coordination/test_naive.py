"""Tests for the naive-combination builder and its characteristic
interference (complements the end-to-end Fig. 4 scenarios)."""

from repro.coordination.naive import build_naive_system
from repro.coordination.scheme import Scheme
from repro.mdcd.original import OriginalPeerEngine
from repro.tb.original import OriginalTbEngine
from repro.types import StableContent


class TestBuilder:
    def test_builds_naive_scheme(self):
        system = build_naive_system(seed=3, horizon=100.0)
        assert system.config.scheme is Scheme.NAIVE
        assert isinstance(system.peer.software, OriginalPeerEngine)
        assert isinstance(system.peer.hardware, OriginalTbEngine)

    def test_overrides_cannot_change_scheme(self):
        system = build_naive_system(seed=3, horizon=100.0)
        assert system.config.scheme is Scheme.NAIVE


class TestInterference:
    def test_confidence_oblivious_stable_contents(self):
        """The defining flaw: the original TB saves the *current* state
        even when the dirty bit says it is potentially contaminated."""
        from repro.app.workload import WorkloadConfig
        from repro.coordination.scheme import SystemConfig, build_system
        from repro.tb.blocking import TbConfig
        horizon = 500.0
        system = build_system(SystemConfig(
            scheme=Scheme.NAIVE, seed=5, horizon=horizon,
            tb=TbConfig(interval=20.0),
            workload1=WorkloadConfig(internal_rate=0.2, external_rate=0.002,
                                     step_rate=0.02, horizon=horizon),
            workload2=WorkloadConfig(internal_rate=0.1, external_rate=0.002,
                                     step_rate=0.02, horizon=horizon),
            stable_history=100))
        system.run()
        dirty_current_state = 0
        for proc in system.process_list():
            for ckpt in proc.node.stable.history(proc.process_id):
                assert ckpt.content is StableContent.CURRENT_STATE
                if ckpt.meta.get("dirty_bit") == 1:
                    dirty_current_state += 1
        # With rare validations the system is dirty most of the time:
        # many stable checkpoints captured contaminated-marked states.
        assert dirty_current_state > 10
