"""Unit tests for the write-through baseline."""

from repro.app.faults import HardwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.coordination.scheme import Scheme, SystemConfig, build_system


def build(seed=6, horizon=3000.0, external_rate=0.01):
    config = SystemConfig(
        scheme=Scheme.WRITE_THROUGH, seed=seed, horizon=horizon,
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=external_rate,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.02, external_rate=external_rate,
                                 step_rate=0.01, horizon=horizon))
    return build_system(config)


class TestStableSaves:
    def test_saves_track_validation_events(self):
        system = build()
        system.run()
        validations = (system.active.counters.get("at.pass")
                       + system.peer.counters.get("at.pass"))
        assert validations > 5
        # Every process saves at every validation event (its own AT or
        # a received notification); epochs stay aligned.
        ndcs = {p.hardware.ndc for p in system.process_list()}
        assert max(ndcs) - min(ndcs) <= 1
        assert system.peer.hardware.ndc >= validations - 1

    def test_never_blocks(self):
        system = build()
        system.run()
        for proc in system.process_list():
            assert proc.counters.get("blocked.deferred_send") == 0
            assert not proc.hardware.in_blocking

    def test_save_frequency_scales_with_external_rate(self):
        sparse = build(external_rate=0.002)
        sparse.run()
        dense = build(external_rate=0.02)
        dense.run()
        assert dense.peer.hardware.ndc > 2 * sparse.peer.hardware.ndc


class TestRecovery:
    def test_crash_recovers_from_validation_checkpoint(self):
        system = build()
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=1500.0,
                                              repair_time=1.0))
        system.run()
        assert system.hw_recovery.recoveries == 1
        distances = system.hw_recovery.distances()
        assert len(distances) == 3
        assert all(d >= 0 for d in distances)

    def test_rollback_distance_set_by_validation_gap(self):
        # Rarer validations -> larger expected write-through rollback.
        sparse = build(external_rate=0.002, seed=8)
        sparse.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=2000.0))
        sparse.run()
        dense = build(external_rate=0.05, seed=8)
        dense.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=2000.0))
        dense.run()
        assert (sum(sparse.hw_recovery.distances())
                > sum(dense.hw_recovery.distances()))
