"""Campaign-level tests: the headline audit results.

The naive scheme must *rediscover* the paper's Fig. 4 interference
automatically and shrink it to a minimal counterexample; the
coordinated scheme must survive the same exploration clean.  Campaign
results must be byte-identical regardless of worker count (determinism
is what makes the JSON artifacts replayable).
"""

import pytest

from repro.audit import (
    AuditConfig,
    FaultSchedule,
    artifact_schedules,
    audit_schedule,
    read_artifact,
    run_audit,
    write_artifact,
)

pytestmark = pytest.mark.audit


@pytest.fixture(scope="module")
def naive_report():
    return run_audit(AuditConfig(scheme="naive", seed=7, schedules=40),
                     shrink=True)


class TestNaiveRediscoversFig4:
    def test_violations_found(self, naive_report):
        assert naive_report.violations
        assert not naive_report.errors

    def test_fig4_shape(self, naive_report):
        # At least one violation is the Fig. 4 coincident-fault shape:
        # a software fault plus a crash, caught by the consistency or
        # ground-truth oracle.
        kinds = {v["kind"]
                 for entry in naive_report.violations
                 for finding in entry["findings"]
                 for v in finding["violations"]}
        assert kinds & {"orphan-message", "undetected-contamination",
                        "validity-mismatch"}

    def test_every_violation_shrunk_minimal(self, naive_report):
        assert len(naive_report.shrunk) == len(naive_report.violations)
        for entry in naive_report.shrunk:
            shrunk = FaultSchedule.from_dict(entry["schedule"])
            assert shrunk.fault_count <= 3
            assert shrunk.origin == "shrunk"

    def test_shrunk_schedules_still_violate_on_replay(self, naive_report):
        config = naive_report.config
        # Replaying a few shrunk schedules (each is one fast run).
        for entry in naive_report.shrunk[:3]:
            shrunk = FaultSchedule.from_dict(entry["schedule"])
            assert audit_schedule(config, shrunk, fail_fast=True)


class TestCoordinatedSurvives:
    def test_short_campaign_clean(self):
        report = run_audit(AuditConfig(scheme="coordinated", seed=7,
                                       schedules=120))
        assert report.clean, report.violations or report.errors

    @pytest.mark.slow
    def test_thousand_schedules_clean(self):
        report = run_audit(AuditConfig(scheme="coordinated", seed=7,
                                       schedules=1000), workers=4)
        assert report.clean, report.violations or report.errors

    @pytest.mark.slow
    def test_no_swap_variant_clean(self):
        report = run_audit(AuditConfig(scheme="coordinated-no-swap", seed=7,
                                       schedules=200), workers=4)
        assert report.clean, report.violations or report.errors


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        config = AuditConfig(scheme="naive", seed=11, schedules=20)
        serial = run_audit(config, workers=1)
        parallel = run_audit(config, workers=4)
        assert serial.violations == parallel.violations
        assert serial.errors == parallel.errors


class TestArtifacts:
    def test_artifact_round_trip(self, naive_report, tmp_path):
        path = tmp_path / "naive.json"
        write_artifact(naive_report, str(path))
        restored = read_artifact(str(path))
        assert restored.config == naive_report.config
        assert restored.violations == naive_report.violations
        assert restored.shrunk == naive_report.shrunk

    def test_artifact_schedules_prefer_shrunk(self, naive_report, tmp_path):
        path = tmp_path / "naive.json"
        write_artifact(naive_report, str(path))
        schedules = artifact_schedules(read_artifact(str(path)))
        # Every violator has a shrunk form, so only shrunk schedules
        # come back — all replayable.
        assert len(schedules) == len(naive_report.shrunk)
        assert all(s.origin == "shrunk" for s in schedules)
