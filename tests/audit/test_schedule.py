"""Unit tests for the serializable fault-schedule descriptions."""

import pytest

from repro.audit import CrashSpec, FaultSchedule, SoftwareFaultSpec
from repro.errors import ConfigurationError


def sample_schedule():
    return FaultSchedule(
        label="t:0", system_seed=42,
        software=(SoftwareFaultSpec(activate_at=10.0, deactivate_at=30.0),),
        crashes=(CrashSpec(node_id="N2", crash_at=50.0, repair_time=1.5),),
        overrides=(("clock_delta", 0.5),), origin="boundary")


class TestSerialization:
    def test_dict_round_trip(self):
        sched = sample_schedule()
        assert FaultSchedule.from_dict(sched.to_dict()) == sched

    def test_json_round_trip(self):
        sched = sample_schedule()
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_json_is_canonical(self):
        # sort_keys + sorted overrides: equal schedules, equal bytes.
        a = sample_schedule()
        b = FaultSchedule.from_json(a.to_json())
        assert a.to_json() == b.to_json()

    def test_from_dict_defaults(self):
        sched = FaultSchedule.from_dict({"label": "x", "system_seed": 1})
        assert sched.software == () and sched.crashes == ()
        assert sched.origin == "replay"

    def test_crash_spec_default_repair(self):
        spec = CrashSpec.from_dict({"node_id": "N1a", "crash_at": 3.0})
        assert spec.repair_time == 2.0


class TestValidation:
    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(label="bad", system_seed=1,
                          overrides=(("warp_factor", 9.0),))

    def test_known_overrides_accepted(self):
        for key in ("clock_delta", "clock_rho", "tb_interval"):
            FaultSchedule(label="ok", system_seed=1, overrides=((key, 1.0),))


class TestBehaviour:
    def test_fault_count(self):
        assert sample_schedule().fault_count == 2
        assert FaultSchedule(label="e", system_seed=0).fault_count == 0

    def test_describe_mentions_every_fault(self):
        text = sample_schedule().describe()
        assert "sw@10.00" in text
        assert "crash:N2@50.00" in text
        assert "clock_delta=0.5" in text

    def test_describe_fault_free(self):
        assert "fault-free" in FaultSchedule(label="e", system_seed=0).describe()

    def test_with_faults_changes_origin(self):
        sched = sample_schedule()
        shrunk = sched.with_faults((), sched.crashes, origin="shrunk")
        assert shrunk.software == ()
        assert shrunk.origin == "shrunk"
        assert shrunk.system_seed == sched.system_seed

    def test_arm_injects_every_fault(self):
        class FakeSystem:
            def __init__(self):
                self.software = []
                self.crashes = []

            def inject_software_fault(self, plan):
                self.software.append(plan)

            def inject_crash(self, plan):
                self.crashes.append(plan)

        system = FakeSystem()
        sample_schedule().arm(system)
        assert len(system.software) == 1
        assert len(system.crashes) == 1
        assert system.crashes[0].node_id == "N2"
