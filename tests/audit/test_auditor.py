"""Tests for the online invariant auditor."""

import pytest

from repro.audit import (
    AuditConfig,
    AuditFinding,
    CrashSpec,
    FaultSchedule,
    OnlineAuditor,
    SoftwareFaultSpec,
    audit_schedule,
    build_audit_system,
)
from repro.errors import AuditViolation

#: The first violating schedule the naive seed-7 campaign generates —
#: a coincident software fault + crash of the shadow's node (the
#: paper's Fig. 4 interference, rediscovered by the boundary
#: enumeration and pinned here as a deterministic regression input).
FIG4_SCHEDULE = FaultSchedule(
    label="boundary:coincident:1", system_seed=761983209,
    software=(SoftwareFaultSpec(activate_at=73.54541864228547),),
    crashes=(CrashSpec(node_id="N1b", crash_at=73.79541864228547,
                       repair_time=2.0),),
    origin="boundary")


def naive_config():
    return AuditConfig(scheme="naive", seed=7, schedules=1)


def coordinated_config():
    return AuditConfig(scheme="coordinated", seed=7, schedules=1)


class TestCleanRun:
    def test_coordinated_fault_free_run_is_clean(self):
        system = build_audit_system(
            coordinated_config(),
            FaultSchedule(label="clean", system_seed=11))
        auditor = OnlineAuditor(system)
        system.run()
        auditor.finalize()
        assert auditor.findings == []
        assert auditor.epochs_checked > 5
        assert auditor.live_checks > 0

    def test_finalize_idempotent_and_detaches(self):
        system = build_audit_system(
            coordinated_config(),
            FaultSchedule(label="clean", system_seed=11))
        auditor = OnlineAuditor(system)
        system.run()
        auditor.finalize()
        checked = auditor.epochs_checked
        live = auditor.live_checks
        auditor.finalize()
        assert (auditor.epochs_checked, auditor.live_checks) == (checked, live)

    def test_stats_counters(self):
        system = build_audit_system(
            coordinated_config(),
            FaultSchedule(label="clean", system_seed=11))
        auditor = OnlineAuditor(system)
        system.run()
        auditor.finalize()
        stats = auditor.stats()
        assert stats["findings"] == 0
        assert stats["epochs_checked"] == auditor.epochs_checked


class TestViolationDetection:
    def test_naive_fig4_schedule_violates(self):
        findings = audit_schedule(naive_config(), FIG4_SCHEDULE,
                                  fail_fast=False)
        assert findings
        kinds = {v.kind for f in findings for v in f.violations}
        assert "undetected-contamination" in kinds or "orphan-message" in kinds

    def test_coordinated_survives_the_same_schedule(self):
        findings = audit_schedule(coordinated_config(), FIG4_SCHEDULE,
                                  fail_fast=False)
        assert findings == []

    def test_fail_fast_raises_with_finding_attached(self):
        system = build_audit_system(naive_config(), FIG4_SCHEDULE)
        auditor = OnlineAuditor(system, fail_fast=True)
        with pytest.raises(AuditViolation) as excinfo:
            system.run()
            auditor.finalize()
        assert excinfo.value.finding is auditor.findings[0]
        assert excinfo.value.violations

    def test_finding_attaches_offending_line(self):
        findings = audit_schedule(naive_config(), FIG4_SCHEDULE,
                                  fail_fast=False)
        finding = findings[0]
        assert finding.line  # per-process digest of the violating state
        for summary in finding.line.values():
            assert {"epoch", "content", "dirty_bit",
                    "unacked"} <= set(summary)


class TestAuditFinding:
    def test_dict_round_trip(self):
        findings = audit_schedule(naive_config(), FIG4_SCHEDULE,
                                  fail_fast=False)
        original = findings[0]
        restored = AuditFinding.from_dict(original.to_dict())
        assert restored.time == original.time
        assert restored.hook == original.hook
        assert [v.kind for v in restored.violations] == \
            [v.kind for v in original.violations]

    def test_describe_is_one_line(self):
        findings = audit_schedule(naive_config(), FIG4_SCHEDULE,
                                  fail_fast=False)
        text = findings[0].describe()
        assert "\n" not in text
        assert "t=" in text
