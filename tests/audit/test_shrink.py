"""Tests for the delta-debugging counterexample shrinker.

These drive the shrinker with *synthetic* predicates (no simulation),
so every search-policy property is checked exactly; the end-to-end
"shrunk schedules still violate on replay" property lives in
``tests/properties/test_shrink_props.py`` and the campaign tests.
"""

from repro.audit import (
    CrashSpec,
    FaultSchedule,
    SoftwareFaultSpec,
    shrink_schedule,
)


def schedule_with(n_software=0, n_crashes=0, windows=False):
    software = tuple(
        SoftwareFaultSpec(activate_at=10.0 + 5.0 * i,
                          deactivate_at=(40.0 + 5.0 * i) if windows else None)
        for i in range(n_software))
    crashes = tuple(
        CrashSpec(node_id="N2", crash_at=20.0 + 7.0 * i)
        for i in range(n_crashes))
    return FaultSchedule(label="syn", system_seed=1,
                         software=software, crashes=crashes)


class TestDdmin:
    def test_reduces_to_the_single_culprit(self):
        # Only the second crash matters.
        culprit = schedule_with(n_crashes=4).crashes[1]

        def violates(sched):
            return culprit in sched.crashes

        result = shrink_schedule(schedule_with(n_software=3, n_crashes=4),
                                 violates, horizon=100.0, push_times=False)
        assert result.violated
        assert result.schedule.fault_count == 1
        assert result.schedule.crashes == (culprit,)

    def test_keeps_a_required_pair(self):
        sched = schedule_with(n_software=2, n_crashes=2)
        needed_sw = sched.software[0]
        needed_crash = sched.crashes[1]

        def violates(s):
            return needed_sw in s.software and needed_crash in s.crashes

        result = shrink_schedule(sched, violates, horizon=100.0,
                                 push_times=False)
        assert result.violated
        assert result.schedule.fault_count == 2

    def test_non_violating_input_returned_unshrunk(self):
        sched = schedule_with(n_crashes=3)
        result = shrink_schedule(sched, lambda s: False, horizon=100.0)
        assert not result.violated
        assert result.schedule == sched
        assert result.replays == 1  # only the initial confirmation

    def test_shrunk_origin_marked(self):
        sched = schedule_with(n_crashes=3)
        result = shrink_schedule(sched, lambda s: bool(s.crashes),
                                 horizon=100.0, push_times=False)
        assert result.violated
        assert result.schedule.origin == "shrunk"


class TestWindowSimplification:
    def test_drops_unneeded_deactivation_windows(self):
        sched = schedule_with(n_software=2, windows=True)

        def violates(s):
            return len(s.software) >= 1  # windows never matter

        result = shrink_schedule(sched, violates, horizon=100.0,
                                 push_times=False)
        assert all(spec.deactivate_at is None
                   for spec in result.schedule.software)

    def test_keeps_required_window(self):
        sched = schedule_with(n_software=1, windows=True)

        def violates(s):
            return all(spec.deactivate_at is not None for spec in s.software)

        result = shrink_schedule(sched, violates, horizon=100.0,
                                 push_times=False)
        assert result.violated
        assert result.schedule.software[0].deactivate_at is not None


class TestTimePushing:
    def test_pushes_crash_to_the_latest_violating_time(self):
        sched = schedule_with(n_crashes=1)

        def violates(s):
            return bool(s.crashes) and s.crashes[0].crash_at <= 60.0

        result = shrink_schedule(sched, violates, horizon=100.0,
                                 max_replays=100)
        assert result.violated
        assert 55.0 <= result.schedule.crashes[0].crash_at <= 60.0

    def test_budget_bounds_the_search(self):
        calls = []

        def violates(s):
            calls.append(1)
            return True

        shrink_schedule(schedule_with(n_software=2, n_crashes=3, windows=True),
                        violates, horizon=1000.0, max_replays=7)
        assert len(calls) <= 7


class TestVerdictMemo:
    def test_repeat_candidates_answered_without_replay(self):
        from repro.audit.shrink import _Budget
        calls = []

        def violates(s):
            calls.append(1)
            return bool(s.crashes)

        budget = _Budget(violates, max_replays=10)
        sched = schedule_with(n_crashes=1)
        assert budget.check(sched)
        assert budget.check(sched)  # identical candidate: memo answers
        assert len(calls) == 1
        assert budget.replays == 1
        assert budget.cache_hits == 1

    def test_memo_answers_after_budget_exhaustion(self):
        from repro.audit.shrink import _Budget
        budget = _Budget(lambda s: True, max_replays=1)
        known = schedule_with(n_crashes=1)
        assert budget.check(known)
        assert budget.exhausted
        # A fresh candidate is refused (no budget left)...
        assert not budget.check(schedule_with(n_crashes=2))
        # ...but the paid-for verdict stays available, and free.
        assert budget.check(known)
        assert budget.replays == 1
        assert budget.cache_hits == 1

    def test_distinct_candidates_are_distinct_keys(self):
        from repro.audit.shrink import _Budget
        calls = []

        def violates(s):
            calls.append(1)
            return True

        budget = _Budget(violates, max_replays=10)
        budget.check(schedule_with(n_crashes=1))
        budget.check(schedule_with(n_crashes=2))
        assert len(calls) == 2
        assert budget.cache_hits == 0

    def test_cache_hits_surfaced_in_result(self):
        result = shrink_schedule(schedule_with(n_crashes=2),
                                 lambda s: bool(s.crashes), horizon=100.0,
                                 push_times=False)
        assert result.cache_hits >= 0
        assert result.to_dict()["cache_hits"] == result.cache_hits

    def test_replays_count_only_real_evaluations(self):
        calls = []

        def violates(s):
            calls.append(1)
            return bool(s.crashes) and s.crashes[0].crash_at <= 60.0

        result = shrink_schedule(schedule_with(n_crashes=1), violates,
                                 horizon=100.0, max_replays=100)
        assert result.replays == len(calls)
