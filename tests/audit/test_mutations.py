"""Mutation tests: every planted protocol bug must be flagged.

Each registered mutation disables one protocol obligation on an
otherwise-correct system; the sensitivity campaign (high acceptance-test
rate, short TB interval, clock-skew-extreme schedules — the regime where
the unacked sets and the blocking period are actually load-bearing) must
flag every one of them while the unmutated control stays clean.  This is
the strength check on the audit's oracles: an oracle that misses a
deliberately-broken protocol would also miss a genuine regression.
"""

import pytest

from repro.audit import (
    mutation_names,
    plant_mutation,
    run_audit,
    sensitivity_config,
    sensitivity_schedules,
)
from repro.audit.campaign import build_audit_system
from repro.errors import ConfigurationError

pytestmark = pytest.mark.audit


def run_sensitivity(mutation):
    config = sensitivity_config(mutation=mutation)
    return run_audit(config, schedules=sensitivity_schedules(config))


@pytest.fixture(scope="module")
def control_report():
    return run_sensitivity(None)


class TestRegistry:
    def test_known_mutations(self):
        assert mutation_names() == ["drop-unacked-save", "skip-blocking",
                                    "skip-pseudo-dirty"]

    def test_unknown_mutation_rejected(self):
        config = sensitivity_config(None)
        system = build_audit_system(config, sensitivity_schedules(config)[0])
        with pytest.raises(ConfigurationError):
            plant_mutation(system, "skip-everything")


class TestSensitivity:
    def test_control_is_clean(self, control_report):
        assert control_report.clean, control_report.violations

    @pytest.mark.parametrize("mutation", ["skip-pseudo-dirty",
                                          "drop-unacked-save",
                                          "skip-blocking"])
    def test_mutation_is_flagged(self, mutation):
        report = run_sensitivity(mutation)
        assert report.violations, \
            f"mutation {mutation!r} survived the sensitivity campaign"
        assert not report.errors

    def test_skip_pseudo_dirty_breaks_conservatism(self):
        report = run_sensitivity("skip-pseudo-dirty")
        kinds = {v["kind"]
                 for entry in report.violations
                 for finding in entry["findings"]
                 for v in finding["violations"]}
        # Contaminated current-state checkpoints: either the pseudo-
        # conservatism oracle or the ground-truth oracle fires.
        assert kinds & {"pseudo-contamination", "undetected-contamination",
                        "validity-mismatch"}

    def test_drop_unacked_save_breaks_recoverability(self):
        report = run_sensitivity("drop-unacked-save")
        kinds = {v["kind"]
                 for entry in report.violations
                 for finding in entry["findings"]
                 for v in finding["violations"]}
        assert "unrestorable-message" in kinds
