"""Tests for the adversarial schedule generators."""

import pytest

from repro.audit import (
    AuditConfig,
    boundary_schedules,
    generate_schedules,
    random_schedules,
    reference_timeline,
)


@pytest.fixture(scope="module")
def config():
    """A small campaign config shared by the generator tests."""
    return AuditConfig(scheme="coordinated", seed=3, schedules=24,
                      horizon=150.0, tb_interval=30.0)


@pytest.fixture(scope="module")
def timeline(config):
    return reference_timeline(config)


class TestReferenceTimeline:
    def test_observes_commits(self, config, timeline):
        assert timeline.commits
        # Three processes commit each epoch within the horizon.
        assert len(timeline.commit_times()) >= 2

    def test_observes_blocking_windows(self, timeline):
        assert timeline.blocking
        assert all(start < end for start, end in timeline.blocking)

    def test_deterministic(self, config, timeline):
        again = reference_timeline(config)
        assert again == timeline


class TestBoundarySchedules:
    def test_covers_the_sensitive_instants(self, config, timeline):
        schedules = boundary_schedules(config, timeline)
        categories = {s.label.split(":")[1] for s in schedules}
        assert {"commit-edge", "mid-blocking", "pre-at", "mid-recovery",
                "coincident", "double-crash", "skew"} <= categories

    def test_interleaved_prefix_keeps_diversity(self, config, timeline):
        schedules = boundary_schedules(config, timeline)
        prefix = {s.label.split(":")[1] for s in schedules[:10]}
        assert len(prefix) >= 5

    def test_seeds_are_positional(self, config, timeline):
        schedules = boundary_schedules(config, timeline)
        seeds = [s.system_seed for s in schedules]
        assert len(set(seeds)) == len(seeds)
        # The same call yields the same seeds (resumable campaigns).
        assert seeds == [s.system_seed
                         for s in boundary_schedules(config, timeline)]


class TestRandomSchedules:
    def test_respects_fault_budgets(self, config, timeline):
        for sched in random_schedules(config, 30, timeline=timeline):
            assert len(sched.software) <= config.max_software
            assert len(sched.crashes) <= config.max_crashes

    def test_deterministic_per_index(self, config, timeline):
        a = random_schedules(config, 10, start_index=5, timeline=timeline)
        b = random_schedules(config, 10, start_index=5, timeline=timeline)
        assert a == b

    def test_labels_carry_index(self, config, timeline):
        scheds = random_schedules(config, 3, start_index=7, timeline=timeline)
        assert [s.label for s in scheds] == ["random:7", "random:8", "random:9"]


class TestGenerateSchedules:
    def test_campaign_size_and_split(self, config):
        schedules = generate_schedules(config)
        assert len(schedules) == config.schedules
        origins = {s.origin for s in schedules}
        assert origins == {"boundary", "random"}
        n_boundary = sum(s.origin == "boundary" for s in schedules)
        assert n_boundary == round(config.schedules * config.boundary_fraction)

    def test_reproducible_from_config_alone(self, config):
        assert generate_schedules(config) == generate_schedules(config)

    def test_labels_unique(self, config):
        labels = [s.label for s in generate_schedules(config)]
        assert len(set(labels)) == len(labels)
