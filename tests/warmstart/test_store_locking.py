"""Advisory locking on the shared on-disk image store.

Co-located fabric workers (and sibling coordinators) share one store
directory; ``build_lock`` must serialize image-set builds per prefix so
concurrent missers neither duplicate reference runs nor interleave
writes.  The tests use real processes — advisory ``flock`` is a
kernel-level, cross-process contract, so threads would prove nothing.
"""

import multiprocessing
import os
import time

import pytest

from repro.audit import AuditConfig
from repro.audit.generator import generate_schedules
from repro.warmstart import ImageStore, WarmRunner
from repro.warmstart.store import PrefixKey

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork for cheap process fixtures")


def _hold_lock_and_log(root, key, log_path, tag, hold):
    store = ImageStore(root=root)
    with store.build_lock(key):
        with open(log_path, "a") as fh:  # O_APPEND: atomic small writes
            fh.write(f"{tag}-enter {time.monotonic():.6f}\n")
            fh.flush()
        time.sleep(hold)
        with open(log_path, "a") as fh:
            fh.write(f"{tag}-exit {time.monotonic():.6f}\n")
            fh.flush()


def _build_through_runner(root, barrier, queue):
    config = AuditConfig(scheme="coordinated", seed=11, schedules=4,
                         horizon=200.0)
    schedule = generate_schedules(config)[0]
    runner = WarmRunner(config, store=ImageStore(root=root))
    barrier.wait()  # maximize the chance both processes miss together
    runner.ensure_images(schedule, force=True)
    queue.put(runner.sets_built)


class TestBuildLock:
    def test_critical_sections_are_mutually_exclusive(self, tmp_path):
        key = PrefixKey(config_fingerprint="fp", system_seed=1)
        log = tmp_path / "events.log"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hold_lock_and_log,
                        args=(str(tmp_path / "store"), key, str(log),
                              f"p{i}", 0.15))
            for i in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        events = [line.split()[0] for line in
                  log.read_text().strip().splitlines()]
        # Strict alternation: enter/exit pairs never interleave.
        assert len(events) == 4
        assert events[0].endswith("-enter") and events[1].endswith("-exit")
        assert events[0].split("-")[0] == events[1].split("-")[0]
        assert events[2].endswith("-enter") and events[3].endswith("-exit")
        assert events[2].split("-")[0] == events[3].split("-")[0]

    def test_two_concurrent_writers_build_once(self, tmp_path):
        """The regression: two processes racing the same miss must
        produce exactly one reference build (double-checked locking),
        and the surviving set must be loadable."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        procs = [ctx.Process(target=_build_through_runner,
                             args=(str(tmp_path / "store"), barrier, queue))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        built = [queue.get(timeout=10) for _ in range(2)]
        assert sum(built) == 1, \
            f"exactly one process should build, got {built}"

        config = AuditConfig(scheme="coordinated", seed=11, schedules=4,
                             horizon=200.0)
        schedule = generate_schedules(config)[0]
        store = ImageStore(root=str(tmp_path / "store"))
        key = PrefixKey.for_schedule(config, schedule)
        images = store.get(key)
        assert images, "the surviving image set must load cleanly"

    def test_memory_only_store_lock_is_noop(self):
        store = ImageStore(root=None)
        key = PrefixKey(config_fingerprint="fp", system_seed=2)
        with store.build_lock(key):
            pass  # must not raise, must not create files

    def test_lock_released_after_exception(self, tmp_path):
        store = ImageStore(root=str(tmp_path))
        key = PrefixKey(config_fingerprint="fp", system_seed=3)
        with pytest.raises(RuntimeError):
            with store.build_lock(key):
                raise RuntimeError("build failed")
        # Reacquisition must not deadlock.
        start = time.monotonic()
        with store.build_lock(key):
            pass
        assert time.monotonic() - start < 1.0

    def test_put_tmp_files_are_pid_suffixed(self, tmp_path):
        store = ImageStore(root=str(tmp_path))
        key = PrefixKey(config_fingerprint="fp", system_seed=4)
        store.put(key, [])
        assert store.has(key)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        # The naming contract two racing pids rely on:
        assert str(os.getpid()) not in "".join(
            p.name for p in tmp_path.iterdir())
