"""Warm-runner tests: capture planning, group policy, fallback, and the
resume-equals-cold contract under adversarial simulator states."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit.auditor import OnlineAuditor
from repro.audit.campaign import audit_schedule, build_audit_system
from repro.audit.config import AuditConfig
from repro.audit.generator import reference_timeline
from repro.audit.golden import canonical_trace_lines, trace_digest
from repro.audit.schedule import SYSTEM_NODES, CrashSpec, FaultSchedule, \
    SoftwareFaultSpec
from repro.errors import AuditViolation
from repro.warmstart import (
    MIN_GROUP,
    ImageStore,
    WarmRunner,
    build_image_set,
    capture,
    capture_times,
    divergence_time,
    resume,
    share_schedule_seeds,
)
from repro.warmstart.engine import MAX_IMAGES, MIN_CAPTURE_GAP, \
    _run_one_schedule_warm

SMALL = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                    horizon=120.0, tb_interval=20.0)


@pytest.fixture(scope="module")
def timeline():
    return reference_timeline(SMALL)


def _shared_seed() -> int:
    return share_schedule_seeds(
        SMALL, [FaultSchedule(label="probe", system_seed=0,
                              origin="test")])[0].system_seed


def _crash(label: str, at: float, node: str = "N2") -> FaultSchedule:
    return FaultSchedule(label=label, system_seed=_shared_seed(),
                         crashes=(CrashSpec(node_id=node, crash_at=at,
                                            repair_time=2.0),),
                         origin="test")


def _noop() -> None:
    pass


class TestDivergenceTime:
    def test_earliest_fault_wins(self):
        sched = FaultSchedule(
            label="d", system_seed=1,
            software=(SoftwareFaultSpec(activate_at=50.0),),
            crashes=(CrashSpec(node_id="N2", crash_at=30.0),),
            origin="test")
        assert divergence_time(sched) == 30.0

    def test_fault_free_is_the_reference(self):
        sched = FaultSchedule(label="d", system_seed=1, origin="test")
        assert divergence_time(sched) == float("inf")


class TestCaptureTimes:
    def test_plan_shape(self, timeline):
        times = capture_times(SMALL, timeline)
        assert times == sorted(times)
        assert len(times) <= MAX_IMAGES
        assert all(0.0 < t < SMALL.horizon - 1.0 + 1e-9 for t in times)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d >= MIN_CAPTURE_GAP - 1e-9 for d in diffs)

    def test_pre_points_cover_sensitive_instants(self, timeline):
        times = capture_times(SMALL, timeline)
        # Every commit instant has an image close enough before it that
        # a "just before" boundary fault still finds a resume point.
        for commit in timeline.commit_times():
            if not 2.0 < commit < SMALL.horizon - 2.0:
                continue
            before = [t for t in times if t < commit]
            assert before, f"no capture before commit at {commit}"


class TestShareScheduleSeeds:
    def test_one_seed_for_all(self):
        schedules = [_crash("a", 30.0), _crash("b", 60.0)]
        shared = share_schedule_seeds(SMALL, schedules)
        assert len({s.system_seed for s in shared}) == 1
        # Deterministic in the config seed, and distinct across seeds.
        again = share_schedule_seeds(SMALL, schedules)
        assert [s.system_seed for s in again] == \
            [s.system_seed for s in shared]
        other = share_schedule_seeds(
            AuditConfig(scheme="coordinated", seed=12), schedules)
        assert other[0].system_seed != shared[0].system_seed

    def test_faults_untouched(self):
        sched = _crash("a", 30.0)
        shared = share_schedule_seeds(SMALL, [sched])[0]
        assert shared.crashes == sched.crashes
        assert shared.label == sched.label


class TestWarmRunnerPolicy:
    def test_singleton_group_stays_cold(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline)
        sched = _crash("solo", 60.0)
        runner.plan([sched])
        findings = runner.audit_schedule(sched)
        assert findings == audit_schedule(SMALL, sched)
        assert runner.cold_runs == 1 and runner.warm_runs == 0
        assert runner.sets_built == 0

    def test_min_group_triggers_build(self, timeline):
        assert MIN_GROUP == 2
        runner = WarmRunner(SMALL, timeline=timeline)
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        runner.plan(schedules)
        for sched in schedules:
            runner.audit_schedule(sched)
        assert runner.warm_runs == 2 and runner.cold_runs == 0
        assert runner.sets_built == 1  # one shared prefix, built once

    def test_force_builds_for_singletons(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline)
        sched = _crash("solo", 60.0)
        runner.plan([sched])
        assert runner.ensure_images(sched, force=True)
        assert runner.sets_built == 1
        runner.audit_schedule(sched)
        assert runner.warm_runs == 1

    def test_divergence_before_first_capture_falls_back_cold(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline)
        early = _crash("early", runner.planned_times()[0] / 2.0)
        runner.plan([early, _crash("late", 80.0)])
        findings = runner.audit_schedule(early)
        assert findings == audit_schedule(SMALL, early)
        assert runner.cold_runs == 1

    def test_consume_only_runner_never_builds(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline, build_missing=False)
        sched = _crash("a", 60.0)
        runner.plan([sched, _crash("b", 80.0)])
        runner.audit_schedule(sched)
        assert runner.sets_built == 0 and runner.cold_runs == 1

    def test_stats_counters(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline)
        schedules = [_crash("a", 50.0), _crash("b", 80.0)]
        runner.plan(schedules)
        for sched in schedules:
            runner.audit_schedule(sched)
        stats = runner.stats()
        assert stats["warm_runs"] == 2
        assert stats["sets_built"] == 1
        assert stats["build_seconds"] > 0.0
        assert stats["bytes"] > 0


class TestWarmEqualsCold:
    def test_traced_audit_digest_matches_cold(self, timeline):
        runner = WarmRunner(SMALL, timeline=timeline)
        sched = _crash("w", 60.0)
        runner.plan([sched, _crash("x", 80.0)])
        _findings, system = runner.traced_audit(sched, fail_fast=False)
        assert runner.warm_runs == 1

        cold = build_audit_system(SMALL, sched)
        auditor = OnlineAuditor(cold, fail_fast=False)
        try:
            cold.run()
        except AuditViolation:
            pass
        try:
            auditor.finalize()
        except AuditViolation:
            pass
        assert trace_digest(canonical_trace_lines(system)) == \
            trace_digest(canonical_trace_lines(cold))

    def test_resume_mid_blocking_window(self, timeline):
        """An image captured inside a TB blocking window (buffered
        messages, establishment in flight) must still resume exactly."""
        blocking = [w for w in timeline.blocking if w[1] > w[0]]
        assert blocking, "reference run produced no blocking windows"
        start, end = blocking[len(blocking) // 2]
        mid = (start + end) / 2.0
        sched = FaultSchedule(label="blk", system_seed=_shared_seed(),
                              origin="test")
        system = build_audit_system(SMALL, sched)
        system.run(until=mid)
        image = capture(system)
        thawed, _ = resume(image)
        thawed.run()
        cold = build_audit_system(SMALL, sched)
        cold.run()
        assert trace_digest(canonical_trace_lines(thawed)) == \
            trace_digest(canonical_trace_lines(cold))

    def test_resume_with_cancellation_heavy_heap(self):
        """A heap full of lazily-cancelled entries (compaction pending)
        must survive the pickle round-trip without dropping or reviving
        events."""
        sched = FaultSchedule(label="cancel", system_seed=_shared_seed(),
                              origin="test")
        system = build_audit_system(SMALL, sched)
        system.run(until=30.0)
        handles = [system.sim.schedule_after(50.0 + 0.01 * i, _noop)
                   for i in range(200)]
        for event in handles[:180]:
            event.cancel()
        image = capture(system)
        thawed, _ = resume(image)
        assert thawed.sim.pending_count() == system.sim.pending_count()
        thawed.run()
        system.run()
        assert trace_digest(canonical_trace_lines(thawed)) == \
            trace_digest(canonical_trace_lines(system))

    def test_worker_entry_consumes_prebuilt_store(self, timeline, tmp_path):
        store = ImageStore(root=tmp_path)
        runner = WarmRunner(SMALL, store=store, timeline=timeline)
        sched = _crash("wk", 60.0)
        runner.plan([sched])
        runner.ensure_images(sched, force=True)
        result = _run_one_schedule_warm(
            (SMALL.to_dict(), sched.to_dict(), str(tmp_path)))
        assert result["error"] is None
        assert result["warm"] is True
        assert result["violated"] == bool(audit_schedule(SMALL, sched))


@pytest.fixture(scope="module")
def image_set(timeline):
    return build_image_set(SMALL, _shared_seed(),
                           times=capture_times(SMALL, timeline))


@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_property_resume_equals_cold(image_set, data):
    """capture -> resume -> run == cold run, for random fault mixes."""
    faults = []
    if data.draw(st.booleans(), label="software?"):
        faults.append(SoftwareFaultSpec(
            activate_at=float(data.draw(st.integers(25, 110), label="sw"))))
    n_crashes = data.draw(st.integers(0 if faults else 1, 2), label="crashes")
    for i in range(n_crashes):
        faults.append(CrashSpec(
            node_id=data.draw(st.sampled_from(SYSTEM_NODES), label=f"n{i}"),
            crash_at=float(data.draw(st.integers(25, 110), label=f"c{i}")),
            repair_time=2.0))
    sched = FaultSchedule(
        label="prop", system_seed=_shared_seed(),
        software=tuple(f for f in faults
                       if isinstance(f, SoftwareFaultSpec)),
        crashes=tuple(f for f in faults if isinstance(f, CrashSpec)),
        origin="test")

    div = divergence_time(sched)
    image = max((img for img in image_set if img.captured_at < div),
                key=lambda img: img.captured_at)
    system, auditor = resume(image, fail_fast=False)
    sched.arm(system)
    try:
        system.run()
    except AuditViolation:
        pass
    try:
        auditor.finalize()
    except AuditViolation:
        pass

    cold = build_audit_system(SMALL, sched)
    cold_auditor = OnlineAuditor(cold, fail_fast=False)
    try:
        cold.run()
    except AuditViolation:
        pass
    try:
        cold_auditor.finalize()
    except AuditViolation:
        pass

    assert trace_digest(canonical_trace_lines(system)) == \
        trace_digest(canonical_trace_lines(cold))
    assert [f.to_dict() for f in auditor.findings] == \
        [f.to_dict() for f in cold_auditor.findings]
