"""Capture/resume round-trips: the bit-for-bit contract.

``resume(capture(system))`` then running to the horizon must produce
exactly the trace an uninterrupted run produces — same canonical
digest, same findings, same global message-id position — for plain
and event-pooled kernels alike.
"""

import dataclasses

import pytest

from repro.audit.auditor import OnlineAuditor
from repro.audit.campaign import build_audit_system
from repro.audit.config import AuditConfig
from repro.audit.golden import canonical_trace_lines, trace_digest
from repro.audit.schedule import FaultSchedule
from repro.coordination.scheme import build_system
from repro.errors import AuditViolation
from repro.messages.message import msg_id_position
from repro.warmstart import capture, resume

SMALL = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                    horizon=120.0, tb_interval=20.0)


def _schedule(seed: int = 4242) -> FaultSchedule:
    return FaultSchedule(label="img-test", system_seed=seed, origin="test")


def _drain(system, auditor) -> None:
    try:
        system.run()
    except AuditViolation:
        pass
    try:
        auditor.finalize()
    except AuditViolation:
        pass


def _cold_digest(schedule: FaultSchedule, pooling: bool = False):
    config = SMALL.system_config(schedule)
    if pooling:
        config = dataclasses.replace(config, event_pooling=True)
    system = build_system(config)
    system.run()
    return trace_digest(canonical_trace_lines(system))


class TestRoundTrip:
    def test_resumed_run_is_bitforbit_cold(self):
        schedule = _schedule()
        system = build_audit_system(SMALL, schedule)
        auditor = OnlineAuditor(system, fail_fast=False)
        system.run(until=60.0)
        image = capture(system, auditor)
        thawed, thawed_auditor = resume(image)
        _drain(thawed, thawed_auditor)

        cold = build_audit_system(SMALL, schedule)
        cold_auditor = OnlineAuditor(cold, fail_fast=False)
        _drain(cold, cold_auditor)

        assert trace_digest(canonical_trace_lines(thawed)) == \
            trace_digest(canonical_trace_lines(cold))
        assert [f.to_dict() for f in thawed_auditor.findings] == \
            [f.to_dict() for f in cold_auditor.findings]

    def test_one_image_seeds_many_identical_futures(self):
        system = build_audit_system(SMALL, _schedule())
        system.run(until=50.0)
        image = capture(system)
        digests = []
        for _ in range(2):
            thawed, _auditor = resume(image)
            assert thawed.sim.now == pytest.approx(image.captured_at)
            thawed.run()
            digests.append(trace_digest(canonical_trace_lines(thawed)))
        assert digests[0] == digests[1]
        # The donor system is untouched by either thaw.
        assert system.sim.now == pytest.approx(50.0)
        system.run()
        assert trace_digest(canonical_trace_lines(system)) == digests[0]

    def test_capture_without_auditor(self):
        system = build_audit_system(SMALL, _schedule())
        system.run(until=40.0)
        image = capture(system)
        thawed, auditor = resume(image)
        assert auditor is None
        thawed.run()
        assert trace_digest(canonical_trace_lines(thawed)) == \
            _cold_digest(_schedule())

    def test_event_pooled_kernel_round_trips(self):
        schedule = _schedule()
        config = dataclasses.replace(SMALL.system_config(schedule),
                                     event_pooling=True)
        system = build_system(config)
        system.run(until=60.0)
        image = capture(system)
        thawed, _ = resume(image)
        thawed.run()
        assert trace_digest(canonical_trace_lines(thawed)) == \
            _cold_digest(schedule, pooling=True)

    def test_msg_id_allocator_travels_with_the_system(self):
        system = build_audit_system(SMALL, _schedule())
        system.run(until=60.0)
        at_capture = system.msg_ids.position()
        image = capture(system)
        global_before = msg_id_position()
        thawed, _ = resume(image)
        # Resume touches no process-global allocator state...
        assert msg_id_position() == global_before
        # ...because the thawed system carries its own allocator, at
        # the captured position, independent of the donor's.
        assert thawed.msg_ids.position() == at_capture
        assert thawed.msg_ids is not system.msg_ids
        system.run()
        assert thawed.msg_ids.position() == at_capture

    def test_two_images_resume_side_by_side(self):
        """The satellite regression: two thawed systems interleaved in
        one OS process allocate independent, cold-identical sequences.
        """
        sched_a, sched_b = _schedule(4242), _schedule(977)
        images = {}
        for name, sched in (("a", sched_a), ("b", sched_b)):
            system = build_audit_system(SMALL, sched)
            system.run(until=60.0)
            images[name] = capture(system)
        sys_a, _ = resume(images["a"])
        sys_b, _ = resume(images["b"])
        # Interleave the two suffixes in coarse slices; with a shared
        # global allocator either system would perturb the other's ids.
        for stop in (80.0, 100.0, SMALL.horizon):
            sys_a.run(until=stop)
            sys_b.run(until=stop)
        assert trace_digest(canonical_trace_lines(sys_a)) == \
            _cold_digest(sched_a)
        assert trace_digest(canonical_trace_lines(sys_b)) == \
            _cold_digest(sched_b)
        cold_a = build_audit_system(SMALL, sched_a)
        cold_a.run()
        # Same number of ids allocated as the cold run — and the warm
        # sequence started where the capture left off, not at a reset.
        assert sys_a.msg_ids.position() == cold_a.msg_ids.position()
        assert sys_b.msg_ids.position() > 1

    def test_image_metadata(self):
        schedule = _schedule()
        system = build_audit_system(SMALL, schedule)
        system.run(until=30.0)
        image = capture(system, seed=schedule.system_seed,
                        overrides=(("clock_delta", 0.5),),
                        config_fingerprint=SMALL.fingerprint())
        assert image.captured_at == pytest.approx(30.0)
        assert image.codec_id == "pickle"
        assert image.nbytes > 0
        assert image.seed == schedule.system_seed
        assert image.overrides == (("clock_delta", 0.5),)
        assert image.config_fingerprint == SMALL.fingerprint()
