"""Image-store tests: keys, LRU bounds, disk layer, lookup strictness."""

from repro.audit.config import AuditConfig
from repro.audit.schedule import FaultSchedule
from repro.warmstart import ImageStore, PrefixKey, SystemImage

CONFIG = AuditConfig(scheme="coordinated", seed=11, schedules=8,
                     horizon=120.0, tb_interval=20.0)


def _img(t: float, nbytes: int = 100) -> SystemImage:
    return SystemImage(captured_at=t, codec_id="pickle",
                       payload=b"payload", nbytes=nbytes)


def _key(seed: int = 1, overrides=()) -> PrefixKey:
    return PrefixKey(config_fingerprint="abc", system_seed=seed,
                     overrides=tuple(overrides))


class TestPrefixKey:
    def test_for_schedule_sorts_overrides(self):
        sched = FaultSchedule(label="k", system_seed=9,
                              overrides=(("clock_rho", 0.001),
                                         ("clock_delta", 0.5)),
                              origin="test")
        key = PrefixKey.for_schedule(CONFIG, sched)
        assert key.overrides == (("clock_delta", 0.5), ("clock_rho", 0.001))
        assert key.system_seed == 9
        assert key.config_fingerprint == CONFIG.fingerprint()

    def test_digest_distinguishes_every_coordinate(self):
        base = _key()
        assert base.digest() == _key().digest()
        assert base.digest() != _key(seed=2).digest()
        assert base.digest() != _key(overrides=[("clock_delta", 0.5)]).digest()
        assert base.digest() != PrefixKey("other", 1).digest()


class TestMemoryLayer:
    def test_put_get_round_trip(self):
        store = ImageStore()
        images = [_img(10.0), _img(30.0)]
        store.put(_key(), images)
        assert store.get(_key()) == images
        assert store.get(_key(seed=2)) is None
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_put_sorts_by_capture_time(self):
        store = ImageStore()
        store.put(_key(), [_img(30.0), _img(10.0), _img(20.0)])
        assert [img.captured_at for img in store.get(_key())] == \
            [10.0, 20.0, 30.0]

    def test_latest_before_is_strict(self):
        store = ImageStore()
        store.put(_key(), [_img(10.0), _img(20.0), _img(30.0)])
        assert store.latest_before(_key(), 25.0).captured_at == 20.0
        # An image captured exactly at t may already include events the
        # armed fault must interleave with — strictly before only.
        assert store.latest_before(_key(), 20.0).captured_at == 10.0
        assert store.latest_before(_key(), 10.0) is None
        assert store.latest_before(_key(), 1e9).captured_at == 30.0
        assert store.latest_before(_key(seed=2), 25.0) is None

    def test_lru_eviction_bounded_by_bytes(self):
        store = ImageStore(max_bytes=250)
        store.put(_key(seed=1), [_img(10.0, nbytes=100)])
        store.put(_key(seed=2), [_img(10.0, nbytes=100)])
        store.get(_key(seed=1))  # refresh 1: seed-2 becomes the LRU
        store.put(_key(seed=3), [_img(10.0, nbytes=100)])
        assert store.get(_key(seed=2)) is None
        assert store.get(_key(seed=1)) is not None
        assert store.get(_key(seed=3)) is not None
        assert store.stats()["evictions"] == 1

    def test_eviction_always_keeps_newest_set(self):
        store = ImageStore(max_bytes=10)  # smaller than any one set
        store.put(_key(seed=1), [_img(10.0, nbytes=100)])
        store.put(_key(seed=2), [_img(10.0, nbytes=100)])
        assert store.stats()["sets"] == 1
        assert store.get(_key(seed=2)) is not None

    def test_eviction_order_is_least_recently_used(self):
        # Room for two 100-byte sets; runs of puts/gets must evict in
        # exact recency order, not insertion order.
        store = ImageStore(max_bytes=200)
        store.put(_key(seed=1), [_img(10.0, nbytes=100)])
        store.put(_key(seed=2), [_img(10.0, nbytes=100)])
        store.get(_key(seed=1))           # recency now: 2, 1
        store.put(_key(seed=3), [_img(10.0, nbytes=100)])  # evicts 2
        assert store.get(_key(seed=2)) is None
        store.get(_key(seed=1))           # recency now: 3, 1
        store.put(_key(seed=4), [_img(10.0, nbytes=100)])  # evicts 3
        assert store.get(_key(seed=3)) is None
        assert store.get(_key(seed=1)) is not None
        assert store.get(_key(seed=4)) is not None
        assert store.stats()["evictions"] == 2


class TestDiskLayer:
    def test_write_through_and_fresh_store_reads_back(self, tmp_path):
        writer = ImageStore(root=tmp_path)
        writer.put(_key(), [_img(10.0), _img(20.0)])
        assert list(tmp_path.glob("*.imgset"))
        reader = ImageStore(root=tmp_path)
        images = reader.get(_key())
        assert [img.captured_at for img in images] == [10.0, 20.0]
        assert reader.has(_key())
        assert not reader.has(_key(seed=2))

    def test_corrupt_file_counts_as_absent(self, tmp_path):
        writer = ImageStore(root=tmp_path)
        writer.put(_key(), [_img(10.0)])
        for path in tmp_path.glob("*.imgset"):
            path.write_bytes(b"not a pickle")
        reader = ImageStore(root=tmp_path)
        assert reader.get(_key()) is None
        assert reader.stats()["misses"] == 1

    def test_evicted_set_refetched_from_disk(self, tmp_path):
        # The memory cap never loses disk-backed sets: an evicted set
        # comes back through the disk layer on the next get.
        store = ImageStore(root=tmp_path, max_bytes=150)
        store.put(_key(seed=1), [_img(10.0, nbytes=100)])
        store.put(_key(seed=2), [_img(10.0, nbytes=100)])  # evicts seed-1
        assert store.stats()["evictions"] == 1
        assert store.stats()["sets"] == 1
        images = store.get(_key(seed=1))
        assert images is not None and images[0].captured_at == 10.0
        assert store.stats()["hits"] == 1
        # The re-fetch re-entered the memory layer (and re-applied the
        # cap, evicting the now-least-recent seed-2 set).
        assert _key(seed=1).digest() in store._sets
        assert store.get(_key(seed=2)) is not None  # ...from disk again

    def test_clear_drops_memory_and_disk(self, tmp_path):
        store = ImageStore(root=tmp_path)
        store.put(_key(seed=1), [_img(10.0)])
        store.put(_key(seed=2), [_img(10.0)])
        assert store.clear() >= 2
        assert not list(tmp_path.glob("*.imgset"))
        assert ImageStore(root=tmp_path).get(_key(seed=1)) is None
