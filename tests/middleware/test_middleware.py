"""Tests for the GSU middleware (user logic under coordination)."""

import pytest

from repro.analysis import check_system_line, common_stable_line
from repro.errors import ConfigurationError
from repro.middleware import ComponentLogic, GsuRuntime, MiddlewareConfig
from repro.types import Role


class Counter(ComponentLogic):
    """Sends its tick count; records what it hears."""

    def on_start(self, ctx):
        ctx.state["ticks"] = 0
        ctx.state["heard"] = []

    def on_tick(self, ctx):
        ctx.state["ticks"] += 1
        ctx.send(ctx.state["ticks"])
        if ctx.state["ticks"] % 4 == 0:
            ctx.emit({"count": ctx.state["ticks"]})

    def on_message(self, ctx, value):
        ctx.state["heard"].append(value)


def make_runtime(seed=3, **config_kw):
    runtime = GsuRuntime(MiddlewareConfig(seed=seed, **config_kw))
    runtime.install_component_one(primary=Counter(), secondary=Counter(),
                                  tick_period=7.0)
    runtime.install_component_two(Counter(), tick_period=9.0)
    return runtime


class TestInstallation:
    def test_missing_components_rejected(self):
        runtime = GsuRuntime(MiddlewareConfig())
        with pytest.raises(ConfigurationError):
            runtime.start()

    def test_bad_tick_period_rejected(self):
        runtime = GsuRuntime(MiddlewareConfig())
        runtime.install_component_one(Counter(), Counter(), tick_period=-1.0)
        runtime.install_component_two(Counter(), tick_period=5.0)
        with pytest.raises(ConfigurationError):
            runtime.start()

    def test_components_bound_to_roles(self):
        runtime = make_runtime()
        assert runtime.components[Role.ACTIVE_1].process is runtime.system.active
        assert runtime.system.active.component is runtime.components[Role.ACTIVE_1]


class TestFaultFreeRun:
    def test_logic_exchanges_messages(self):
        runtime = make_runtime()
        runtime.run(until=200.0)
        assert runtime.state_of(Role.PEER_2)["heard"]
        assert runtime.state_of(Role.ACTIVE_1)["heard"]

    def test_active_and_shadow_states_match(self):
        runtime = make_runtime()
        runtime.run(until=300.0)
        assert (runtime.state_of(Role.ACTIVE_1)
                == runtime.state_of(Role.SHADOW_1))

    def test_shadow_messages_suppressed(self):
        runtime = make_runtime()
        runtime.run(until=200.0)
        assert runtime.system.shadow.counters.get("suppressed") > 0
        assert runtime.system.shadow.counters.get("sent.internal") == 0

    def test_external_emissions_reach_device(self):
        runtime = make_runtime()
        runtime.run(until=300.0)
        assert runtime.system.network.device_log

    def test_stable_lines_valid(self):
        runtime = make_runtime()
        runtime.run(until=500.0)
        assert check_system_line(common_stable_line(runtime.system)) == []

    def test_determinism(self):
        def fingerprint():
            runtime = make_runtime(seed=9)
            runtime.run(until=300.0)
            return (runtime.state_of(Role.PEER_2)["heard"],
                    runtime.system.sim.events_executed)
        assert fingerprint() == fingerprint()


class TestDesignFault:
    def test_detection_and_takeover(self):
        runtime = make_runtime()
        runtime.inject_design_fault(at=100.0)
        runtime.run(until=600.0)
        assert runtime.takeover_happened()
        assert runtime.system.active.deposed
        for component in runtime.in_service:
            assert not component.state.corrupt

    def test_no_corrupt_externals_escape(self):
        runtime = make_runtime()
        runtime.inject_design_fault(at=100.0)
        runtime.run(until=600.0)
        assert all(not m.corrupt for m in runtime.system.network.device_log)

    def test_service_continues_after_takeover(self):
        runtime = make_runtime()
        runtime.inject_design_fault(at=100.0)
        runtime.run(until=400.0)
        heard_at_takeover = len(runtime.state_of(Role.PEER_2)["heard"])
        runtime.run(until=800.0)
        assert len(runtime.state_of(Role.PEER_2)["heard"]) > heard_at_takeover


class TestHardwareFault:
    def test_crash_recovery_restores_user_state(self):
        runtime = make_runtime()
        runtime.inject_crash("N2", at=300.0, repair_time=2.0)
        runtime.run(until=600.0)
        assert runtime.system.hw_recovery.recoveries == 1
        # The user's dict survived the rollback and kept evolving.
        assert runtime.state_of(Role.PEER_2)["ticks"] > 30

    def test_combined_faults(self):
        runtime = make_runtime()
        runtime.inject_design_fault(at=150.0)
        runtime.inject_crash("N1b", at=400.0, repair_time=2.0)
        runtime.run(until=900.0)
        assert runtime.takeover_happened()
        assert runtime.system.hw_recovery.recoveries == 1
        for component in runtime.in_service:
            assert not component.state.corrupt
