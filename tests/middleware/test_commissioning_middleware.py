"""Commissioning through the middleware API."""

import pytest

from repro.errors import ProtocolError
from repro.middleware import ComponentLogic, GsuRuntime, MiddlewareConfig
from repro.tb.blocking import TbConfig
from repro.types import Role, StableContent


class Chatter(ComponentLogic):
    def on_start(self, ctx):
        ctx.state["n"] = 0

    def on_tick(self, ctx):
        ctx.state["n"] += 1
        ctx.send(ctx.state["n"])
        if ctx.state["n"] % 3 == 0:
            ctx.emit({"n": ctx.state["n"]})

    def on_message(self, ctx, value):
        ctx.state.setdefault("heard", 0)
        ctx.state["heard"] = ctx.state["heard"] + 1


def make_runtime():
    runtime = GsuRuntime(MiddlewareConfig(seed=5, tb=TbConfig(interval=20.0)))
    runtime.install_component_one(Chatter(), Chatter(), tick_period=5.0)
    runtime.install_component_two(Chatter(), tick_period=7.0)
    return runtime


class TestMiddlewareCommissioning:
    def test_commission_after_confidence_period(self):
        runtime = make_runtime()
        runtime.run(until=200.0)
        assert not runtime.takeover_happened()
        runtime.commission_upgrade()
        # The secondary retires; the primary serves on.
        assert runtime.system.shadow.deposed
        assert not runtime.system.active.deposed

    def test_service_continues_after_commissioning(self):
        runtime = make_runtime()
        runtime.run(until=200.0)
        runtime.commission_upgrade()
        heard_before = runtime.state_of(Role.PEER_2).get("heard", 0)
        runtime.run(until=400.0)
        assert runtime.state_of(Role.PEER_2)["heard"] > heard_before

    def test_tb_degenerates_post_commissioning(self):
        runtime = make_runtime()
        runtime.run(until=200.0)
        runtime.commission_upgrade()
        commissioned_at = runtime.system.sim.now
        runtime.run(until=400.0)
        for proc in (runtime.system.active, runtime.system.peer):
            for ckpt in proc.node.stable.history(proc.process_id):
                if ckpt.taken_at > commissioned_at and ckpt.epoch:
                    assert ckpt.content is StableContent.CURRENT_STATE

    def test_cannot_commission_after_takeover(self):
        runtime = make_runtime()
        runtime.inject_design_fault(at=50.0)
        runtime.run(until=300.0)
        assert runtime.takeover_happened()
        with pytest.raises(ProtocolError):
            runtime.commission_upgrade()
