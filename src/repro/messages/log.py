"""The shadow process's suppressed-message log.

``P1_sdw``'s outgoing messages are suppressed during guarded operation
and kept in a log (``msg_logging`` in Appendix A).  When a "passed AT"
notification arrives, the log entries covered by the validated sequence
number become unnecessary and are reclaimed (``memory_reclamation``).
If the shadow takes over after a software error, it re-sends the logged
messages beyond the last *valid* message of ``P1_act`` (the valid
message register ``VR``), or keeps suppressing up to that point.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .message import Message


@dataclasses.dataclass
class LogEntry:
    """One suppressed message together with its shadow-side sequence
    number.  ``recipients`` records the multicast destinations of the
    mirrored send (defaults to the message's single receiver); takeover
    re-sends to all of them."""

    sn: int
    message: Message
    recipients: Optional[List] = None

    def destinations(self) -> List:
        """The processes a takeover re-send must address."""
        return list(self.recipients) if self.recipients \
            else [self.message.receiver]


class MessageLog:
    """Ordered log of suppressed shadow messages.

    The log participates in checkpoints (it is plain data, encoded as
    the ``msg_log`` snapshot section with delta capture — see
    :mod:`repro.snapshot.delta`), so rollback restores it together with
    the rest of the process state.
    """

    #: Snapshot section this state is encoded under.
    snapshot_section = "msg_log"

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        #: Count of entries reclaimed so far (monitoring).
        self.reclaimed_count: int = 0

    def append(self, sn: int, message: Message,
               recipients: Optional[List] = None) -> None:
        """Log a suppressed message under the shadow's sequence number."""
        if self._entries and sn <= self._entries[-1].sn:
            raise ValueError(
                f"message log sequence numbers must increase: {sn} after "
                f"{self._entries[-1].sn}")
        self._entries.append(LogEntry(sn=sn, message=message,
                                      recipients=recipients))

    def reclaim_up_to(self, sn: int) -> int:
        """Drop entries with sequence number ``<= sn``; returns how many.

        Called when a "passed AT" notification confirms that ``P1_act``'s
        messages up to the corresponding point were valid, making the
        shadow's copies unnecessary.
        """
        kept = [e for e in self._entries if e.sn > sn]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        self.reclaimed_count += dropped
        return dropped

    def entries_after(self, sn: Optional[int]) -> List[LogEntry]:
        """Entries strictly beyond ``sn`` (all entries if ``sn`` is None).

        These are the messages the shadow must re-send on takeover,
        because the corresponding ``P1_act`` messages were never
        validated.
        """
        if sn is None:
            return list(self._entries)
        return [e for e in self._entries if e.sn > sn]

    def clear(self) -> None:
        """Empty the log (post-takeover, once re-sends are issued)."""
        self._entries = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        """Value equality (entries + reclaim counter) — what the
        snapshot round-trip property tests compare."""
        if not isinstance(other, MessageLog):
            return NotImplemented
        return (self._entries == other._entries
                and self.reclaimed_count == other.reclaimed_count)

    __hash__ = None  # mutable container
