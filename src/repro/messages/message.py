"""Message records exchanged by simulated processes.

A :class:`Message` carries both *protocol-visible* fields (kind, sender,
sequence number ``sn``, piggybacked ``dirty_bit`` and stable-checkpoint
epoch ``ndc`` — exactly the fields the paper's Appendix A algorithms
append) and *ground-truth* metadata that protocols must never branch on:
the hidden ``corrupt`` flag that tracks actual error propagation, used
only by acceptance tests (to model detection) and by the analysis
checkers (to judge the protocol's conservatism).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..types import MessageKind, ProcessId

#: Destination pseudo-process for external messages (devices / ground).
DEVICE: ProcessId = ProcessId("DEVICE")


class MsgIdAllocator:
    """A message-id sequence owned by one :class:`~repro.coordination
    .scheme.System`.

    Ids only need to be unique within one system, but they must be a
    deterministic function of *that system's* execution — audit
    findings and golden traces are byte-identical whether a schedule
    runs first, last, or in a worker subprocess.  Making the allocator
    per-system state (captured and thawed with the rest of the system
    in warm-start images) lets many thawed systems coexist in one OS
    process with no global resets: flock forks interleave freely.
    """

    __slots__ = ("next_id",)

    def __init__(self, start: int = 1) -> None:
        self.next_id = start

    def allocate(self) -> int:
        """Consume and return the next message id."""
        mid = self.next_id
        self.next_id = mid + 1
        return mid

    def position(self) -> int:
        """The next id :meth:`allocate` would hand out (not consumed)."""
        return self.next_id

    def reset(self, start: int = 1) -> None:
        """Restart the sequence (system build / resume bookkeeping)."""
        self.next_id = start


#: Fallback allocator for messages constructed outside any system
#: (direct ``Message(...)`` construction in unit tests and fixtures).
#: Run-time send paths all draw from their system's own allocator.
_default_allocator = MsgIdAllocator()


def msg_id_position() -> int:
    """The next message id the *fallback* allocator would hand out."""
    return _default_allocator.position()


def reset_msg_ids(start: int = 1) -> None:
    """Restart the fallback message-id allocator (tests, fixtures)."""
    _default_allocator.reset(start)


@dataclasses.dataclass
class Message:
    """A single message instance.

    Attributes
    ----------
    kind:
        Internal application message, external message, "passed AT"
        notification, or network-level ack.
    sender, receiver:
        Process identifiers; ``receiver`` may be :data:`DEVICE`.
    payload:
        Application data (opaque to the protocols).  For ``PASSED_AT``
        notifications the payload is ``None`` and the meaning travels in
        ``sn``/``ndc``.
    sn:
        The sender's message sequence number (the paper's ``msg_SN``).
        ``None`` for messages the algorithms send with a ``null`` SN
        (e.g. external messages, acks).
    ndc:
        Piggybacked stable-storage checkpoint epoch (the paper's
        ``Ndc``), present on internal messages and "passed AT"
        notifications in the modified protocols.
    dirty_bit:
        Piggybacked sender dirty bit on internal messages (``append(m,
        dirty_bit)`` in Appendix A).
    corrupt:
        **Ground truth only.**  Whether the payload is actually affected
        by an activated software design fault.  Protocol logic must not
        read this; acceptance tests use it to model detection and the
        invariant checkers use it to audit the protocol's view.
    resend_of:
        If this message is a recovery re-send, the ``msg_id`` of the
        original transmission (receivers use it for deduplication).
    incarnation:
        The system recovery incarnation at send time.  After a recovery
        the incarnation is bumped and receivers drop lower-incarnation
        deliveries (without acknowledging them): a message from "before
        the rollback" must not leak into the recovered computation —
        if it is still needed, the sender's recovery re-sends or
        re-executes it under the new incarnation.
    """

    kind: MessageKind
    sender: ProcessId
    receiver: ProcessId
    payload: Any = None
    sn: Optional[int] = None
    ndc: Optional[int] = None
    dirty_bit: Optional[int] = None
    #: Contamination provenance (generalized K-peer protocol): the
    #: highest ``P1_act`` sequence number that influenced the sender's
    #: state when this message was produced.  ``None`` on clean sends
    #: and in the paper's three-process protocols (where the chain
    #: topology makes provenance implicit).
    taint_sn: Optional[int] = None
    #: Per-source contamination provenance (N-component topologies):
    #: maps each guarded active's role id to the highest sequence
    #: number of that active influencing the sender's state when this
    #: message was produced.  On ``PASSED_AT`` notifications the same
    #: field carries the *certified bound map* of the validation.
    #: ``None`` on clean sends and outside topology systems.
    taint_map: Optional[dict] = None
    #: Destination sequence number (generalized K-peer protocol): the
    #: k-th internal message this sender addressed to this receiver.
    #: Under the piecewise-determinism assumption a rolled-back sender's
    #: replay regenerates the same (sender, receiver, dsn) stream with
    #: identical content, so receivers deduplicate replayed sends just
    #: like recovery re-sends.  ``None`` in the paper-faithful
    #: three-process protocols.
    dsn: Optional[int] = None
    corrupt: bool = False
    resend_of: Optional[int] = None
    incarnation: int = 0
    msg_id: int = dataclasses.field(
        default_factory=lambda: _default_allocator.allocate())
    send_time: float = 0.0
    #: Time of the logical message's *first* transmission (preserved by
    #: recovery re-sends).  Journals timestamp records with this, so the
    #: sender's and receiver's views of one message carry identical
    #: times even when a re-send arrives after a long repair outage.
    born_at: float = 0.0

    @property
    def is_application(self) -> bool:
        """Whether this is an application-purpose message (internal or
        external), as opposed to a notification or an ack."""
        return self.kind in (MessageKind.INTERNAL, MessageKind.EXTERNAL)

    @property
    def dedup_key(self):
        """Logical identity used by receivers to drop duplicates.

        With a destination sequence number (generalized protocol) the
        identity is ``(sender, receiver, dsn)`` — stable across both
        recovery re-sends and deterministic replay; otherwise it is the
        original ``msg_id`` (stable across re-sends only)."""
        if self.dsn is not None:
            return (str(self.sender), str(self.receiver), self.dsn)
        return self.resend_of if self.resend_of is not None else self.msg_id

    def clone_for_resend(self,
                         allocator: Optional[MsgIdAllocator] = None
                         ) -> "Message":
        """A fresh transmission of the same logical message.

        The clone gets a new ``msg_id`` (it is a distinct transmission
        for ack purposes) from ``allocator`` — the sending system's —
        but remembers the original in ``resend_of``.
        """
        chosen = allocator if allocator is not None else _default_allocator
        return dataclasses.replace(
            self, msg_id=chosen.allocate(),
            resend_of=self.dedup_key,
        )

    def describe(self) -> str:
        """Compact human-readable form used in traces."""
        bits = [f"{self.kind.value}", f"{self.sender}->{self.receiver}"]
        if self.sn is not None:
            bits.append(f"sn={self.sn}")
        if self.ndc is not None:
            bits.append(f"ndc={self.ndc}")
        if self.dirty_bit is not None:
            bits.append(f"db={self.dirty_bit}")
        if self.corrupt:
            bits.append("CORRUPT")
        return " ".join(bits)


def passed_at_notification(sender: ProcessId, receiver: ProcessId,
                           msg_sn: Optional[int], ndc: Optional[int],
                           bound_map: Optional[dict] = None,
                           msg_id: Optional[int] = None) -> Message:
    """Build a "passed AT" notification (one per recipient).

    ``msg_sn`` is the sequence number of the last message of ``P1_act``
    covered by the validation (the paper's ``msg_SN_P1act``); ``ndc`` is
    the sender's current stable-checkpoint epoch.  ``bound_map`` is the
    per-source form of ``msg_sn`` in N-component topologies: each
    guarded active's role id mapped to the highest sequence number of
    that active the validation certifies.  ``msg_id`` lets the sender
    pass an id from its system's allocator (the fallback allocator
    serves callers that omit it).
    """
    extra = {} if msg_id is None else {"msg_id": msg_id}
    return Message(kind=MessageKind.PASSED_AT, sender=sender, receiver=receiver,
                   payload=None, sn=msg_sn, ndc=ndc,
                   taint_map=dict(bound_map) if bound_map else None,
                   **extra)
