"""Message records exchanged by simulated processes.

A :class:`Message` carries both *protocol-visible* fields (kind, sender,
sequence number ``sn``, piggybacked ``dirty_bit`` and stable-checkpoint
epoch ``ndc`` — exactly the fields the paper's Appendix A algorithms
append) and *ground-truth* metadata that protocols must never branch on:
the hidden ``corrupt`` flag that tracks actual error propagation, used
only by acceptance tests (to model detection) and by the analysis
checkers (to judge the protocol's conservatism).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Optional

from ..types import MessageKind, ProcessId

#: Destination pseudo-process for external messages (devices / ground).
DEVICE: ProcessId = ProcessId("DEVICE")

_msg_ids = itertools.count(1)


def msg_id_position() -> int:
    """The next message id the allocator would hand out (peeked without
    consuming it).  Warm-start images capture this so a resumed run
    allocates the exact ids the cold run would."""
    import copy
    return next(copy.copy(_msg_ids))


def reset_msg_ids(start: int = 1) -> None:
    """Restart the global message-id allocator.

    ``System.start`` calls this so that message ids are a deterministic
    function of one run, not of how many messages *earlier* runs in the
    same OS process allocated — audit findings and golden traces must
    be byte-identical whether a schedule runs first, last, or in a
    worker subprocess.  Ids only need to be unique within one system;
    no repo code runs two systems' event loops interleaved.
    """
    global _msg_ids
    _msg_ids = itertools.count(start)


@dataclasses.dataclass
class Message:
    """A single message instance.

    Attributes
    ----------
    kind:
        Internal application message, external message, "passed AT"
        notification, or network-level ack.
    sender, receiver:
        Process identifiers; ``receiver`` may be :data:`DEVICE`.
    payload:
        Application data (opaque to the protocols).  For ``PASSED_AT``
        notifications the payload is ``None`` and the meaning travels in
        ``sn``/``ndc``.
    sn:
        The sender's message sequence number (the paper's ``msg_SN``).
        ``None`` for messages the algorithms send with a ``null`` SN
        (e.g. external messages, acks).
    ndc:
        Piggybacked stable-storage checkpoint epoch (the paper's
        ``Ndc``), present on internal messages and "passed AT"
        notifications in the modified protocols.
    dirty_bit:
        Piggybacked sender dirty bit on internal messages (``append(m,
        dirty_bit)`` in Appendix A).
    corrupt:
        **Ground truth only.**  Whether the payload is actually affected
        by an activated software design fault.  Protocol logic must not
        read this; acceptance tests use it to model detection and the
        invariant checkers use it to audit the protocol's view.
    resend_of:
        If this message is a recovery re-send, the ``msg_id`` of the
        original transmission (receivers use it for deduplication).
    incarnation:
        The system recovery incarnation at send time.  After a recovery
        the incarnation is bumped and receivers drop lower-incarnation
        deliveries (without acknowledging them): a message from "before
        the rollback" must not leak into the recovered computation —
        if it is still needed, the sender's recovery re-sends or
        re-executes it under the new incarnation.
    """

    kind: MessageKind
    sender: ProcessId
    receiver: ProcessId
    payload: Any = None
    sn: Optional[int] = None
    ndc: Optional[int] = None
    dirty_bit: Optional[int] = None
    #: Contamination provenance (generalized K-peer protocol): the
    #: highest ``P1_act`` sequence number that influenced the sender's
    #: state when this message was produced.  ``None`` on clean sends
    #: and in the paper's three-process protocols (where the chain
    #: topology makes provenance implicit).
    taint_sn: Optional[int] = None
    #: Per-source contamination provenance (N-component topologies):
    #: maps each guarded active's role id to the highest sequence
    #: number of that active influencing the sender's state when this
    #: message was produced.  On ``PASSED_AT`` notifications the same
    #: field carries the *certified bound map* of the validation.
    #: ``None`` on clean sends and outside topology systems.
    taint_map: Optional[dict] = None
    #: Destination sequence number (generalized K-peer protocol): the
    #: k-th internal message this sender addressed to this receiver.
    #: Under the piecewise-determinism assumption a rolled-back sender's
    #: replay regenerates the same (sender, receiver, dsn) stream with
    #: identical content, so receivers deduplicate replayed sends just
    #: like recovery re-sends.  ``None`` in the paper-faithful
    #: three-process protocols.
    dsn: Optional[int] = None
    corrupt: bool = False
    resend_of: Optional[int] = None
    incarnation: int = 0
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0
    #: Time of the logical message's *first* transmission (preserved by
    #: recovery re-sends).  Journals timestamp records with this, so the
    #: sender's and receiver's views of one message carry identical
    #: times even when a re-send arrives after a long repair outage.
    born_at: float = 0.0

    @property
    def is_application(self) -> bool:
        """Whether this is an application-purpose message (internal or
        external), as opposed to a notification or an ack."""
        return self.kind in (MessageKind.INTERNAL, MessageKind.EXTERNAL)

    @property
    def dedup_key(self):
        """Logical identity used by receivers to drop duplicates.

        With a destination sequence number (generalized protocol) the
        identity is ``(sender, receiver, dsn)`` — stable across both
        recovery re-sends and deterministic replay; otherwise it is the
        original ``msg_id`` (stable across re-sends only)."""
        if self.dsn is not None:
            return (str(self.sender), str(self.receiver), self.dsn)
        return self.resend_of if self.resend_of is not None else self.msg_id

    def clone_for_resend(self) -> "Message":
        """A fresh transmission of the same logical message.

        The clone gets a new ``msg_id`` (it is a distinct transmission
        for ack purposes) but remembers the original in ``resend_of``.
        """
        return dataclasses.replace(
            self, msg_id=next(_msg_ids),
            resend_of=self.dedup_key,
        )

    def describe(self) -> str:
        """Compact human-readable form used in traces."""
        bits = [f"{self.kind.value}", f"{self.sender}->{self.receiver}"]
        if self.sn is not None:
            bits.append(f"sn={self.sn}")
        if self.ndc is not None:
            bits.append(f"ndc={self.ndc}")
        if self.dirty_bit is not None:
            bits.append(f"db={self.dirty_bit}")
        if self.corrupt:
            bits.append("CORRUPT")
        return " ".join(bits)


def passed_at_notification(sender: ProcessId, receiver: ProcessId,
                           msg_sn: Optional[int], ndc: Optional[int],
                           bound_map: Optional[dict] = None) -> Message:
    """Build a "passed AT" notification (one per recipient).

    ``msg_sn`` is the sequence number of the last message of ``P1_act``
    covered by the validation (the paper's ``msg_SN_P1act``); ``ndc`` is
    the sender's current stable-checkpoint epoch.  ``bound_map`` is the
    per-source form of ``msg_sn`` in N-component topologies: each
    guarded active's role id mapped to the highest sequence number of
    that active the validation certifies.
    """
    return Message(kind=MessageKind.PASSED_AT, sender=sender, receiver=receiver,
                   payload=None, sn=msg_sn, ndc=ndc,
                   taint_map=dict(bound_map) if bound_map else None)
