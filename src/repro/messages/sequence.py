"""Sequence-number allocation, acknowledgement tracking and receive-side
deduplication.

These three small pieces implement the bookkeeping the TB protocols rely
on for recoverability: a sender keeps every not-yet-acknowledged message
so it can be saved into the next stable checkpoint and re-sent during
hardware recovery; a receiver drops re-sent messages it has already
processed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..types import ProcessId
from .message import Message


class SequenceAllocator:
    """Monotonic per-sender message sequence numbers (the paper's
    ``msg_SN``).  Restorable from checkpoints."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    @property
    def current(self) -> int:
        """The last allocated sequence number (0 if none yet)."""
        return self._next

    def allocate(self) -> int:
        """Increment and return the next sequence number (1-based)."""
        self._next += 1
        return self._next

    def restore(self, value: int) -> None:
        """Reset the counter to a checkpointed value."""
        self._next = value


class AckTracker:
    """Tracks in-flight (sent but unacknowledged) messages for a sender.

    The original and adapted TB protocols save the tracked messages as
    part of each stable checkpoint and re-send them during hardware
    recovery, which is how they guarantee recoverability without a
    blocking-for-recoverability period (paper Section 2.2).
    """

    def __init__(self) -> None:
        self._inflight: Dict[int, Message] = {}
        #: Total acks processed, for monitoring.
        self.acked_count: int = 0

    def sent(self, message: Message) -> None:
        """Record a transmission awaiting acknowledgement."""
        self._inflight[message.msg_id] = message

    def acked(self, msg_id: int) -> None:
        """Process an acknowledgement (unknown ids are ignored — the ack
        may refer to a transmission superseded by recovery)."""
        if self._inflight.pop(msg_id, None) is not None:
            self.acked_count += 1

    def unacknowledged(self) -> List[Message]:
        """Snapshot of in-flight messages, in send order."""
        return sorted(self._inflight.values(), key=lambda m: m.msg_id)

    def restore(self, messages: Iterable[Message]) -> None:
        """Replace tracked state from a checkpoint's saved message set."""
        self._inflight = {m.msg_id: m for m in messages}

    def __len__(self) -> int:
        return len(self._inflight)


class ReceiveDeduplicator:
    """Receive-side duplicate suppression keyed on the logical message
    identity (:attr:`Message.dedup_key`).

    After hardware recovery a sender re-sends every unacknowledged
    message; receivers that actually processed the original must drop
    the duplicate.  The seen-set is part of the receiver's checkpointed
    state, so a receiver that *rolled back* past the original delivery
    will accept the re-send — exactly the behaviour recoverability
    requires.
    """

    def __init__(self) -> None:
        self._seen: Set[int] = set()

    def is_duplicate(self, message: Message) -> bool:
        """Whether this logical message was already processed."""
        return message.dedup_key in self._seen

    def record(self, message: Message) -> None:
        """Mark the logical message as processed."""
        self._seen.add(message.dedup_key)

    def snapshot(self) -> Set[int]:
        """Copy of the seen-set, for inclusion in checkpoints."""
        return set(self._seen)

    def restore(self, seen: Set[int]) -> None:
        """Restore the seen-set from a checkpoint."""
        self._seen = set(seen)

    def __len__(self) -> int:
        return len(self._seen)


def latest_sn(messages: Iterable[Message], sender: Optional[ProcessId] = None) -> Optional[int]:
    """Highest sequence number among ``messages`` (optionally filtered by
    sender); ``None`` if there is none.  Convenience for checkers."""
    best: Optional[int] = None
    for m in messages:
        if sender is not None and m.sender != sender:
            continue
        if m.sn is not None and (best is None or m.sn > best):
            best = m.sn
    return best
