"""Message records, sequence/ack bookkeeping, and the shadow's log."""

from .log import LogEntry, MessageLog
from .message import DEVICE, Message, passed_at_notification
from .sequence import AckTracker, ReceiveDeduplicator, SequenceAllocator, latest_sn

__all__ = [
    "AckTracker",
    "DEVICE",
    "LogEntry",
    "Message",
    "MessageLog",
    "ReceiveDeduplicator",
    "SequenceAllocator",
    "latest_sn",
    "passed_at_notification",
]
