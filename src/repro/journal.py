"""Per-process message journals — the materialization of each process's
*view on message validity*.

The paper's validity-concerned global-state consistency and
recoverability properties (Section 2.1) quantify over (a) which messages
a state reflects as sent/received and (b) whether the sender's and
receiver's *views on the validity* of each message agree.  The MDCD
algorithms track validity implicitly through dirty bits, the valid
message register ``VR`` and "passed AT" notifications; to make the
properties *checkable*, every process here additionally keeps an
explicit journal: one record per application message sent or received,
with a ``validated`` flag that the protocol engines update exactly when
the paper's algorithms update their knowledge (AT success, "passed AT"
receipt with matching ``Ndc``, clean-state sends).

Journals are part of the checkpointable process state, so a checkpoint
captures the process's view *at checkpoint time* — which is precisely
what the invariant checkers need to audit a checkpoint line.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from .messages.message import Message
from .types import MessageKind, ProcessId


@dataclasses.dataclass
class JournalRecord:
    """One application message as seen by one process.

    ``key`` is the logical message identity
    (:attr:`~repro.messages.message.Message.dedup_key`), stable across
    recovery re-sends.  ``validated`` is this process's current view:
    ``True`` once the message is known-valid (covered by a successful
    acceptance test), ``False`` while it is only *potentially* valid.
    ``sent_dirty`` records the sender's dirty bit at send time (the bit
    the algorithms piggyback on internal messages); messages sent from a
    clean state are born validated.
    """

    key: object
    kind: MessageKind
    sender: ProcessId
    receiver: ProcessId
    sn: Optional[int]
    sent_dirty: int
    validated: bool
    corrupt: bool
    time: float
    #: Provenance bound (generalized protocol): the highest ``P1_act``
    #: sequence number influencing the message; ``None`` when untainted
    #: or untracked.
    taint_sn: Optional[int] = None
    #: Per-source provenance (N-component topologies): guarded active
    #: role id -> highest influencing sequence number of that active.
    #: ``None`` when untainted or untracked.
    taint_map: Optional[dict] = None
    #: Destination sequence number (generalized protocol); ``None`` in
    #: the three-process protocols.  A record with a ``dsn`` is
    #: replay-protected: a rolled-back sender regenerates it
    #: deterministically, so its absence from the sender's snapshot is
    #: not an orphan.
    dsn: Optional[int] = None


class Journal:
    """An ordered set of :class:`JournalRecord`, keyed by logical id.

    Plain data; encoded as part of checkpoints (the ``journals``
    snapshot section, which supports delta capture — see
    :mod:`repro.snapshot.delta`).
    """

    #: Snapshot section this state is encoded under.
    snapshot_section = "journals"

    def __init__(self) -> None:
        self._records: Dict[int, JournalRecord] = {}
        #: Records with ``time < pruned_before`` and ``validated=True``
        #: may have been garbage-collected; the invariant checkers skip
        #: cross-journal lookups older than the counterpart's horizon.
        self.pruned_before: float = 0.0

    # ------------------------------------------------------------------
    def add(self, message: Message, validated: bool, time: float) -> JournalRecord:
        """Record an application message (sent or received).

        Re-sends map onto the original record (same ``dedup_key``); a
        re-send of a message the journal already holds refreshes nothing.
        """
        key = message.dedup_key
        if key in self._records:
            return self._records[key]
        record = JournalRecord(
            key=key,
            kind=message.kind,
            sender=message.sender,
            receiver=message.receiver,
            sn=message.sn,
            sent_dirty=message.dirty_bit if message.dirty_bit is not None else 0,
            validated=validated,
            corrupt=message.corrupt,
            time=time,
            taint_sn=message.taint_sn,
            taint_map=dict(message.taint_map) if message.taint_map else None,
            dsn=message.dsn,
        )
        self._records[key] = record
        return record

    def mark_validated(self, sender: ProcessId, up_to_sn: Optional[int] = None) -> int:
        """Set the ``validated`` flag on records from ``sender``.

        ``up_to_sn`` limits the marking to records with ``sn <=
        up_to_sn`` (the semantics of a "passed AT" notification carrying
        ``msg_SN``); ``None`` marks all of the sender's records.
        Returns the number of records newly validated.
        """
        changed = 0
        for rec in self._records.values():
            if rec.sender != sender or rec.validated:
                continue
            if up_to_sn is not None and (rec.sn is None or rec.sn > up_to_sn):
                continue
            rec.validated = True
            changed += 1
        return changed

    def prune_validated_before(self, time: float) -> int:
        """Garbage-collect *validated* records older than ``time``.

        A validated record's validity can never change again, and both
        ends of a validated message agree by construction, so old
        validated records carry no information the checkers need —
        provided the checkers respect :attr:`pruned_before` (they do).
        Unvalidated records are never pruned: they are exactly the ones
        recovery decisions hinge on.  Returns the number removed.
        """
        before = {k for k, r in self._records.items()
                  if r.validated and r.time < time}
        for key in before:
            del self._records[key]
        self.pruned_before = max(self.pruned_before, time)
        return len(before)

    def discard(self, keys: Iterable[int]) -> int:
        """Remove records by logical key (used when recovery rolls a
        message out of existence on both sides).  Returns count removed."""
        removed = 0
        for key in list(keys):
            if self._records.pop(key, None) is not None:
                removed += 1
        return removed

    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[JournalRecord]:
        """Record for a logical message id, or ``None``."""
        return self._records.get(key)

    def records(self, sender: Optional[ProcessId] = None,
                validated: Optional[bool] = None) -> List[JournalRecord]:
        """Filtered records in insertion order."""
        out = []
        for rec in self._records.values():
            if sender is not None and rec.sender != sender:
                continue
            if validated is not None and rec.validated != validated:
                continue
            out.append(rec)
        return out

    def keys(self) -> List[int]:
        """All logical message ids in the journal."""
        return list(self._records.keys())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: int) -> bool:
        return key in self._records

    def __eq__(self, other: object) -> bool:
        """Value equality (records in order + pruning horizon) — what
        the snapshot round-trip property tests compare."""
        if not isinstance(other, Journal):
            return NotImplemented
        return (list(self._records.items()) == list(other._records.items())
                and self.pruned_before == other.pruned_before)

    __hash__ = None  # mutable container
