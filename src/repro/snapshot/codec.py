"""Snapshot codecs — the byte-level encoding axis of the pipeline.

A :class:`Codec` turns a section value (plain checkpointable data) into
an opaque payload and back.  The contract every codec must honour:

* **isolation** — ``decode(encode(x))`` is an independent deep copy of
  ``x`` (restoring a checkpoint must never alias live state);
* **purity** — encoding consumes no simulator randomness and has no
  side effect on the value, so codec choice cannot perturb the event
  sequence of a run (the determinism property the campaign machinery
  relies on);
* **round-trip equality** — the decoded value compares equal to the
  original (property-tested for every registered codec).

Codecs are looked up by id through a registry; checkpoint records store
the id next to each payload, so a store's codec can change between runs
without stranding old records.
"""

from __future__ import annotations

import copy
import pickle
import zlib
from typing import Any, Dict, List, Union


class Codec:
    """Base class: encode section values to payloads and back.

    ``codec_id`` is the registry key persisted inside checkpoint
    records.  :meth:`measure` reports the byte cost a payload is
    accounted at — ``len()`` of the encoded bytes for real serializers,
    overridden by codecs whose payload is not its own cost.
    """

    codec_id: str = "abstract"

    def encode(self, value: Any) -> Any:  # pragma: no cover - interface
        """Freeze ``value`` into an opaque payload."""
        raise NotImplementedError

    def decode(self, payload: Any) -> Any:  # pragma: no cover - interface
        """Reconstruct an independent copy of the encoded value."""
        raise NotImplementedError

    def measure(self, value: Any, payload: Any) -> int:
        """Bytes this payload is accounted at (cost-proxy)."""
        return len(payload)


class PickleCodec(Codec):
    """The default codec: highest-protocol pickling (the seed
    behaviour of ``Checkpoint.capture``, now behind the interface)."""

    codec_id = "pickle"

    def encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, payload: bytes) -> Any:
        return pickle.loads(payload)


class CompressedPickleCodec(Codec):
    """Pickle + zlib: trades encode/decode CPU for checkpoint bytes —
    the knob for runs where storage traffic is the binding cost."""

    codec_id = "zpickle"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, value: Any) -> bytes:
        return zlib.compress(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), self.level)

    def decode(self, payload: bytes) -> Any:
        return pickle.loads(zlib.decompress(payload))


class NullCodec(Codec):
    """Size-tracking non-serializing codec for analysis-only runs.

    The payload is a deep copy of the value itself — no byte stream is
    built or stored, so views decode by copying instead of unpickling.
    Byte accounting stays meaningful: :meth:`measure` prices each
    payload at its pickled size (tracked in :attr:`bytes_measured`), so
    overhead studies report the same costs a serializing run would,
    while the run itself skips the storage representation entirely.
    """

    codec_id = "null"

    def __init__(self) -> None:
        #: Cumulative pickled size of everything encoded (analysis
        #: accounting; reset freely between measurements).
        self.bytes_measured: int = 0
        self.encodes: int = 0

    def encode(self, value: Any) -> Any:
        self.encodes += 1
        return copy.deepcopy(value)

    def decode(self, payload: Any) -> Any:
        return copy.deepcopy(payload)

    def measure(self, value: Any, payload: Any) -> int:
        size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self.bytes_measured += size
        return size


_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Add (or replace) a codec in the registry; returns it."""
    _REGISTRY[codec.codec_id] = codec
    return codec


def get_codec(codec: Union[str, Codec, None]) -> Codec:
    """Resolve a codec id (or pass an instance through).

    ``None`` resolves to the default pickle codec.  Unknown ids raise
    ``KeyError`` listing what is registered — the error a checkpoint
    record with a stale codec id surfaces as.
    """
    if codec is None:
        return _REGISTRY["pickle"]
    if isinstance(codec, Codec):
        return codec
    try:
        return _REGISTRY[codec]
    except KeyError:
        raise KeyError(f"unknown snapshot codec {codec!r}; registered: "
                       f"{sorted(_REGISTRY)}") from None


def available_codecs() -> List[str]:
    """Registered codec ids (sorted, for CLI help and tests)."""
    return sorted(_REGISTRY)


register_codec(PickleCodec())
register_codec(CompressedPickleCodec())
register_codec(NullCodec())
