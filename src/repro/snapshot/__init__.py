"""The pluggable snapshot pipeline.

Every checkpoint in the system — MDCD Type-1/Type-2/pseudo volatile
checkpoints and TB stable establishments alike — funnels state capture
through this package instead of a hard-wired ``pickle.dumps``:

* :mod:`~repro.snapshot.codec` — byte-level encoding strategies
  (:class:`PickleCodec`, :class:`CompressedPickleCodec`,
  :class:`NullCodec`) behind a registry, selected per checkpoint store
  and threaded through the system configurations;
* :mod:`~repro.snapshot.sections` — a process snapshot is split into
  independently-encoded *sections* (``app``, ``mdcd``, ``journals``,
  ``msg_log``, ``counters``) with per-section byte accounting, so cost
  studies can report *where* checkpoint bytes go;
* :mod:`~repro.snapshot.delta` — the journal and message-log sections
  of steady-state captures encode as *deltas* against the previous
  capture of the same process, cutting volatile-checkpoint cost from
  O(journal) to O(new entries); restores replay the delta chain back to
  the nearest full section.

Codec choice and incremental capture are pure representation concerns:
they never touch the simulator's RNG streams or event ordering, so the
campaign sample sequence is bit-for-bit independent of them (asserted
by ``benchmarks/bench_checkpoint_cost.py`` and the snapshot test
suite).
"""

from .codec import (
    Codec,
    CompressedPickleCodec,
    NullCodec,
    PickleCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from .sections import (
    SECTION_ORDER,
    SectionPayload,
    SnapshotEncoder,
    SnapshotPayload,
    declared_section,
    decode_payload,
    encode_full,
    encode_value,
)

__all__ = [
    "Codec",
    "PickleCodec",
    "CompressedPickleCodec",
    "NullCodec",
    "available_codecs",
    "get_codec",
    "register_codec",
    "SECTION_ORDER",
    "SectionPayload",
    "SnapshotPayload",
    "SnapshotEncoder",
    "declared_section",
    "decode_payload",
    "encode_full",
    "encode_value",
]
