"""Sectioned snapshot payloads and the per-process incremental encoder.

A :class:`~repro.host.ProcessSnapshot` is not one opaque blob: its
parts change at very different rates (the app state every step, the
journals once per message, the MDCD knowledge once per validation) and
answer different cost questions.  The pipeline therefore splits every
capture into independently-encoded *sections*:

========= ==========================================================
section   snapshot fields
========= ==========================================================
app       ``app_state`` (declares ``snapshot_section = "app"``)
mdcd      ``mdcd``
journals  ``journal_sent``, ``journal_recv``
msg_log   ``msg_log``
counters  everything else (sequence counter, dedup set, unacked
          messages, workload cursor, per-destination counters)
========= ==========================================================

Membership is *declared by the state objects themselves* (a
``snapshot_section`` class attribute — see :class:`~repro.app
.component.AppState`, :class:`~repro.mdcd.state.MdcdState`,
:class:`~repro.journal.Journal`, :class:`~repro.messages.log
.MessageLog`); snapshot fields without a declaration land in
``counters``.  Each section value is the ``{field name: value}`` dict,
so decoding reassembles a snapshot by merging sections — new snapshot
fields need no pipeline change.

:class:`SnapshotEncoder` (one per process) additionally encodes the
``journals`` and ``msg_log`` sections of steady-state captures as
deltas against the previous capture (see :mod:`~repro.snapshot.delta`),
emitting a full section on first capture, after a restore, when the
delta language cannot express the change, or every ``max_chain``
captures (bounding restore replay length and the retained chain).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple, Union

from .codec import Codec, get_codec
from .delta import (
    JournalBaseline,
    JournalDelta,
    LogBaseline,
    LogDelta,
    apply_journal_delta,
    apply_log_delta,
    journal_delta,
    log_delta,
)

#: Canonical section order (stable across runs; payload tuples and
#: reports follow it).
SECTION_ORDER = ("app", "mdcd", "journals", "msg_log", "counters")

#: Section name for opaque (non-``ProcessSnapshot``) captures.
OPAQUE_SECTION = "state"


def declared_section(value: Any) -> Optional[str]:
    """The section a state object declares membership of, if any."""
    return getattr(type(value), "snapshot_section", None)


@dataclasses.dataclass(frozen=True)
class SectionPayload:
    """One encoded section of one checkpoint.

    ``data`` is opaque to everything but the codec identified by
    ``codec_id``.  ``nbytes`` is the accounted byte cost (see
    :meth:`~repro.snapshot.codec.Codec.measure`).  A delta payload
    (``full=False``) chains to the payload it was diffed against;
    ``depth`` counts the chain links back to the nearest full section.
    """

    section: str
    codec_id: str
    data: Any
    nbytes: int
    full: bool = True
    base: Optional["SectionPayload"] = None
    depth: int = 0


@dataclasses.dataclass(frozen=True)
class SnapshotPayload:
    """The encoded form of one checkpoint's state: a tuple of section
    payloads (``SECTION_ORDER``), or a single opaque section for
    non-snapshot captures."""

    sections: Tuple[SectionPayload, ...]

    @property
    def nbytes(self) -> int:
        """Total accounted bytes across sections (the checkpoint-cost
        proxy stores aggregate)."""
        return sum(p.nbytes for p in self.sections)

    @property
    def opaque(self) -> bool:
        """Whether this wraps an arbitrary object rather than a
        sectioned process snapshot."""
        return (len(self.sections) == 1
                and self.sections[0].section == OPAQUE_SECTION)

    def section_sizes(self) -> Dict[str, int]:
        """Accounted bytes per section (insertion order =
        ``SECTION_ORDER``)."""
        return {p.section: p.nbytes for p in self.sections}

    def get(self, section: str) -> Optional[SectionPayload]:
        """The payload of one section, or ``None``."""
        for payload in self.sections:
            if payload.section == section:
                return payload
        return None

    def replace_section(self, section: str, value: Any,
                        codec: Union[str, Codec, None] = None
                        ) -> "SnapshotPayload":
        """A copy with one section re-encoded (full) from ``value``.

        Used when a consumer rewrites part of a captured state (the
        ``save_unacked`` ablation clears the unacked list) without
        re-encoding — or breaking the delta chains of — the others.
        """
        out = []
        for payload in self.sections:
            if payload.section == section:
                chosen = get_codec(codec if codec is not None
                                   else payload.codec_id)
                data, nbytes = encode_value(value, chosen)
                payload = SectionPayload(section=section,
                                         codec_id=chosen.codec_id,
                                         data=data, nbytes=nbytes)
            out.append(payload)
        return SnapshotPayload(sections=tuple(out))


def encode_value(value: Any, codec: Codec) -> Tuple[Any, int]:
    """Encode one value, returning ``(data, accounted bytes)``."""
    data = codec.encode(value)
    return data, codec.measure(value, data)


def split_sections(snapshot: Any) -> Dict[str, Dict[str, Any]]:
    """Group a dataclass snapshot's fields by declared section."""
    sections: Dict[str, Dict[str, Any]] = {name: {} for name in SECTION_ORDER}
    for field in dataclasses.fields(snapshot):
        value = getattr(snapshot, field.name)
        section = declared_section(value)
        if section not in sections:
            section = "counters"
        sections[section][field.name] = value
    return {name: fields for name, fields in sections.items() if fields}


def encode_full(state: Any, codec: Union[str, Codec, None] = None
                ) -> SnapshotPayload:
    """One-shot full encoding (no incremental state).

    ``ProcessSnapshot``-like dataclasses with declared sections are
    sectioned; anything else becomes a single opaque section — the path
    arbitrary test states and rewritten snapshots take.
    """
    chosen = get_codec(codec)
    if _is_sectioned(state):
        payloads = []
        for name, fields in split_sections(state).items():
            data, nbytes = encode_value(fields, chosen)
            payloads.append(SectionPayload(section=name,
                                           codec_id=chosen.codec_id,
                                           data=data, nbytes=nbytes))
        return SnapshotPayload(sections=tuple(payloads))
    data, nbytes = encode_value(state, chosen)
    return SnapshotPayload(sections=(SectionPayload(
        section=OPAQUE_SECTION, codec_id=chosen.codec_id,
        data=data, nbytes=nbytes),))


def _is_sectioned(state: Any) -> bool:
    """Whether ``state`` is a dataclass with section-declaring fields
    (in practice: a :class:`~repro.host.ProcessSnapshot`)."""
    if not (dataclasses.is_dataclass(state) and not isinstance(state, type)):
        return False
    return any(declared_section(getattr(state, f.name)) is not None
               for f in dataclasses.fields(state))


#: Optional chain-resolution memo, installed by flock group execution.
#: Maps ``id(payload)`` of an already-resolved *delta* payload to the
#: payload (pinned, so the id stays valid) plus its re-encoded **full**
#: bytes.  A memoized resolve costs one codec decode instead of a
#: replay of up to ``max_chain`` layers — and because the cache stores
#: bytes, every caller still receives a fresh private value, so the
#: mutating consumers (delta application, process restores) stay safe.
_RESOLVE_CACHE: Optional[Dict[int, tuple]] = None

_RESOLVE_CACHE_MAX = 2048


def install_resolve_cache(cache: Optional[Dict[int, tuple]]) -> None:
    """Install (or, with ``None``, remove) the chain-resolution memo.
    Flock group execution scopes one to each group, whose forks share —
    and repeatedly decode — their prefix's payload chains."""
    global _RESOLVE_CACHE
    _RESOLVE_CACHE = cache


def _resolve_section(payload: SectionPayload) -> Dict[str, Any]:
    """Decode one section, replaying its delta chain if present."""
    if payload.full:
        return get_codec(payload.codec_id).decode(payload.data)
    cache = _RESOLVE_CACHE
    if cache is not None:
        entry = cache.get(id(payload))
        if entry is not None and entry[0] is payload:
            return get_codec(entry[2]).decode(entry[1])
    chain = []
    node: Optional[SectionPayload] = payload
    while node is not None and not node.full:
        chain.append(node)
        node = node.base
    if node is None:
        raise ValueError(f"delta chain of section {payload.section!r} has "
                         "no full base payload")
    value = get_codec(node.codec_id).decode(node.data)
    for delta_payload in reversed(chain):
        delta_value = get_codec(delta_payload.codec_id).decode(
            delta_payload.data)
        value = _apply_section_delta(delta_payload.section, value, delta_value)
    if cache is not None:
        if len(cache) >= _RESOLVE_CACHE_MAX:
            cache.clear()
        codec = get_codec(payload.codec_id)
        data, _nbytes = encode_value(value, codec)
        cache[id(payload)] = (payload, data, codec.codec_id)
        # ``value`` stays private (the cache holds independent bytes),
        # so handing it to the mutating caller is still sound.
    return value


def _apply_section_delta(section: str, base_value: Dict[str, Any],
                         delta_value: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one decoded delta onto a (private) decoded base value.

    Deltas travel in their packed (plain-tuple) wire form, so dispatch
    is by section name, not payload type.
    """
    out = dict(base_value)
    for field, packed in delta_value.items():
        if section == "journals":
            out[field] = apply_journal_delta(out[field],
                                             JournalDelta.unpack(packed))
        elif section == "msg_log":
            out[field] = apply_log_delta(out[field], LogDelta.unpack(packed))
        else:  # a field the delta encoder chose to ship whole
            out[field] = packed
    return out


def decode_payload(payload: SnapshotPayload) -> Any:
    """Decode a payload back into the captured state.

    Opaque payloads return the stored object; sectioned payloads merge
    their section dicts into a fresh
    :class:`~repro.host.ProcessSnapshot`.
    """
    if payload.opaque:
        return get_codec(payload.sections[0].codec_id).decode(
            payload.sections[0].data)
    fields: Dict[str, Any] = {}
    for section_payload in payload.sections:
        fields.update(_resolve_section(section_payload))
    from ..host import ProcessSnapshot  # deferred: host imports this package
    return ProcessSnapshot(**fields)


class SnapshotEncoder:
    """Per-process capture pipeline with incremental section encoding.

    One encoder serves all of a process's captures (volatile and
    stable, any codec): it remembers, per delta-capable section, the
    previously emitted payload (the chain tip) and a lightweight
    baseline of the live state it encoded, and emits deltas while the
    chain stays representable and shorter than ``max_chain``.

    Determinism: the encoder reads the live state and writes only its
    own bookkeeping — capture can never perturb the simulation, so
    incremental and full runs produce identical event sequences.
    """

    def __init__(self, incremental: bool = True, max_chain: int = 16) -> None:
        self.incremental = incremental
        if max_chain < 1:
            raise ValueError("max_chain must be at least 1")
        self.max_chain = max_chain
        self._tips: Dict[str, SectionPayload] = {}
        self._journal_baselines: Dict[str, JournalBaseline] = {}
        self._log_baselines: Dict[str, LogBaseline] = {}
        #: Capture statistics per section: counts of full and delta
        #: encodes (the ``snapshot-stats`` CLI reads these).
        self.full_encodes: Dict[str, int] = {}
        self.delta_encodes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all incremental state: the next capture emits full
        sections.  Called after a restore, when the live journals and
        log are replaced by decoded copies the baselines do not
        describe."""
        self._tips.clear()
        self._journal_baselines.clear()
        self._log_baselines.clear()

    # ------------------------------------------------------------------
    def encode_snapshot(self, snapshot: Any,
                        codec: Union[str, Codec, None] = None
                        ) -> SnapshotPayload:
        """Encode one capture, emitting delta sections where possible."""
        chosen = get_codec(codec)
        if not _is_sectioned(snapshot):
            return encode_full(snapshot, chosen)
        payloads = []
        for name, fields in split_sections(snapshot).items():
            if self.incremental and name == "journals":
                payloads.append(self._encode_journals(fields, chosen))
            elif self.incremental and name == "msg_log":
                payloads.append(self._encode_log(fields, chosen))
            else:
                data, nbytes = encode_value(fields, chosen)
                payloads.append(SectionPayload(
                    section=name, codec_id=chosen.codec_id,
                    data=data, nbytes=nbytes))
                self._bump(self.full_encodes, name)
        return SnapshotPayload(sections=tuple(payloads))

    # ------------------------------------------------------------------
    def _encode_journals(self, fields: Dict[str, Any],
                         codec: Codec) -> SectionPayload:
        tip = self._usable_tip("journals")
        if tip is not None and set(self._journal_baselines) == set(fields):
            delta_value = {
                name: journal_delta(journal,
                                    self._journal_baselines[name]).pack()
                for name, journal in fields.items()}
            payload = self._delta_payload("journals", delta_value, codec, tip)
        else:
            payload = self._full_payload("journals", fields, codec)
        self._journal_baselines = {name: JournalBaseline.of(journal)
                                   for name, journal in fields.items()}
        self._tips["journals"] = payload
        return payload

    def _encode_log(self, fields: Dict[str, Any],
                    codec: Codec) -> SectionPayload:
        tip = self._usable_tip("msg_log")
        delta_value: Optional[Dict[str, Any]] = None
        if tip is not None and set(self._log_baselines) == set(fields):
            delta_value = {}
            for name, log in fields.items():
                delta = log_delta(log, self._log_baselines[name])
                if delta is None:  # inexpressible (sn restart) -> full
                    delta_value = None
                    break
                delta_value[name] = delta.pack()
        if delta_value is not None:
            payload = self._delta_payload("msg_log", delta_value, codec, tip)
        else:
            payload = self._full_payload("msg_log", fields, codec)
        self._log_baselines = {name: LogBaseline.of(log)
                               for name, log in fields.items()}
        self._tips["msg_log"] = payload
        return payload

    # ------------------------------------------------------------------
    def _usable_tip(self, section: str) -> Optional[SectionPayload]:
        """The previous payload, unless the chain hit its length bound."""
        tip = self._tips.get(section)
        if tip is None or tip.depth + 1 >= self.max_chain:
            return None
        return tip

    def _full_payload(self, section: str, value: Any,
                      codec: Codec) -> SectionPayload:
        data, nbytes = encode_value(value, codec)
        self._bump(self.full_encodes, section)
        return SectionPayload(section=section, codec_id=codec.codec_id,
                              data=data, nbytes=nbytes)

    def _delta_payload(self, section: str, value: Any, codec: Codec,
                       tip: SectionPayload) -> SectionPayload:
        data, nbytes = encode_value(value, codec)
        self._bump(self.delta_encodes, section)
        return SectionPayload(section=section, codec_id=codec.codec_id,
                              data=data, nbytes=nbytes, full=False,
                              base=tip, depth=tip.depth + 1)

    @staticmethod
    def _bump(counter: Dict[str, int], key: str) -> None:
        counter[key] = counter.get(key, 0) + 1
