"""Incremental (delta) encoding of the journal and message-log sections.

Between two consecutive captures of one process the journals and the
shadow's suppressed-message log change by a handful of entries, yet the
seed pipeline re-pickled them whole every time — making checkpoint cost
O(journal size) instead of O(new entries).  This module computes the
difference of a section against the previous capture and replays it:

* a :class:`JournalDelta` is the records added, the keys whose
  ``validated`` flag flipped, the keys pruned/discarded, and the new
  pruning horizon;
* a :class:`LogDelta` is the entries appended past the previous
  capture's last sequence number plus the surviving prefix bound (the
  reclaim/clear effect) and the monitoring counter.

Capture-side *baselines* record just enough of the previous state to
diff against (per-key validity fingerprints; the log's sequence
numbers) — not a copy of the section.  A baseline is only valid for
the state the previous payload encodes, so the encoder refreshes it at
every capture and drops it entirely on restore (the full-section
fallback).

If the live section has changed in a way the delta language cannot
express (a message log whose sequence numbers restarted after
``clear()``), the diff functions return ``None`` and the encoder falls
back to a full section — correctness never depends on the delta being
representable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..journal import Journal, JournalRecord
from ..messages.log import LogEntry, MessageLog
from ..types import MessageKind

#: Sections that support delta encoding, in snapshot-assembly order.
DELTA_SECTIONS = ("journals", "msg_log")


def _pack_record(rec: JournalRecord) -> Tuple:
    """A journal record as a plain tuple — steady-state deltas are tiny
    and mostly overhead, so the wire form avoids pickling class
    references and field names for every payload."""
    return (rec.key, rec.kind.value, rec.sender, rec.receiver, rec.sn,
            rec.sent_dirty, rec.validated, rec.corrupt, rec.time,
            rec.taint_sn, rec.dsn)


def _unpack_record(data: Tuple) -> JournalRecord:
    (key, kind, sender, receiver, sn, sent_dirty, validated, corrupt,
     time, taint_sn, dsn) = data
    return JournalRecord(key=key, kind=MessageKind(kind), sender=sender,
                         receiver=receiver, sn=sn, sent_dirty=sent_dirty,
                         validated=validated, corrupt=corrupt, time=time,
                         taint_sn=taint_sn, dsn=dsn)


# ----------------------------------------------------------------------
# journals
# ----------------------------------------------------------------------
def _record_identity(rec: JournalRecord) -> Tuple:
    """Every field of a record except the mutable ``validated`` flag.

    A key whose identity changed between captures (discarded and
    re-added by recovery) is encoded as remove + add rather than
    trusting the stale base record.
    """
    return (rec.kind, rec.sender, rec.receiver, rec.sn, rec.sent_dirty,
            rec.corrupt, rec.time, rec.taint_sn, rec.dsn)


@dataclasses.dataclass(frozen=True)
class JournalBaseline:
    """Capture-side fingerprint of one journal at the previous capture."""

    ids: Dict[object, Tuple[bool, Tuple]]
    pruned_before: float

    @classmethod
    def of(cls, journal: Journal) -> "JournalBaseline":
        return cls(ids={key: (rec.validated, _record_identity(rec))
                        for key, rec in journal._records.items()},
                   pruned_before=journal.pruned_before)


@dataclasses.dataclass(frozen=True)
class JournalDelta:
    """The change of one journal since its baseline."""

    added: Tuple[JournalRecord, ...]
    revalidated: Tuple[object, ...]
    removed: Tuple[object, ...]
    pruned_before: float

    @property
    def entry_count(self) -> int:
        return len(self.added) + len(self.revalidated) + len(self.removed)

    def pack(self) -> Tuple:
        """The delta as plain tuples (the form that gets encoded)."""
        return (tuple(_pack_record(r) for r in self.added),
                self.revalidated, self.removed, self.pruned_before)

    @classmethod
    def unpack(cls, data: Tuple) -> "JournalDelta":
        added, revalidated, removed, pruned_before = data
        return cls(added=tuple(_unpack_record(t) for t in added),
                   revalidated=tuple(revalidated), removed=tuple(removed),
                   pruned_before=pruned_before)


def journal_delta(journal: Journal, base: JournalBaseline) -> JournalDelta:
    """Diff a live journal against its baseline."""
    added: List[JournalRecord] = []
    revalidated: List[object] = []
    removed: List[object] = []
    records = journal._records
    for key, (_, ident) in base.ids.items():
        rec = records.get(key)
        if rec is None or _record_identity(rec) != ident:
            removed.append(key)
    for key, rec in records.items():
        old = base.ids.get(key)
        if old is None or old[1] != _record_identity(rec):
            added.append(rec)
        elif rec.validated and not old[0]:
            revalidated.append(key)
    return JournalDelta(added=tuple(added), revalidated=tuple(revalidated),
                        removed=tuple(removed),
                        pruned_before=journal.pruned_before)


def apply_journal_delta(journal: Journal, delta: JournalDelta) -> Journal:
    """Replay a delta onto a (freshly decoded, private) base journal."""
    for key in delta.removed:
        journal._records.pop(key, None)
    for rec in delta.added:
        # A re-added key moves to the end of the insertion order,
        # matching dict semantics in the live journal.
        journal._records.pop(rec.key, None)
        journal._records[rec.key] = rec
    for key in delta.revalidated:
        journal._records[key].validated = True
    journal.pruned_before = delta.pruned_before
    return journal


# ----------------------------------------------------------------------
# message log
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LogBaseline:
    """Capture-side fingerprint of the message log: per entry, its
    sequence number (strictly increasing by construction) *and* the
    logged message's ``msg_id`` — so an entry added after a
    ``clear()``-restart that happens to reuse an old sequence number is
    never mistaken for the base entry it aliases."""

    ids: Tuple[Tuple[int, int], ...]

    @classmethod
    def of(cls, log: MessageLog) -> "LogBaseline":
        return cls(ids=tuple((entry.sn, entry.message.msg_id)
                             for entry in log))


@dataclasses.dataclass(frozen=True)
class LogDelta:
    """The change of the message log since its baseline.

    The live log evolves only by appending (increasing ``sn``),
    reclaiming a prefix, or clearing — so the new state is always "a
    suffix of the base, plus appended entries".  ``min_keep_sn`` bounds
    the surviving base suffix (``None`` keeps nothing).
    """

    min_keep_sn: Optional[int]
    appended: Tuple[LogEntry, ...]
    reclaimed_count: int

    @property
    def entry_count(self) -> int:
        return len(self.appended)

    def pack(self) -> Tuple:
        """The delta as plain tuples (the form that gets encoded);
        appended messages ship whole — a full section would carry them
        too."""
        return (self.min_keep_sn,
                tuple((e.sn, e.message, e.recipients) for e in self.appended),
                self.reclaimed_count)

    @classmethod
    def unpack(cls, data: Tuple) -> "LogDelta":
        min_keep_sn, appended, reclaimed_count = data
        return cls(min_keep_sn=min_keep_sn,
                   appended=tuple(LogEntry(sn=sn, message=message,
                                           recipients=recipients)
                                  for sn, message, recipients in appended),
                   reclaimed_count=reclaimed_count)


def log_delta(log: MessageLog, base: LogBaseline) -> Optional[LogDelta]:
    """Diff the live log against its baseline.

    Returns ``None`` when the delta language cannot express the change
    (sequence numbers restarted after a ``clear()``, whether or not
    they alias base entries), signalling the encoder to emit a full
    section.
    """
    base_last = base.ids[-1][0] if base.ids else None
    kept: List[Tuple[int, int]] = []
    appended: List[LogEntry] = []
    for entry in log:
        if base_last is not None and entry.sn <= base_last:
            kept.append((entry.sn, entry.message.msg_id))
        else:
            appended.append(entry)
    if kept and tuple(kept) != base.ids[len(base.ids) - len(kept):]:
        return None
    return LogDelta(min_keep_sn=kept[0][0] if kept else None,
                    appended=tuple(appended),
                    reclaimed_count=log.reclaimed_count)


def apply_log_delta(log: MessageLog, delta: LogDelta) -> MessageLog:
    """Replay a delta onto a (freshly decoded, private) base log."""
    if delta.min_keep_sn is None:
        log._entries = []
    else:
        log._entries = [e for e in log._entries if e.sn >= delta.min_keep_sn]
    log._entries.extend(delta.appended)
    log.reclaimed_count = delta.reclaimed_count
    return log
