"""Suffix-fork batch execution: thousands of schedules, one image.

``repro.flock`` layers on :mod:`repro.warmstart`: where warm-start
thaws one full-system image *per schedule*, a flock decodes each image
**once** into a resident :class:`~repro.flock.template.ForkTemplate`
and forks per-schedule ``(system, auditor)`` copies from it through a
memo-seeded fast clone (:class:`~repro.flock.fork.ForkContext`).  The
:class:`~repro.flock.runner.FlockRunner` batches a campaign by prefix
group, executes groups largest-first, and recycles view/chain memos
and the kernel event pool across a group's forks.

Results are bit-for-bit identical to warm and cold execution —
findings, errors, shrink results, trace digests.
"""

from .fork import ForkContext, collect_shared
from .runner import DEFAULT_FORK_BATCH, FlockRunner, _run_flock_shard
from .template import FORK_QUANTUM, ForkTemplate, fork_position

__all__ = [
    "DEFAULT_FORK_BATCH",
    "FORK_QUANTUM",
    "FlockRunner",
    "ForkContext",
    "ForkTemplate",
    "collect_shared",
    "fork_position",
]
