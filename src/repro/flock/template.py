"""Resident fork templates: one live reference, many cheap futures.

A :class:`ForkTemplate` holds a *live* fault-free ``(system, auditor)``
pair — thawed once from a warm-start image, or built directly from the
campaign config — and advances it along the reference timeline on
demand.  At any clean position it can emit a compact dump (shared
substructure factored out through the group's
:class:`~repro.flock.fork.ForkContext`) and thaw any number of
independent forks from it.

Template lifetime rules:

* **Advancement is monotone.**  The live pair only moves forward; a
  fork at an earlier position comes from a *cached dump* taken when the
  template was there (the grow-only context keeps old dumps decodable).
* **Advancement stops mattering at the reference's first finding.**
  A dump of a violated reference would bake the finding — and trace
  past it — into every fork, which a cold run (fail-fast) would never
  have produced.  ``advance_to`` refuses to advance a violated
  template, and ``dump`` refuses to emit one; callers fork from the
  last clean cached dump instead (a longer re-simulation, still
  bit-for-bit correct).
* **Forks never write back.**  A fork gets private copies of all
  mutable state; the only objects it shares with the template are the
  registered fork-safe ones (see :mod:`repro.flock.fork`).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from .fork import ForkContext, collect_shared

#: Fork positions are quantized to this grid so schedules with nearby
#: divergence times reuse one cached dump (boundary schedules cluster
#: on the TB grid, making the hit rate high).
FORK_QUANTUM = 1.0

#: Margin subtracted before quantizing, guaranteeing the fork position
#: lies strictly before the divergence instant.
FORK_EPS = 1e-6

#: How often (simulated seconds) advancement re-checks the reference
#: for findings.  A violated reference can never serve another fork,
#: so advancing it further is pure waste — chunked advancement bounds
#: that waste (mutated protocols can violate on the fault-free
#: reference itself) without touching the event-level execution, which
#: is identical whether ``run`` is called once or in slices.
ADVANCE_CHECK_INTERVAL = 10.0


def fork_position(divergence: float, horizon: float,
                  quantum: float = FORK_QUANTUM) -> float:
    """The quantized template position to fork at for ``divergence``.

    Strictly before the divergence instant; capped just short of the
    horizon for fault-free schedules (``divergence == inf``)."""
    limit = min(divergence, horizon) - FORK_EPS
    return max(0.0, math.floor(limit / quantum) * quantum)


class ForkTemplate:
    """One resident reference run serving a flock group's forks."""

    def __init__(self, system, auditor,
                 context: Optional[ForkContext] = None) -> None:
        self.system = system
        self.auditor = auditor
        if auditor is not None:
            # The resident reference must never abort mid-advance.
            auditor.fail_fast = False
        self.context = context if context is not None else ForkContext()
        #: Where the template was born (an image's capture instant, or
        #: 0 for a from-scratch reference).  It can never serve a fork
        #: position before this.
        self.start_position = system.sim.now
        self._dumps: Dict[float, bytes] = {}
        self._trace_seen = collect_shared(self.context, system, auditor)
        #: Wall-clock spent advancing the reference (shared work).
        self.advance_seconds = 0.0
        #: Wall-clock spent encoding dumps (amortized over forks).
        self.dump_seconds = 0.0
        self.forks = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_image(cls, image, context: Optional[ForkContext] = None
                   ) -> "ForkTemplate":
        """Thaw a template from a warm-start image (decoded **once**;
        every fork of the group reuses the resident copy)."""
        from ..warmstart.image import resume
        system, auditor = resume(image, fail_fast=False)
        return cls(system, auditor, context=context)

    @classmethod
    def from_reference(cls, config, schedule,
                       context: Optional[ForkContext] = None
                       ) -> "ForkTemplate":
        """Build a template by constructing the fault-free reference
        directly (no image set needed — the serial path)."""
        from ..audit.auditor import OnlineAuditor
        from ..audit.campaign import build_audit_system
        from ..audit.schedule import FaultSchedule
        probe = FaultSchedule(label="flock-ref",
                              system_seed=schedule.system_seed,
                              overrides=tuple(sorted(schedule.overrides)),
                              origin="flock")
        system = build_audit_system(config, probe)
        auditor = OnlineAuditor(
            system, fail_fast=False,
            include_ground_truth=config.include_ground_truth)
        return cls(system, auditor, context=context)

    # ------------------------------------------------------------------
    @property
    def position(self) -> float:
        return self.system.sim.now

    @property
    def clean(self) -> bool:
        """Whether the reference has produced no finding yet."""
        return self.auditor is None or not self.auditor.violated

    def advance_to(self, t: float) -> bool:
        """Advance the resident reference to ``t`` (monotone).

        Returns whether the template is clean (dumpable) afterwards.
        A violated template stops advancing — its current state is
        useless for forking, so running it further is wasted work.
        """
        if not self.clean:
            return False
        if t > self.position:
            begin = time.monotonic()
            while self.position < t:
                self.system.run(
                    until=min(t, self.position + ADVANCE_CHECK_INTERVAL))
                if not self.clean:
                    break
            self._trace_seen = collect_shared(
                self.context, self.system, self.auditor, self._trace_seen)
            self.advance_seconds += time.monotonic() - begin
        return self.clean

    # ------------------------------------------------------------------
    def dump(self) -> bytes:
        """The (cached) dump of the current clean position."""
        if not self.clean:
            raise RuntimeError("refusing to dump a violated reference "
                               "(forks would inherit its finding)")
        key = round(self.position, 6)
        data = self._dumps.get(key)
        if data is None:
            begin = time.monotonic()
            data = self.context.dumps(
                {"system": self.system, "auditor": self.auditor})
            self.dump_seconds += time.monotonic() - begin
            self._dumps[key] = data
        return data

    def dump_positions(self) -> List[float]:
        """Positions with a cached dump (ascending)."""
        return sorted(self._dumps)

    def dump_at(self, position: float) -> Optional[bytes]:
        """The newest cached dump at or before ``position``, with its
        position — or ``None`` when nothing early enough is cached."""
        best: Optional[float] = None
        for key in self._dumps:
            if key <= position + FORK_EPS and (best is None or key > best):
                best = key
        if best is None:
            return None
        return self._dumps[best]

    # ------------------------------------------------------------------
    def fork(self, data: Optional[bytes] = None,
             fail_fast: bool = True) -> Tuple[object, object]:
        """Thaw one independent ``(system, auditor)`` fork.

        ``data`` selects a cached dump (default: the current position).
        The fork's auditor switches to the campaign's fail-fast mode;
        the caller arms the schedule's faults on the copy, exactly as
        the warm path arms them on a thawed image.
        """
        if data is None:
            data = self.dump()
        state = self.context.loads(data)
        system, auditor = state["system"], state["auditor"]
        if auditor is not None:
            auditor.fail_fast = fail_fast
        self.forks += 1
        return system, auditor

    def stats(self) -> Dict[str, float]:
        return {
            "forks": self.forks,
            "dumps": len(self._dumps),
            "dump_bytes": sum(len(d) for d in self._dumps.values()),
            "shared_objects": len(self.context),
            "advance_seconds": round(self.advance_seconds, 6),
            "dump_seconds": round(self.dump_seconds, 6),
        }
