"""Suffix-fork batch execution of audit campaigns.

:class:`FlockRunner` is the batch layer over
:class:`~repro.flock.template.ForkTemplate`: it groups a campaign's
schedules by warm-start prefix (``PrefixKey`` digest — same config,
seed, and timing overrides), makes one resident template per group
(thawed **once** from a warm-start image, or built directly from the
reference config), and executes the group's schedules back-to-back as
cheap forks while the template advances monotonically along the
reference timeline.  Groups run largest-first, so a worker keeps one
template resident at a time and the biggest amortization happens first.

Within a group, three things are recycled across forks on top of the
shared-object table itself:

* the **view memo** (:func:`~repro.analysis.global_state
  .install_view_cache`) — prefix checkpoints decode to auditor views
  once per group instead of once per fork;
* the **chain-resolution memo** (:func:`~repro.snapshot.sections
  .install_resolve_cache`) — prefix delta chains replay once;
* one **event pool** — each fork's kernel acquires from the previous
  fork's free list, keeping the hot event objects resident.

Everything observable is bit-for-bit identical to the warm and cold
paths: findings, error strings, shrink results, trace digests.  The
property tests and the bench's digest cross-checks are the oracle.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..errors import AuditViolation
from ..warmstart.engine import MIN_GROUP, divergence_time
from ..warmstart.store import ImageStore, PrefixKey
from .template import FORK_EPS, FORK_QUANTUM, ForkTemplate, fork_position

#: Default shard size for parallel flock campaigns: groups larger than
#: this are split so one hot prefix still spreads across workers.
DEFAULT_FORK_BATCH = 32


class FlockRunner:
    """Flock execution of one campaign's schedules (drop-in for
    :class:`~repro.warmstart.engine.WarmRunner` where it matters:
    ``plan`` / ``audit_schedule`` / ``traced_audit`` / ``violates`` /
    ``stats``)."""

    def __init__(self, config, store: Optional[ImageStore] = None,
                 timeline=None, min_group: int = MIN_GROUP,
                 fork_batch: int = DEFAULT_FORK_BATCH,
                 build_missing: bool = True) -> None:
        self.config = config
        self.store = store
        self.timeline = timeline
        self.min_group = min_group
        self.fork_batch = max(1, int(fork_batch))
        #: Whether a missing template may be built from a direct
        #: reference run (workers consuming a pre-built image store
        #: turn this off and degrade to cold instead).
        self.build_missing = build_missing
        self._templates: Dict[str, ForkTemplate] = {}
        self._group_counts: Dict[str, int] = {}
        # Runner-lifetime memo dicts: entries pin their keys, so they
        # stay valid across groups; shrink replays profit most.
        self._view_cache: Dict = {}
        self._resolve_cache: Dict = {}
        self._pool = None
        self.flock_runs = 0
        self.cold_runs = 0
        self.templates_built = 0
        self.decode_seconds = 0.0
        self.build_seconds = 0.0
        self.fork_seconds = 0.0
        self.run_seconds = 0.0

    # ------------------------------------------------------------------
    # planning and grouping
    # ------------------------------------------------------------------
    def _key(self, schedule) -> PrefixKey:
        return PrefixKey.for_schedule(self.config, schedule)

    def plan(self, schedules) -> None:
        """Count prefix-group sizes (the template-worthiness signal).

        Recounts from scratch, so planning the same campaign twice
        (``run_audit`` plans, then hands the batch to ``run_batch``,
        which plans again) cannot inflate singleton groups past the
        ``min_group`` gate."""
        counts: Dict[str, int] = {}
        for sched in schedules:
            digest = self._key(sched).digest()
            counts[digest] = counts.get(digest, 0) + 1
        self._group_counts = counts

    def groups(self, schedules) -> List[List[int]]:
        """Campaign schedule indices grouped by prefix, largest group
        first; within a group, divergence-ascending (the template's
        advancement order)."""
        by_digest: Dict[str, List[int]] = {}
        for idx, sched in enumerate(schedules):
            by_digest.setdefault(self._key(sched).digest(), []).append(idx)
        ordered = sorted(by_digest.values(),
                         key=lambda idxs: (-len(idxs), idxs[0]))
        for idxs in ordered:
            idxs.sort(key=lambda i: (divergence_time(schedules[i]), i))
        return ordered

    def shards(self, schedules) -> List[List[int]]:
        """Groups split into ``fork_batch``-sized chunks for parallel
        dispatch (one resident template per chunk per worker)."""
        shards: List[List[int]] = []
        for idxs in self.groups(schedules):
            for at in range(0, len(idxs), self.fork_batch):
                shards.append(idxs[at:at + self.fork_batch])
        return shards

    # ------------------------------------------------------------------
    # template lifecycle
    # ------------------------------------------------------------------
    def _template_for(self, schedule, force: bool = False
                      ) -> Optional[ForkTemplate]:
        digest = self._key(schedule).digest()
        template = self._templates.get(digest)
        if template is not None:
            return template
        if not force and self._group_counts.get(digest, 0) < self.min_group:
            return None
        template = self._make_template(schedule)
        if template is not None:
            self._templates[digest] = template
            self.templates_built += 1
        return template

    def _make_template(self, schedule) -> Optional[ForkTemplate]:
        if self.store is not None:
            # Start no later than the group's earliest fork position
            # (groups execute divergence-ascending, so this schedule's
            # position is the earliest the template must serve).
            position = fork_position(divergence_time(schedule),
                                     self.config.horizon)
            image = self.store.latest_before(self._key(schedule),
                                             position + FORK_EPS)
            if image is not None:
                begin = time.monotonic()
                template = ForkTemplate.from_image(image)
                self.decode_seconds += time.monotonic() - begin
                return template
        if not self.build_missing:
            return None
        begin = time.monotonic()
        template = ForkTemplate.from_reference(self.config, schedule)
        self.build_seconds += time.monotonic() - begin
        return template

    def ensure_template(self, schedule) -> None:
        """Force-build the template for ``schedule``'s prefix and
        pre-dump at each of its fault instants.

        The shrink hook: every shrink candidate keeps a subset of the
        violator's faults, so its divergence time is one of the
        violator's fault instants — pre-dumping there (ascending) lets
        candidates fork no matter which order the shrinker tries them
        in, even though template advancement is monotone.
        """
        times = [spec.activate_at for spec in schedule.software]
        times += [spec.crash_at for spec in schedule.crashes]
        if not times:
            # Override-only violator: its reference *is* the violating
            # run (useless as a template), and candidates that drop an
            # override leave the prefix group anyway.  Let the shrink
            # replay cold.
            return
        self._install_caches()
        try:
            template = self._template_for(schedule, force=True)
            if template is None:
                return
            positions = sorted({fork_position(t, self.config.horizon)
                                for t in times})
            for position in positions:
                if (position < FORK_QUANTUM
                        or position < template.start_position
                        or position < template.position):
                    continue
                if not template.advance_to(position):
                    break
                template.dump()
        finally:
            self._remove_caches()

    def release(self) -> None:
        """Drop resident templates (end of campaign / shrink phase)."""
        self._templates.clear()

    # ------------------------------------------------------------------
    # cache scope
    # ------------------------------------------------------------------
    def _install_caches(self) -> None:
        from ..analysis.global_state import install_view_cache
        from ..snapshot.sections import install_resolve_cache
        install_view_cache(self._view_cache)
        install_resolve_cache(self._resolve_cache)
        if self._pool is None:
            from ..sim.events import EventPool
            self._pool = EventPool()

    def _remove_caches(self) -> None:
        from ..analysis.global_state import install_view_cache
        from ..snapshot.sections import install_resolve_cache
        install_view_cache(None)
        install_resolve_cache(None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fork_for(self, template: ForkTemplate, schedule):
        """A thawed ``(system, auditor)`` fork positioned strictly
        before ``schedule``'s divergence — or ``None`` when no clean
        fork position is reachable (cold fallback)."""
        position = fork_position(divergence_time(schedule),
                                 self.config.horizon)
        if position < FORK_QUANTUM or position < template.start_position:
            return None
        data: Optional[bytes] = None
        if position >= template.position and template.advance_to(position):
            data = template.dump()
        else:
            data = template.dump_at(position)
        if data is None:
            return None
        begin = time.monotonic()
        system, auditor = template.fork(data, fail_fast=True)
        system.sim._pool = self._pool
        schedule.arm(system)
        self.fork_seconds += time.monotonic() - begin
        return system, auditor

    def audit_schedule(self, schedule, fail_fast: bool = True):
        """Flock-or-cold audit of one schedule (cold-identical
        findings).  Mirrors ``WarmRunner.audit_schedule``."""
        return self.traced_audit(schedule, fail_fast=fail_fast)[0]

    def traced_audit(self, schedule, fail_fast: bool = False,
                     force_template: bool = False):
        """Audit one schedule, returning ``(findings, system)`` — the
        system with its full trace (prefix records travel in the fork),
        for the bench's digest cross-checks.

        The group-scoped caches are installed only around template
        advancement and forked execution, where prefix objects are
        genuinely shared; a cold fallback runs bare (caching a run's
        private payloads costs an extra encode per miss and can never
        hit).
        """
        from ..audit.auditor import OnlineAuditor
        from ..audit.campaign import build_audit_system
        template = self._template_for(schedule, force=force_template)
        if template is not None:
            self._install_caches()
            try:
                forked = self._fork_for(template, schedule)
                if forked is not None:
                    self.flock_runs += 1
                    system, auditor = forked
                    auditor.fail_fast = fail_fast
                    return self._execute(system, auditor)
            finally:
                self._remove_caches()
        self.cold_runs += 1
        system = build_audit_system(self.config, schedule)
        auditor = OnlineAuditor(
            system, fail_fast=fail_fast,
            include_ground_truth=self.config.include_ground_truth)
        return self._execute(system, auditor)

    def _execute(self, system, auditor):
        begin = time.monotonic()
        try:
            system.run()
        except AuditViolation:
            pass
        try:
            auditor.finalize()
        except AuditViolation:
            pass
        self.run_seconds += time.monotonic() - begin
        return auditor.findings, system

    def violates(self, schedule) -> bool:
        """Flock drop-in for the shrink predicate (crashed replays are
        non-violating, matching ``schedule_violates``)."""
        try:
            return bool(self.audit_schedule(schedule, fail_fast=True))
        except Exception:
            return False

    def run_batch(self, schedules) -> List[Dict]:
        """Execute a whole campaign serially: grouped, largest group
        first, one resident template per group.  Returns result dicts
        (in input order) shaped exactly like the campaign workers'."""
        self.plan(schedules)
        results: List[Optional[Dict]] = [None] * len(schedules)
        for idxs in self.groups(schedules):
            for idx in idxs:
                results[idx] = self._run_one(schedules[idx])
        return [r for r in results if r is not None]

    def _run_one(self, schedule) -> Dict:
        before = self.flock_runs
        try:
            findings = self.audit_schedule(schedule, fail_fast=True)
        except Exception as exc:  # simulation bug — report, don't abort
            return {"schedule": schedule.to_dict(), "violated": False,
                    "findings": [],
                    "error": f"{type(exc).__name__}: {exc}",
                    "flock": self.flock_runs > before}
        return {"schedule": schedule.to_dict(),
                "violated": bool(findings),
                "findings": [f.to_dict() for f in findings],
                "error": None,
                "flock": self.flock_runs > before}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters and the per-phase timing breakdown."""
        stats: Dict[str, float] = {
            "flock_runs": self.flock_runs,
            "cold_runs": self.cold_runs,
            "templates_built": self.templates_built,
            "flock_groups": len(self._group_counts),
            "decode_seconds": round(self.decode_seconds, 6),
            "build_seconds": round(self.build_seconds, 6),
            "fork_seconds": round(self.fork_seconds, 6),
            "run_seconds": round(self.run_seconds, 6),
        }
        forks = dumps = dump_bytes = shared = 0
        advance = encode = 0.0
        for template in self._templates.values():
            tstats = template.stats()
            forks += tstats["forks"]
            dumps += tstats["dumps"]
            dump_bytes += tstats["dump_bytes"]
            shared += tstats["shared_objects"]
            advance += tstats["advance_seconds"]
            encode += tstats["dump_seconds"]
        stats.update({
            "forks": forks, "dumps": dumps, "dump_bytes": dump_bytes,
            "shared_objects": shared,
            "advance_seconds": round(advance, 6),
            "dump_encode_seconds": round(encode, 6),
        })
        if self._pool is not None:
            stats["pool_reused"] = self._pool.reused
        if self.store is not None:
            stats.update(self.store.stats())
        return stats


def _run_flock_shard(item) -> List[Dict]:
    """Worker: flock-audit one shard of schedules off one template.

    The coordinator pre-built image sets into the on-disk store at
    ``root``; the worker thaws its shard's template from the newest
    usable image exactly once and forks every schedule from it.
    """
    from ..audit.config import AuditConfig
    from ..audit.schedule import FaultSchedule
    config_dict, schedule_dicts, root, fork_batch = item
    config = AuditConfig.from_dict(config_dict)
    schedules = [FaultSchedule.from_dict(d) for d in schedule_dicts]
    store = ImageStore(root=root) if root else None
    runner = FlockRunner(config, store=store, fork_batch=fork_batch,
                         build_missing=store is None)
    return runner.run_batch(schedules)
