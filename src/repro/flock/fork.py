"""Memo-seeded fast cloning of ``(system, auditor)`` pairs.

A flock group runs many schedule suffixes off one resident template
(:class:`~repro.flock.template.ForkTemplate`).  Each fork must be a
fully independent copy — same contract as ``resume(capture(system))``
— but the naive route (re-pickle the whole object graph per schedule)
re-encodes hundreds of kilobytes that every fork shares with the
template: the frozen configs, the topology, the workload action
streams, the trace records accumulated so far, every already-written
checkpoint.  :class:`ForkContext` is the table of those *fork-safe*
objects: the fork pickler swaps each of them for a small table
reference, and the unpickler resolves the reference back to the very
same object.

Fork safety rule (the contract a ``share`` call asserts): an object may
be shared only if **nothing reachable exclusively through it is
mutated** by any fork, by the template's further advancement, or by a
later fork's run.  Immutable values (frozen dataclasses whose fields
are themselves safe, strings, bytes) qualify trivially; mutable
containers qualify only when the code base replaces them wholesale
instead of mutating them in place (the
:class:`~repro.sim.rng.BatchedUniform` prefetch block, a workload
driver's action list).  Anything a fork writes to — journals, message
logs, RNG streams, the event heap, the per-system message-id allocator,
live component state — must stay private and travel through the pickle
payload.

The table is **grow-only**: dumps taken while the table held ``n``
entries reference only indices ``< n``, so they stay decodable after
the template advances and registers more objects.  This is what lets a
shrink search fork from *earlier* cached dumps after the template has
moved past them.

Strings are additionally shared *by value*: profiling the dump of a
mid-run system shows short strings (process ids, section names, trace
labels, dict keys) are the single largest class of repeated pickle
work.  Strings are immutable, so value-sharing is always safe.
"""

from __future__ import annotations

import io
import pickle
import random
from typing import Any, Dict, Iterable, List

#: Strings shorter than this inline cheaper than a table reference.
SHARED_STR_MIN = 8


class ForkContext:
    """Grow-only shared-object table backing one template's forks."""

    def __init__(self) -> None:
        #: The table itself.  Holding strong references is load-bearing
        #: twice over: dumps stay decodable for the template's
        #: lifetime, and no id is ever reused while it is a key below.
        self._objects: List[Any] = []
        self._index_by_id: Dict[int, int] = {}
        self._index_by_str: Dict[str, int] = {}
        #: RNG streams are shared by *state snapshot*, not by object:
        #: each fork must get its own Random (draws in one fork must
        #: not perturb another), but the 625-word Mersenne state at
        #: fork time is identical across the whole flock, so it lives
        #: in the table once per advancement instead of once per dump.
        self._rng_index_by_id: Dict[int, int] = {}
        self._rng_refs: List[random.Random] = []

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    def share(self, obj: Any) -> None:
        """Register one fork-safe object (idempotent)."""
        key = id(obj)
        if key not in self._index_by_id:
            self._index_by_id[key] = len(self._objects)
            self._objects.append(obj)

    def share_all(self, objects: Iterable[Any]) -> None:
        for obj in objects:
            self.share(obj)

    def share_rng(self, rng: random.Random) -> None:
        """Snapshot ``rng``'s current state into the table.

        Dumps taken from now on encode the stream as a reference to
        this snapshot; each load materialises a *fresh* ``Random`` from
        it.  Re-registering after the stream has drawn appends a new
        snapshot (grow-only: earlier dumps keep decoding to the state
        they were taken at)."""
        state = rng.getstate()
        idx = self._rng_index_by_id.get(id(rng))
        if idx is not None and self._objects[idx] == state:
            return
        self._rng_index_by_id[id(rng)] = len(self._objects)
        self._rng_refs.append(rng)     # pin the id for the table's life
        self._objects.append(state)

    # ------------------------------------------------------------------
    def _persistent_id(self, obj: Any):
        # Exact-type checks: a str/list *subclass* may carry extra
        # mutable state the table must not alias.
        if type(obj) is str:
            if len(obj) < SHARED_STR_MIN:
                return None
            idx = self._index_by_str.get(obj)
            if idx is None:
                idx = len(self._objects)
                self._objects.append(obj)
                self._index_by_str[obj] = idx
            return idx
        if type(obj) is random.Random:
            idx = self._rng_index_by_id.get(id(obj))
            if idx is not None:
                return ("r", idx)
        return self._index_by_id.get(id(obj))

    def dumps(self, state: Any) -> bytes:
        """Encode ``state`` with shared objects as table references."""
        buffer = io.BytesIO()
        _ForkPickler(buffer, self).dump(state)
        return buffer.getvalue()

    def loads(self, data: bytes) -> Any:
        """Decode a dump; table references resolve to the originals."""
        return _ForkUnpickler(io.BytesIO(data), self).load()


class _ForkPickler(pickle.Pickler):
    def __init__(self, buffer, context: ForkContext) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._context = context

    def persistent_id(self, obj: Any):
        return self._context._persistent_id(obj)


class _ForkUnpickler(pickle.Unpickler):
    def __init__(self, buffer, context: ForkContext) -> None:
        super().__init__(buffer)
        self._objects = context._objects
        # One fresh Random per snapshot *per load*: every reference to
        # a stream inside one dump (the registry entry, a clock's
        # `_rng`, a BatchedUniform's bound `random`) must resolve to
        # the same object, or the fork's draw sequence diverges.
        self._rng_cache: Dict[int, random.Random] = {}

    def persistent_load(self, pid: Any):
        if type(pid) is int:
            return self._objects[pid]
        idx = pid[1]
        rng = self._rng_cache.get(idx)
        if rng is None:
            rng = random.Random()
            rng.setstate(self._objects[idx])
            self._rng_cache[idx] = rng
        return rng


def collect_shared(context: ForkContext, system, auditor=None,
                   trace_seen: int = 0) -> int:
    """Register everything fork-safe reachable from ``system``.

    Called when a template is born and again after every advancement
    (``share`` is idempotent; only genuinely new objects append).
    ``trace_seen`` is how many trace records were already registered;
    returns the new count so callers can pass it back next time.

    What qualifies — and why (the safety argument per class):

    * ``system.config`` / ``system.topology`` — frozen dataclasses,
      never mutated after construction.
    * workload action lists — built once by ``generate_actions``;
      drivers move a cursor over them, never mutate the list.
    * trace records — :class:`~repro.sim.trace.TraceRecord` objects
      are written once and only read afterwards.  (The recorder's
      *list* grows, so the list itself stays private.)
    * checkpoints — frozen; stores replace/trim entries but never
      mutate a stored checkpoint.  Sharing the checkpoint shares its
      whole payload graph (the dominant bytes).
    * encoder chain tips — ``SectionPayload`` is frozen; suffix
      captures extend the chain with private payloads whose ``base``
      points at these shared ones.
    * the network's ``BatchedUniform`` prefetch block — refills replace
      ``_buf`` wholesale (never in place), so the block at fork time is
      final; each fork consumes it through a private index.
    * *settled* transmissions — ``_deliver`` runs exactly once per
      transmission, so once ``delivered``/``dropped`` is set the record
      and its message are frozen (resends go through
      ``clone_for_resend``, never mutating the original message).
      In-flight transmissions stay private: the suffix still flips
      their flags.
    * RNG stream *states* (not the streams) — see
      :meth:`ForkContext.share_rng`.  The registry's streams cover the
      clocks' and the network's draws, the bulk of a mid-run dump.
    """
    context.share(system.config)
    topology = getattr(system, "topology", None)
    if topology is not None:
        context.share(topology)
    for process in system.process_list():
        actions = getattr(process.driver, "_actions", None)
        if actions is not None:
            context.share(actions)
    records = system.trace._records
    context.share_all(records[trace_seen:])
    for node in system.nodes.values():
        context.share_all(node.volatile._latest.values())
        for chain in node.stable._chain.values():
            context.share_all(chain)
    for process in system.process_list():
        encoder = process.snapshot_encoder
        for tip in encoder._tips.values():
            node = tip
            while node is not None:
                context.share(node)
                node = node.base
        # Delta baselines are snapshots built at capture time and only
        # ever *replaced*; the mapping dicts stay private (reset clears
        # them in place).
        context.share_all(encoder._journal_baselines.values())
        context.share_all(encoder._log_baselines.values())
        # Validated journal records are frozen: ``validated`` is the
        # only field ever written after construction, and it is
        # one-way (a validated record's validity "can never change
        # again" — repro.journal).  Unvalidated records stay private.
        for journal in (process.journal_sent, process.journal_recv):
            for record in journal._records.values():
                if record.validated:
                    context.share(record)
    delay = getattr(system.network, "_delay", None)
    if delay is not None and getattr(delay, "_buf", None):
        context.share(delay._buf)
    for tx in system.network._transmissions:
        if tx.delivered or tx.dropped:
            context.share(tx)
    context.share_all(system.network.device_log)
    registry = getattr(system, "rng", None)
    if registry is not None:
        for stream in registry._streams.values():
            context.share_rng(stream)
    return len(records)
