"""The topology value object: who runs where, under which guard.

The paper fixes the membership at three processes — ``P1_act`` (the
low-confidence version of component 1), ``P1_sdw`` (its high-confidence
shadow) and ``P2`` (the second component).  :class:`Topology` lifts that
shape into data: **N guarded components** with **K shadows each**, plus
**U unguarded peers**, each member carrying a stable role id, a node id,
a confidence rank and the workload-stream / driver names the builders
derive everything else from.

``Topology.paper()`` reproduces the paper shape exactly — same role
ids, node ids, stream names and construction order as the historical
hard-coded builder — so the golden Fig. 6 trace digests key off its
:meth:`~Topology.fingerprint` and stay bit-for-bit identical.

Topologies are written as specs: ``"paper"``, ``"NxK"`` (N components,
K shadows each, N peers) or ``"NxK+U"`` (explicit peer count).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Dict, List, Optional, Tuple


class MemberKind(enum.Enum):
    """What a member is to the protocol."""

    ACTIVE = "active"    #: low-confidence version of a guarded component
    SHADOW = "shadow"    #: high-confidence replica shadowing an active
    PEER = "peer"        #: unguarded (high-confidence) service process


@dataclasses.dataclass(frozen=True)
class Member:
    """One process slot in a topology.

    ``rank`` orders shadows within a component for the takeover
    election (lower rank = higher confidence = preferred successor);
    actives carry rank 0 and peers their 1-based peer index.
    """

    role_id: str        #: stable process id ("P1_act", "C2_sdw1", ...)
    node_id: str        #: the node hosting this member
    kind: MemberKind
    component: int      #: 1-based guarded component, 0 for peers
    rank: int
    stream: str         #: workload action-stream name
    driver: str         #: workload driver (and acceptance-test) name

    def to_dict(self) -> Dict[str, object]:
        return {"role_id": self.role_id, "node_id": self.node_id,
                "kind": self.kind.value, "component": self.component,
                "rank": self.rank}


@dataclasses.dataclass(frozen=True)
class Topology:
    """An immutable membership description.

    Members are ordered: component 1's active, its shadows by rank,
    component 2's active, ... then the peers.  Builders iterate this
    order, which is what makes ``Topology.paper()`` construction
    byte-identical to the historical three-literal builder.
    """

    members: Tuple[Member, ...]
    spec: str

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "Topology":
        """The paper's shape: 1 component, 1 shadow, 1 unguarded peer,
        with the historical role/node/stream names."""
        members = (
            Member("P1_act", "N1a", MemberKind.ACTIVE, 1, 0,
                   "component1", "P1act"),
            Member("P1_sdw", "N1b", MemberKind.SHADOW, 1, 1,
                   "component1", "P1sdw"),
            Member("P2", "N2", MemberKind.PEER, 0, 1, "component2", "P2"),
        )
        return cls(members=members, spec="paper")

    @classmethod
    def general(cls, components: int, shadows: int,
                peers: Optional[int] = None) -> "Topology":
        """``components`` guarded components x ``shadows`` shadows each,
        plus ``peers`` unguarded peers (default: ``components``)."""
        if components < 1 or shadows < 1:
            raise ValueError("a topology needs >= 1 component and >= 1 shadow")
        n_peers = components if peers is None else peers
        if n_peers < 1:
            raise ValueError("a topology needs >= 1 unguarded peer "
                             "(the high-confidence service mesh)")
        members: List[Member] = []
        for c in range(1, components + 1):
            stream = f"component{c}"
            members.append(Member(f"C{c}_act", f"N{c}a", MemberKind.ACTIVE,
                                  c, 0, stream, f"C{c}_act"))
            for r in range(1, shadows + 1):
                members.append(Member(f"C{c}_sdw{r}", f"N{c}s{r}",
                                      MemberKind.SHADOW, c, r, stream,
                                      f"C{c}_sdw{r}"))
        for j in range(1, n_peers + 1):
            members.append(Member(f"P{j}", f"NP{j}", MemberKind.PEER,
                                  0, j, f"peer{j}", f"P{j}"))
        spec = (f"{components}x{shadows}" if n_peers == components
                else f"{components}x{shadows}+{n_peers}")
        return cls(members=tuple(members), spec=spec)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def is_paper(self) -> bool:
        return self.spec == "paper"

    @property
    def n_components(self) -> int:
        return sum(1 for m in self.members if m.kind is MemberKind.ACTIVE)

    @property
    def n_shadows(self) -> int:
        """Shadows per component (uniform by construction)."""
        counts = [len(self.shadows_of(c))
                  for c in range(1, self.n_components + 1)]
        return counts[0] if counts else 0

    @property
    def n_peers(self) -> int:
        return len(self.peers())

    @property
    def size(self) -> int:
        return len(self.members)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def member(self, role_id: str) -> Member:
        for m in self.members:
            if m.role_id == role_id:
                return m
        raise KeyError(f"no member {role_id!r} in topology {self.spec!r}")

    def actives(self) -> Tuple[Member, ...]:
        return tuple(m for m in self.members if m.kind is MemberKind.ACTIVE)

    def peers(self) -> Tuple[Member, ...]:
        return tuple(m for m in self.members if m.kind is MemberKind.PEER)

    def shadows_of(self, component: int) -> Tuple[Member, ...]:
        """A component's shadows, by election preference (rank)."""
        return tuple(sorted((m for m in self.members
                             if m.kind is MemberKind.SHADOW
                             and m.component == component),
                            key=lambda m: (m.rank, m.role_id)))

    def active_of(self, component: int) -> Member:
        for m in self.members:
            if m.kind is MemberKind.ACTIVE and m.component == component:
                return m
        raise KeyError(f"no component {component} in topology {self.spec!r}")

    def component_members(self, component: int) -> Tuple[Member, ...]:
        return tuple(m for m in self.members if m.component == component
                     and m.kind is not MemberKind.PEER)

    def node_ids(self) -> Tuple[str, ...]:
        """All node ids, in member order (builders create nodes in this
        order; audit boundary schedules iterate it)."""
        return tuple(m.node_id for m in self.members)

    def role_ids(self) -> Tuple[str, ...]:
        return tuple(m.role_id for m in self.members)

    def members_on(self, node_id: str) -> Tuple[Member, ...]:
        return tuple(m for m in self.members if m.node_id == node_id)

    def exempt_role_ids(self) -> Tuple[str, ...]:
        """Role ids whose state is never a recovery basis (the
        low-confidence actives) — the consistency-line checkers exempt
        these as receivers."""
        return tuple(m.role_id for m in self.actives())

    def guarded_pairs(self) -> Dict[str, Tuple[str, ...]]:
        """Derived consistency-line structure: each active role id
        mapped to its shadows' role ids in election order."""
        return {self.active_of(c).role_id:
                tuple(s.role_id for s in self.shadows_of(c))
                for c in range(1, self.n_components + 1)}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, object]:
        """Canonical JSON-able description (fingerprint input)."""
        return {"spec": self.spec,
                "members": [m.to_dict() for m in self.members]}

    def fingerprint(self) -> str:
        """Stable 16-hex-digit identity for cache and golden keys."""
        blob = json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def __str__(self) -> str:
        return self.spec


def parse_topology(spec: str) -> Topology:
    """Parse a topology spec: ``"paper"``, ``"NxK"`` or ``"NxK+U"``.

    >>> parse_topology("2x2").size
    8
    >>> parse_topology("2x2+3").n_peers
    3
    """
    text = spec.strip().lower()
    if text == "paper":
        return Topology.paper()
    peers: Optional[int] = None
    if "+" in text:
        text, _, peer_text = text.partition("+")
        try:
            peers = int(peer_text)
        except ValueError:
            raise ValueError(f"bad topology spec {spec!r}: peer count "
                             f"{peer_text!r} is not an integer")
    parts = text.split("x")
    if len(parts) != 2:
        raise ValueError(f"bad topology spec {spec!r}: expected "
                         "'paper', 'NxK' or 'NxK+U'")
    try:
        components, shadows = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"bad topology spec {spec!r}: N and K must be "
                         "integers")
    return Topology.general(components, shadows, peers)
