"""Deterministic shadow-takeover election.

When a guarded component's active is condemned (failed acceptance test
or heartbeat timeout) one of its shadows must take over — and the
shadow preferred by configuration may itself be crashed or already
deposed.  The election is bully-style and fully deterministic: among
the component's live, in-service shadows the winner is the one with
the **lowest confidence rank**, ties broken by **lowest role id**.
Every correct observer of the same :class:`~repro.topology.view.GroupView`
therefore elects the same successor without exchanging messages, which
is what lets the simulated and live backends agree decision-for-decision.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .model import Topology

#: Member availability states a view reports to the election.
UP = "up"
CRASHED = "crashed"
DEPOSED = "deposed"


def eligible(status: str) -> bool:
    """Whether a member in ``status`` can stand for election."""
    return status == UP


def elect_successor(topology: Topology, component: int,
                    statuses: Mapping[str, str]) -> Optional[str]:
    """Elect the takeover shadow for ``component``.

    ``statuses`` maps role ids to ``"up"`` / ``"crashed"`` /
    ``"deposed"`` (missing entries default to ``"up"``).  Returns the
    winning shadow's role id, or ``None`` when no shadow is eligible
    (the caller then defers recovery until one restarts).
    """
    candidates = [s for s in topology.shadows_of(component)
                  if eligible(statuses.get(s.role_id, UP))]
    if not candidates:
        return None
    winner = min(candidates, key=lambda s: (s.rank, s.role_id))
    return winner.role_id
