"""N-component/K-shadow membership model.

The paper fixes a three-process shape — ``P1_act``, ``P1_sdw``,
``P2`` — and the rest of the repo historically hard-coded those names.
This package makes the shape a first-class value: a
:class:`~repro.topology.model.Topology` describes N guarded components
with K shadows each plus unguarded peers; a
:class:`~repro.topology.view.GroupView` tracks epoch-numbered
membership as nodes crash and recover; and a deterministic election
(:mod:`repro.topology.election`) picks takeover successors so the
system survives a shadow itself crashing.  ``Topology.paper()`` is the
exact paper shape and reproduces every pinned result bit-for-bit.
"""

from .election import CRASHED, DEPOSED, UP, elect_successor, eligible
from .engines import (TopologyActiveEngine, TopologyPeerEngine,
                      TopologyShadowEngine, TopologyTakeoverEngine)
from .model import Member, MemberKind, Topology, parse_topology
from .recovery import TopologyRecoveryManager
from .view import GroupView

__all__ = [
    "CRASHED", "DEPOSED", "UP",
    "GroupView", "Member", "MemberKind", "Topology",
    "TopologyActiveEngine", "TopologyPeerEngine", "TopologyShadowEngine",
    "TopologyTakeoverEngine", "TopologyRecoveryManager",
    "elect_successor", "eligible", "parse_topology",
]
