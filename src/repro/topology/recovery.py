"""Per-component software recovery with deterministic shadow election.

The paper's single :class:`~repro.mdcd.recovery.SoftwareRecoveryManager`
promotes *the* shadow when *the* active fails.  With N guarded
components and K shadows each, recovery becomes per-component: when a
component's active is condemned, the takeover target is chosen by the
deterministic election (:mod:`repro.topology.election`) over the
current :class:`~repro.topology.view.GroupView` — so the system
survives the preferred shadow itself being crashed, and every observer
agrees on the successor.  The losing shadows of the recovered
component are retired (their suppressed logs mirror a producer that no
longer exists); the other components stay guarded and untouched — in
the topology interaction shape their states carry no provenance from
the failed component, so the paper's locality argument applies
component-wise.

A peer's failed acceptance test implicates every source in its taint
map: each such component is recovered (contamination could have
originated at any of them — the conservative reading of detection
without attribution).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from ..errors import RecoveryError
from ..messages.message import Message
from ..types import MessageKind, RecoveryAction
from .engines import TopologyTakeoverEngine
from .model import MemberKind, Topology
from .view import GroupView


class TopologyRecoveryManager:
    """Coordinates shadow takeovers across an N-component topology.

    Installed on every process as ``process.recovery_manager``;
    engines escalate failed ATs here.  Holds only picklable references
    (processes, the view, bound methods) so systems warm-start.
    """

    def __init__(self, topology: Topology, view: GroupView,
                 members: Dict[str, object], incarnation, trace) -> None:
        self.topology = topology
        self.view = view
        self.members = dict(members)
        self.incarnation = incarnation
        self.trace = trace
        #: Components whose takeover has completed.
        self.completed: Dict[int, bool] = {}
        #: Components whose takeover waits for a shadow node restart.
        self.deferred: Dict[int, bool] = {}
        #: Last-recovery bookkeeping, aggregated over components.
        self.decisions: Dict[object, RecoveryAction] = {}
        self.distances: Dict[object, float] = {}
        self.resent = 0
        self.suppressed = 0

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach this manager to every process."""
        for proc in self.members.values():
            proc.recovery_manager = self

    def recover(self, detected_by, failed_message: Message) -> None:
        """Run takeovers for every component the detection implicates."""
        for component in self._suspect_components(detected_by):
            self._recover_component(component, detected_by, failed_message)

    # ------------------------------------------------------------------
    def _suspect_components(self, detected_by) -> List[int]:
        """Which components a failed AT at ``detected_by`` implicates."""
        role_id = str(detected_by.process_id)
        member = self.topology.member(role_id)
        if member.kind is not MemberKind.PEER:
            return [member.component]
        # A peer's state went bad: any source in its taint map could be
        # the origin.  An empty map (possible only under imperfect AT
        # coverage) implicates every still-guarded component.
        taint = detected_by.mdcd.taint_map or {}
        suspects = sorted(
            self.topology.member(src).component for src in taint
            if src in {m.role_id for m in self.topology.actives()})
        if suspects:
            return suspects
        return [c for c in range(1, self.topology.n_components + 1)
                if not self.completed.get(c)]

    def _component_shadows(self, component: int):
        return [self.members[s.role_id]
                for s in self.topology.shadows_of(component)]

    def _peer_processes(self):
        return [self.members[p.role_id] for p in self.topology.peers()]

    def _deferred_recover(self, component: int, detected_by,
                          failed_message: Message, _node) -> None:
        self._recover_component(component, detected_by, failed_message)

    def _recover_component(self, component: int, detected_by,
                           failed_message: Message) -> None:
        sim = detected_by.sim
        if self.completed.get(component):
            self.trace.record(sim.now, "recovery.software.duplicate",
                              detected_by.process_id, component=component)
            return
        active = self.members[self.topology.active_of(component).role_id]
        winner_id = self.view.elect(component)
        if winner_id is None or self.members[winner_id].node.crashed:
            # Coincident software + hardware faults took out every
            # eligible shadow.  Fail-stop the faulty active now (no
            # further contamination) and defer the takeover until any
            # of the component's shadow nodes restarts — the hardware
            # recovery on that restart (its listener registered
            # earlier) rolls the survivors back first, then the
            # deferred takeover re-runs the election.
            if not active.deposed:
                active.depose()
                self.view.note_deposed(str(active.process_id))
            if not self.deferred.get(component):
                self.deferred[component] = True
                self.trace.record(sim.now, "recovery.software.deferred",
                                  detected_by.process_id, component=component)
                for shadow in self._component_shadows(component):
                    shadow.node.on_restart(functools.partial(
                        self._deferred_recover, component, detected_by,
                        failed_message))
            return
        self.deferred[component] = False
        self.completed[component] = True
        winner = self.members[winner_id]
        self.trace.record(sim.now, "recovery.software.start",
                          detected_by.process_id, component=component,
                          elected=winner_id, failed=failed_message.describe())
        # Fence off every message of the failed incarnation.
        self.incarnation.bump()
        if not active.deposed:
            active.depose()
        self.view.note_deposed(str(active.process_id))

        # Local decisions: the elected shadow plus every peer.  Other
        # components' members carry no provenance from this one (no
        # application traffic flows into a guarded component), so the
        # paper's local rule has nothing to decide for them.
        for proc in [winner] + self._peer_processes():
            self._local_decision(proc)

        self._promote(component, winner)
        self._retire_losing_shadows(component, winner_id)
        self._resend_unacknowledged()
        active.mdcd.guarded = False
        if not any(not self.completed.get(c)
                   for c in range(1, self.topology.n_components + 1)):
            # The last guarded component left service: MDCD goes on
            # leave everywhere (paper Section 4.2, last paragraph).
            for proc in self._peer_processes():
                proc.mdcd.guarded = False
        self.trace.record(
            sim.now, "recovery.software.done", None, component=component,
            elected=winner_id, epoch=self.view.epoch,
            decisions={str(k): v.value for k, v in self.decisions.items()},
            resent=self.resent, suppressed=self.suppressed)

    # ------------------------------------------------------------------
    def _local_decision(self, proc) -> None:
        """The paper's local rule: dirty -> rollback, clean -> forward."""
        if proc.node.crashed:
            proc.counters.bump("recovery.decision_skipped_crashed")
            return
        if proc.mdcd.dirty_bit == 1:
            checkpoint = proc.volatile_checkpoint()
            if checkpoint is None:
                checkpoint = proc.node.stable.peek(proc.process_id)
                proc.counters.bump("recovery.degraded_fallback")
                proc.trace.record(proc.sim.now, "recovery.degraded_fallback",
                                  proc.process_id)
            if checkpoint is None:
                raise RecoveryError(f"{proc.process_id} is dirty but has "
                                    "no checkpoint to roll back to")
            self.distances[proc.process_id] = proc.restore_from(
                checkpoint, "software")
            self.decisions[proc.process_id] = RecoveryAction.ROLLBACK
        else:
            proc.roll_forward("software")
            self.decisions[proc.process_id] = RecoveryAction.ROLL_FORWARD

    def _promote(self, component: int, shadow) -> None:
        """Re-send the unvalidated suppressed log and switch the
        elected shadow to post-takeover behaviour."""
        vr = shadow.mdcd.vr
        to_resend = shadow.msg_log.entries_after(vr)
        if vr is not None:
            self.suppressed += shadow.msg_log.reclaim_up_to(vr)
        for entry in to_resend:
            message = entry.message
            if message.kind is MessageKind.EXTERNAL:
                shadow.send_external(message.payload, validated=True)
            else:
                shadow.send_internal(message.payload, entry.destinations(),
                                     sn=message.sn, dirty_bit=0,
                                     validated=True, ndc=shadow.current_ndc())
            self.resent += 1
        shadow.msg_log.clear()
        peer_ids = [p.process_id for p in self._peer_processes()]
        shadow.software = TopologyTakeoverEngine(shadow, peers=peer_ids)
        shadow.mdcd.guarded = False
        self.view.note_promoted(str(shadow.process_id))
        shadow.driver.resume()

    def _retire_losing_shadows(self, component: int, winner_id: str) -> None:
        """Depose the component's remaining shadows: their suppressed
        logs mirror a producer that no longer exists."""
        for spec in self.topology.shadows_of(component):
            if spec.role_id == winner_id:
                continue
            proc = self.members[spec.role_id]
            if not proc.deposed:
                proc.depose()
            proc.mdcd.guarded = False
            self.view.note_deposed(spec.role_id)

    def _resend_unacknowledged(self) -> None:
        """Re-send in-service survivors' unacknowledged messages under
        the new incarnation (receivers deduplicate); drop messages
        addressed to deposed members."""
        deposed = {pid for pid, proc in
                   ((p.process_id, p) for p in self.members.values())
                   if proc.deposed}
        for proc in self.members.values():
            if proc.deposed or proc.node.crashed:
                continue
            for message in proc.acks.unacknowledged():
                if message.receiver in deposed:
                    proc.acks.acked(message.msg_id)
                    continue
                proc.resend(message)
