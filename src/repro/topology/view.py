"""Epoch-numbered group view.

A :class:`GroupView` tracks which members of a :class:`~repro.topology
.model.Topology` are currently in service.  Every membership change —
a node crash, a restart, a deposition after takeover, a shadow
promotion — installs a new **view epoch**; epochs are monotone by
construction, and each member records the epoch at which its own
status last changed, so observers can order membership events without
wall clocks.

View changes emit ``view.change`` trace records.  The category is
deliberately *not* part of the golden digest set
(:data:`repro.audit.golden.GOLDEN_CATEGORIES`), so wiring a view into
the paper-shape system cannot perturb the pinned Fig. 6 digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .election import CRASHED, DEPOSED, UP, elect_successor
from .model import MemberKind, Topology


class GroupView:
    """Mutable membership state over an immutable topology.

    ``clock`` is any object with a ``now`` attribute (the simulator);
    held by reference — not a closure — so views pickle into
    warm-start images.
    """

    def __init__(self, topology: Topology, trace=None, clock=None) -> None:
        self.topology = topology
        self.trace = trace
        self._clock = clock
        self.epoch = 0
        self.status: Dict[str, str] = {m.role_id: UP for m in topology.members}
        #: Epoch at which each member's status last changed.
        self.changed_at: Dict[str, int] = {m.role_id: 0
                                           for m in topology.members}
        #: Promoted shadows, by component (role id of the acting active).
        self.promoted: Dict[int, str] = {}
        #: (epoch, role_id, status) history, for audits and tests.
        self.history: List[Tuple[int, str, str]] = []

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def _change(self, role_id: str, status: str, reason: str,
                force: bool = False) -> int:
        if self.status.get(role_id) == status and not force:
            return self.epoch
        self.epoch += 1
        self.status[role_id] = status
        self.changed_at[role_id] = self.epoch
        self.history.append((self.epoch, role_id, status))
        if self.trace is not None and self.trace.wants("view.change"):
            now = self._clock.now if self._clock is not None else 0.0
            self.trace.record(now, "view.change", None, epoch=self.epoch,
                              member=role_id, status=status, reason=reason)
        return self.epoch

    # ------------------------------------------------------------------
    # node-listener adapters (bound methods, so they pickle)
    # ------------------------------------------------------------------
    def _on_node_crash(self, node) -> None:
        self.node_crashed(str(node.node_id))

    def _on_node_restart(self, node) -> None:
        self.node_restarted(str(node.node_id))

    def note_crash(self, role_id: str) -> int:
        """A member's node crashed."""
        return self._change(role_id, CRASHED, "crash")

    def note_restart(self, role_id: str) -> int:
        """A crashed member's node came back (deposed members stay
        deposed — restart does not re-seat them)."""
        if self.status.get(role_id) == DEPOSED:
            return self.epoch
        return self._change(role_id, UP, "restart")

    def note_deposed(self, role_id: str) -> int:
        """A member was taken out of service by recovery."""
        return self._change(role_id, DEPOSED, "deposed")

    def note_promoted(self, role_id: str) -> int:
        """A shadow was elected and took over as its component's
        acting active."""
        member = self.topology.member(role_id)
        self.promoted[member.component] = role_id
        # Promotion installs a new view even though the shadow was
        # already up: the *acting active* of the component changed.
        return self._change(role_id, UP, "promoted", force=True)

    def node_crashed(self, node_id: str) -> int:
        """Mark every member hosted on ``node_id`` crashed."""
        epoch = self.epoch
        for m in self.topology.members_on(node_id):
            epoch = self.note_crash(m.role_id)
        return epoch

    def node_restarted(self, node_id: str) -> int:
        """Mark every member hosted on ``node_id`` back up."""
        epoch = self.epoch
        for m in self.topology.members_on(node_id):
            epoch = self.note_restart(m.role_id)
        return epoch

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_up(self, role_id: str) -> bool:
        return self.status.get(role_id) == UP

    def in_service(self) -> Tuple[str, ...]:
        """Role ids currently up (crashed and deposed excluded)."""
        return tuple(m.role_id for m in self.topology.members
                     if self.status[m.role_id] == UP)

    def acting_active(self, component: int) -> Optional[str]:
        """The role currently serving as ``component``'s active: the
        promoted shadow if a takeover happened, else the configured
        active unless deposed."""
        promoted = self.promoted.get(component)
        if promoted is not None:
            return promoted if self.status[promoted] != DEPOSED else None
        configured = self.topology.active_of(component).role_id
        return configured if self.status[configured] != DEPOSED else None

    def elect(self, component: int) -> Optional[str]:
        """Run the deterministic takeover election for ``component``
        against the current view (see
        :func:`repro.topology.election.elect_successor`)."""
        statuses = dict(self.status)
        for role_id in self.promoted.values():
            member = self.topology.member(role_id)
            if member.kind is MemberKind.SHADOW:
                # An already-promoted shadow cannot stand again.
                statuses[role_id] = DEPOSED
        return elect_successor(self.topology, component, statuses)
