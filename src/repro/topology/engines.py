"""MDCD engines for N-component/K-shadow topologies, with per-source
contamination provenance.

The generalized single-component engines (:mod:`repro.general.engines`)
track provenance as one scalar ``taint_sn`` because there is a single
low-confidence producer.  With **N guarded components** there are N
independent sequence-number spaces, so provenance becomes a **map**:
``{active role id -> highest influencing sequence number}``.  Every
dirty message piggybacks its sender's map; a validation broadcasts a
*bound map* of what it certifies per source; a process is cleaned —
and a journal record validated — **iff every entry of the relevant
taint map is covered by the bound map**.

Interaction shape.  Guarded components are *ingress* points: each
active produces traffic into the unguarded peer mesh (stimulus-routed,
mirrored by its shadows' suppressed logs), peers exchange traffic among
themselves (the edges along which multi-source contamination mixes),
and no application traffic flows *into* a guarded component — so an
active/shadow group's states stay aligned action-for-action and the
per-component consistency line is exactly the paper's.  Validations
flow everywhere: an active's AT certifies its own frontier
(``{self: msg_SN}``), a peer's AT certifies the merged frontier of
everything it absorbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..app.acceptance import AcceptanceTest
from ..app.workload import Action
from ..messages.message import Message
from ..mdcd.base import MdcdEngineBase
from ..types import CheckpointKind, MessageKind, ProcessId


def route(stimulus: int, targets: List[ProcessId]) -> ProcessId:
    """Deterministic stimulus-based routing (shared by an active and
    its shadows so their message streams stay aligned)."""
    return targets[stimulus % len(targets)]


def merge_bounds(a: Optional[Dict[str, int]],
                 b: Optional[Dict[str, int]]) -> Dict[str, int]:
    """Per-source maximum of two bound maps."""
    merged: Dict[str, int] = dict(a or {})
    for src, sn in (b or {}).items():
        if sn is not None and sn > merged.get(src, -1):
            merged[src] = sn
    return merged


def covered_by(taint: Dict[str, int], bounds: Dict[str, int]) -> bool:
    """Whether every entry of ``taint`` is certified by ``bounds``."""
    return all(src in bounds and sn <= bounds[src]
               for src, sn in taint.items())


class TopologyActiveEngine(MdcdEngineBase):
    """A guarded component's low-confidence active.

    The paper's Fig. 8 algorithm with stimulus-routed peer addressing
    and a per-source bound map on its validation broadcasts.  The
    stale-``msg_SN`` conservatism guard is kept (unlike the
    single-component generalized engine, whose audience topology makes
    the unconditional reset safe): a peer's bound map certifies this
    active's messages only up to its recorded frontier, and newer
    allocations mean the current state depends on an unvalidated
    produce.
    """

    variant = "mdcd-topology"

    def __init__(self, process, at: AcceptanceTest,
                 shadows: List[ProcessId], peers: List[ProcessId]) -> None:
        super().__init__(process, at=at, ndc_gating=True)
        self.member_id = str(process.process_id)
        self.shadows = list(shadows)
        self.peers = list(peers)
        process.mdcd.dirty_bit = 1        # constant during guarded operation
        process.mdcd.pseudo_dirty_bit = 0
        self.trace("confidence.dirty", bit="dirty", reason="guarded-active")

    def _validate_own(self, bound: Optional[int]) -> None:
        """Validate own-sent journal records up to ``bound``."""
        if bound is None:
            return
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                if (rec.sender == self.process.process_id
                        and rec.sn is not None and rec.sn <= bound):
                    rec.validated = True
        self.process.flush_deferred_acks()

    def on_send_internal(self, action: Action) -> None:
        """Pseudo-checkpoint before the first internal send of a
        suspicion window, then send dirty to the routed peer."""
        if self.mdcd.pseudo_dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.PSEUDO, meta={"trigger": "first-internal-send"})
        payload = self.process.component.produce_internal(action.stimulus)
        if self.mdcd.pseudo_dirty_bit == 0:
            self.set_pseudo_dirty(1, reason="internal-send")
        sn = self.process.sn.allocate()
        self.process.send_internal(payload, [route(action.stimulus, self.peers)],
                                   sn=sn, dirty_bit=1, validated=False,
                                   ndc=self.process.current_ndc())

    def on_send_external(self, action: Action) -> None:
        """AT-test; on success broadcast the validation — with this
        active's bound map — to its shadows and every peer."""
        payload = self.process.component.produce_external(action.stimulus)
        if not self.run_acceptance_test(payload):
            self.process.request_software_recovery(
                Message(kind=MessageKind.EXTERNAL, sender=self.process.process_id,
                        receiver=ProcessId("DEVICE"), payload=payload,
                        corrupt=payload.corrupt,
                        msg_id=self.process.msg_ids.allocate()))
            return
        self.set_pseudo_dirty(0, reason="own-at")
        self.process.sn.allocate()
        bound = self.process.sn.current
        self._validate_own(bound)
        self.process.send_external(payload, validated=True)
        self.process.send_passed_at(self.shadows + self.peers, msg_sn=bound,
                                    ndc=self.process.current_ndc(),
                                    bound_map={self.member_id: bound})
        self._notify_validation(type2=True)

    def on_passed_at(self, message: Message) -> None:
        """Reset the pseudo dirty bit iff the Ndc matches *and* the
        notification's bound map covers every sequence number allocated
        so far (the stale-``msg_SN`` guard, per-source form)."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        bounds = message.taint_map or {}
        my_bound = bounds.get(self.member_id)
        if my_bound is None and str(message.sender) == self.member_id:
            my_bound = message.sn
        if my_bound is None:
            # Certifies none of this active's messages.
            self.process.counters.bump("passed_at.uncovered")
            return
        if self.mdcd.pseudo_dirty_bit == 1 and my_bound < self.process.sn.current:
            self.process.counters.bump("passed_at.stale_sn")
            self._validate_own(my_bound)
            return
        self.set_pseudo_dirty(0, reason="passed-at")
        self._validate_own(my_bound)
        self._notify_validation(type2=True)

    def on_incoming_app(self, message: Message) -> None:
        """Topology actives receive no routed application traffic;
        apply defensively without a checkpoint."""
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class TopologyShadowEngine(MdcdEngineBase):
    """A guarded component's high-confidence shadow (by rank).

    Suppresses with the active's routing so the logs stay aligned,
    and advances its valid message register from any validation whose
    bound map covers its own active.
    """

    variant = "mdcd-topology"

    def __init__(self, process, active_id: ProcessId,
                 peers: List[ProcessId]) -> None:
        super().__init__(process, at=None, ndc_gating=True)
        self.active_id = str(active_id)
        self.peers = list(peers)

    def _suppress(self, action: Action, kind: MessageKind) -> None:
        """Log the would-be message with its routed recipients."""
        produce = (self.process.component.produce_internal
                   if kind is MessageKind.INTERNAL
                   else self.process.component.produce_external)
        payload = produce(action.stimulus)
        sn = self.process.sn.allocate()
        if kind is MessageKind.INTERNAL:
            recipients = [route(action.stimulus, self.peers)]
        else:
            recipients = [ProcessId("DEVICE")]
        suppressed = Message(kind=kind, sender=self.process.process_id,
                             receiver=recipients[0], payload=payload, sn=sn,
                             dirty_bit=self.mdcd.dirty_bit,
                             corrupt=payload.corrupt,
                             msg_id=self.process.msg_ids.allocate())
        self.process.msg_log.append(sn, suppressed, recipients=recipients)
        self.process.counters.bump("suppressed")

    def on_send_internal(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.INTERNAL)

    def on_send_external(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.EXTERNAL)

    def on_passed_at(self, message: Message) -> None:
        """Ndc-gated: advance ``VR`` monotonically from the bound map's
        entry for this shadow's active and reclaim the log up to it."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        bounds = message.taint_map or {}
        bound = bounds.get(self.active_id)
        if bound is None and str(message.sender) == self.active_id:
            bound = message.sn
        if bound is not None:
            if self.mdcd.vr is None or bound > self.mdcd.vr:
                self.mdcd.vr = bound
            self.process.msg_log.reclaim_up_to(bound)
        was_dirty = self.mdcd.dirty_bit == 1
        self.set_dirty(0, reason="passed-at")
        self._notify_validation(type2=was_dirty)

    def on_incoming_app(self, message: Message) -> None:
        """Defensive: topology shadows receive no application traffic."""
        if message.dirty_bit == 1 and self.mdcd.dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
            self.set_dirty(1, reason="dirty-receive")
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class TopologyPeerEngine(MdcdEngineBase):
    """An unguarded peer in the mesh, tracking per-source provenance.

    Receives stimulus-routed traffic from every active (implicit
    provenance ``{sender: sn}``) and from fellow peers (piggybacked
    taint maps), mixes the two on its own dirty sends, and certifies
    the merged frontier when its own acceptance test passes.
    """

    variant = "mdcd-topology"

    def __init__(self, process, at: AcceptanceTest,
                 active_ids: List[ProcessId],
                 other_peers: List[ProcessId],
                 notification_recipients: List[ProcessId]) -> None:
        super().__init__(process, at=at, ndc_gating=True)
        self.active_ids = {str(pid) for pid in active_ids}
        self.other_peers = list(other_peers)
        self.notification_recipients = list(notification_recipients)

    # ------------------------------------------------------------------
    # provenance-map helpers
    # ------------------------------------------------------------------
    def _taint(self) -> Dict[str, int]:
        return self.mdcd.taint_map or {}

    def _vr_map(self) -> Dict[str, int]:
        return self.mdcd.vr_map or {}

    def message_taint(self, message: Message) -> Dict[str, int]:
        """A message's provenance: the sender's own (role, sn) for
        active senders, merged with any piggybacked map."""
        taint = dict(message.taint_map or {})
        sender = str(message.sender)
        if sender in self.active_ids and message.sn is not None:
            taint = merge_bounds(taint, {sender: message.sn})
        return taint

    def record_taint(self, rec) -> Dict[str, int]:
        """A journal record's provenance (same rule as messages)."""
        taint = dict(rec.taint_map or {})
        sender = str(rec.sender)
        if sender in self.active_ids and rec.sn is not None:
            taint = merge_bounds(taint, {sender: rec.sn})
        return taint

    def validated_at_receipt(self, message: Message) -> bool:
        """Whether an incoming message is already covered by the
        per-source valid-bound registers."""
        if message.dirty_bit in (0, None):
            return True
        taint = self.message_taint(message)
        if not taint:
            # Dirty with no traceable provenance: stay suspicious.
            return False
        return covered_by(taint, self._vr_map())

    def _note_source_sn(self, sender: str, sn: Optional[int]) -> None:
        if sn is None:
            return
        seen = dict(self.mdcd.msg_sn_map or {})
        if sn > seen.get(sender, -1):
            seen[sender] = sn
            self.mdcd.msg_sn_map = seen

    def apply_validation(self, bounds: Dict[str, int]) -> bool:
        """Apply a validation: advance the valid-bound registers,
        validate covered records, clean iff the whole taint map is
        covered.  Returns whether a dirty state was cleaned."""
        self.mdcd.vr_map = merge_bounds(self._vr_map(), bounds)
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                rec_taint = self.record_taint(rec)
                if rec.sent_dirty == 0 or (rec_taint
                                           and covered_by(rec_taint, bounds)):
                    rec.validated = True
        was_dirty = self.mdcd.dirty_bit == 1
        if was_dirty and covered_by(self._taint(), bounds):
            self.mdcd.taint_map = {}
            self.set_dirty(0, reason="passed-at-covered")
            self._validate_everything()
            self.process.flush_deferred_acks()
            return True
        if was_dirty:
            self.process.counters.bump("passed_at.uncovered")
        self.process.flush_deferred_acks()
        return False

    def certify_own_state(self) -> Dict[str, int]:
        """My own AT passed: certify everything absorbed from every
        source.  Returns the bound map to broadcast."""
        bounds = merge_bounds(self.mdcd.msg_sn_map, self._taint())
        self.mdcd.taint_map = {}
        self.mdcd.vr_map = merge_bounds(self._vr_map(), bounds)
        self.set_dirty(0, reason="own-at")
        self._validate_everything()
        self.process.flush_deferred_acks()
        return bounds

    def _validate_everything(self) -> None:
        """A fully clean state reflects only valid messages."""
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                rec.validated = True

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def on_send_internal(self, action: Action) -> None:
        """Stimulus-routed send to a fellow peer, taint piggybacked
        while dirty."""
        payload = self.process.component.produce_internal(action.stimulus)
        if not self.other_peers:
            self.process.counters.bump("sent.no_route")
            return
        dirty = self.mdcd.dirty_bit
        self.process.send_internal(
            payload, [route(action.stimulus, self.other_peers)],
            sn=None, dirty_bit=dirty, validated=(dirty == 0),
            ndc=self.process.current_ndc(),
            taint_map=self._taint() if dirty else None)

    def on_send_external(self, action: Action) -> None:
        """AT-test while dirty; on success certify the whole frontier
        and broadcast its bound map."""
        payload = self.process.component.produce_external(action.stimulus)
        if self.mdcd.dirty_bit == 1:
            if not self.run_acceptance_test(payload):
                self.process.request_software_recovery(
                    Message(kind=MessageKind.EXTERNAL,
                            sender=self.process.process_id,
                            receiver=ProcessId("DEVICE"), payload=payload,
                            corrupt=payload.corrupt,
                            msg_id=self.process.msg_ids.allocate()))
                return
            bounds = self.certify_own_state()
            self.process.send_external(payload, validated=True)
            self.process.send_passed_at(
                list(self.notification_recipients), msg_sn=None,
                ndc=self.process.current_ndc(), bound_map=bounds)
            self._notify_validation(type2=True)
        else:
            self.process.send_external(payload, validated=True)

    def on_passed_at(self, message: Message) -> None:
        """Ndc-gated per-source validation."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        bounds = dict(message.taint_map or {})
        sender = str(message.sender)
        if sender in self.active_ids and message.sn is not None:
            bounds = merge_bounds(bounds, {sender: message.sn})
        for src, sn in bounds.items():
            self._note_source_sn(src, sn)
        cleaned = self.apply_validation(bounds)
        self._notify_validation(type2=cleaned)

    def on_incoming_app(self, message: Message) -> None:
        """Provenance-aware receive: Type-1 anchor before the first
        uncovered suspicion, absorb the taint map."""
        valid_now = self.validated_at_receipt(message)
        if not valid_now:
            if self.mdcd.dirty_bit == 0:
                self.process.take_volatile_checkpoint(
                    CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
                self.set_dirty(1, reason="dirty-receive")
            self.mdcd.taint_map = merge_bounds(self._taint(),
                                               self.message_taint(message))
        sender = str(message.sender)
        if sender in self.active_ids:
            self._note_source_sn(sender, message.sn)
        self.process.apply_app_message(message, validated=valid_now)


class TopologyTakeoverEngine(MdcdEngineBase):
    """A promoted shadow's post-takeover behaviour: clean routed sends,
    no acceptance tests — its component leaves guarded operation."""

    variant = "mdcd-topology-takeover"

    def __init__(self, process, peers: List[ProcessId]) -> None:
        super().__init__(process, at=None, ndc_gating=True)
        self.peers = list(peers)
        process.mdcd.guarded = False
        process.mdcd.dirty_bit = 0

    def on_send_internal(self, action: Action) -> None:
        """Clean (born-valid) routed send."""
        payload = self.process.component.produce_internal(action.stimulus)
        sn = self.process.sn.allocate()
        self.process.send_internal(payload,
                                   [route(action.stimulus, self.peers)],
                                   sn=sn, dirty_bit=0, validated=True,
                                   ndc=self.process.current_ndc())

    def on_send_external(self, action: Action) -> None:
        """Direct external send — no acceptance test post-takeover."""
        payload = self.process.component.produce_external(action.stimulus)
        self.process.send_external(payload, validated=True)

    def on_passed_at(self, message: Message) -> None:
        """Notifications are rare post-takeover; nothing to validate."""
        if self.ndc_matches(message):
            self.process.flush_deferred_acks()

    def on_incoming_app(self, message: Message) -> None:
        """Apply; peers only send this component clean traffic now."""
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))
