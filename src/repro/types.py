"""Shared small types used across the :mod:`repro` packages.

This module holds the vocabulary of the paper: process roles, checkpoint
types, message kinds, and a few type aliases.  Keeping them in one place
prevents import cycles between the protocol packages.
"""

from __future__ import annotations

import enum
from typing import NewType

#: Simulated "true" time, in seconds.  The simulator's master clock.
TrueTime = NewType("TrueTime", float)

#: A local (possibly drifting) clock reading, in seconds.
LocalTime = NewType("LocalTime", float)

#: Identifier of a simulated node (hardware host).
NodeId = NewType("NodeId", str)

#: Identifier of a simulated process.
ProcessId = NewType("ProcessId", str)


class Role(enum.Enum):
    """The three process roles of the paper's system model (Section 2.1).

    * ``ACTIVE_1`` — ``P1_act``: the active process running the
      low-confidence version of component 1.  It drives the external
      world and interacts with ``P2``.
    * ``SHADOW_1`` — ``P1_sdw``: the shadow process running the
      high-confidence version of component 1.  Its outgoing messages are
      suppressed and logged; it takes over if ``P1_act`` fails an AT.
    * ``PEER_2`` — ``P2``: the (active) process of the second,
      high-confidence component.
    """

    ACTIVE_1 = "P1_act"
    SHADOW_1 = "P1_sdw"
    PEER_2 = "P2"

    @property
    def is_component_one(self) -> bool:
        """Whether this role belongs to the guarded component (1)."""
        return self in (Role.ACTIVE_1, Role.SHADOW_1)


class CheckpointKind(enum.Enum):
    """Classification of checkpoints, following the paper's terminology.

    * ``TYPE_1`` — volatile checkpoint taken *immediately before* a
      process state becomes potentially contaminated (Fig. 1).
    * ``TYPE_2`` — volatile checkpoint taken *right after* a potentially
      contaminated state is validated by an acceptance test (original
      MDCD only; removed by the modified protocol of Section 3).
    * ``PSEUDO`` — ``P1_act``'s volatile checkpoint driven by the
      ``pseudo_dirty_bit`` in the modified protocol (Fig. 3).
    * ``STABLE`` — a stable-storage checkpoint written by a TB protocol
      (timer-driven) or by the write-through baseline (passed-AT-driven).
    """

    TYPE_1 = "type-1"
    TYPE_2 = "type-2"
    PSEUDO = "pseudo"
    STABLE = "stable"


class StableContent(enum.Enum):
    """What the adapted TB protocol wrote into a stable checkpoint.

    * ``CURRENT_STATE`` — the process state at timer expiry (clean
      process, original-TB behaviour).
    * ``VOLATILE_COPY`` — a copy of the most recent volatile checkpoint
      (dirty process).
    * ``SWAPPED_TO_CURRENT`` — the copy was aborted mid-blocking because
      a "passed AT" with matching ``Ndc`` arrived, and the current state
      was written instead (Fig. 6(b)).
    """

    CURRENT_STATE = "current-state"
    VOLATILE_COPY = "volatile-copy"
    SWAPPED_TO_CURRENT = "swapped-to-current"


class MessageKind(enum.Enum):
    """Kinds of messages exchanged in the simulated system.

    * ``INTERNAL`` — application-purpose message between processes;
      conveys intermediate computation results.
    * ``EXTERNAL`` — message to an external system/device; subject to
      acceptance testing when the sender is potentially contaminated.
    * ``PASSED_AT`` — broadcast notification that an acceptance test
      succeeded; carries the sender's message sequence number and its
      stable-checkpoint epoch ``Ndc``.
    * ``ACK`` — network-level acknowledgement (used by the TB protocols
      to track unacknowledged messages).
    """

    INTERNAL = "internal"
    EXTERNAL = "external"
    PASSED_AT = "passed_AT"
    ACK = "ack"


class RecoveryAction(enum.Enum):
    """A process's local decision during software error recovery."""

    ROLLBACK = "rollback"
    ROLL_FORWARD = "roll-forward"


class FaultKind(enum.Enum):
    """Categories of injected faults."""

    SOFTWARE_DESIGN = "software-design"
    HARDWARE_CRASH = "hardware-crash"
