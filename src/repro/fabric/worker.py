"""The per-host worker agent: fetch once, fork locally, report back.

A worker is one process per host.  It connects to the supervisor,
registers, and then pulls shards in a request/execute/report loop.
Execution reuses the **exact** module-level worker functions the
in-process pool paths use (:func:`repro.audit.campaign._run_one_schedule`,
:func:`repro.warmstart.engine._run_one_schedule_warm`,
:func:`repro.flock.runner._run_flock_shard`) — the fabric changes where
schedules run, never what a schedule computes, which is what makes the
bit-for-bit-equal-to-serial acceptance tests hold by construction.

Shards execute on a background thread while the connection thread keeps
sending heartbeats — a shard that takes seconds must not look like a
dead host.  Image sets needed by warm/flock shards resolve through the
local content-addressed :class:`~repro.fabric.cas.BlobStore` before the
wire: a digest already cached (from an earlier shard, an earlier
campaign, or a co-located worker sharing the cache dir) is a
``cas_hit``; only a genuinely new digest costs a ``transfer``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .cas import BlobStore
from .protocol import (FABRIC_VERSION, FabricProtocolError, FrameChannel,
                       expect, frame)


def execute_shard(config_dict: Dict[str, Any],
                  schedule_dicts: List[Dict[str, Any]], *,
                  mode: str = "cold",
                  images_root: Optional[str] = None,
                  fork_batch: int = 32) -> List[Dict[str, Any]]:
    """Run one shard exactly as the in-process pool paths would.

    This is the fabric's execution-equivalence seam: the supervisor's
    degradation path and every worker call the same function, and the
    function delegates to the same per-schedule workers the serial and
    ``parallel_map`` paths use.
    """
    if mode == "flock":
        from ..flock.runner import _run_flock_shard
        return _run_flock_shard(
            (config_dict, schedule_dicts, images_root, fork_batch))
    if mode == "warm" and images_root is not None:
        from ..warmstart.engine import _run_one_schedule_warm
        return [_run_one_schedule_warm((config_dict, d, images_root))
                for d in schedule_dicts]
    from ..audit.campaign import _run_one_schedule
    return [_run_one_schedule((config_dict, d)) for d in schedule_dicts]


class _ShardThread(threading.Thread):
    """Run one shard off-thread so heartbeats keep flowing."""

    def __init__(self, fn: Callable[[], List[Dict[str, Any]]]) -> None:
        super().__init__(daemon=True)
        self.results: Optional[List[Dict[str, Any]]] = None
        self.error: Optional[str] = None
        self._fn = fn

    def run(self) -> None:  # pragma: no cover - thread body
        try:
            self.results = self._fn()
        except Exception as exc:  # report upstream; supervisor requeues
            self.error = f"{type(exc).__name__}: {exc}"


class FabricWorker:
    """One host's agent: connect, pull shards, execute, heartbeat."""

    def __init__(self, name: Optional[str] = None, *,
                 cas: Optional[BlobStore] = None,
                 cas_root: Optional[str] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if cas is None and cas_root is None:
            raise ValueError("worker needs a cas= store or cas_root=")
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.cas = cas if cas is not None else BlobStore(cas_root)
        self._emit = log or (lambda _msg: None)
        # Cumulative across campaigns — the transfer-exactly-once
        # assertions read these after back-to-back campaigns.
        self.transfers = 0
        self.cas_hits = 0
        self.shards = 0
        self.schedules_run = 0
        self.campaigns = 0

    @property
    def images_dir(self) -> Path:
        """Where fetched image sets materialize for ``ImageStore``
        consumption.  Keyed by prefix digest (which already encodes the
        config fingerprint), so one directory serves every campaign."""
        return self.cas.root / "images"

    # ------------------------------------------------------------------
    def run(self, host: str, port: int, *,
            retry_delay: float = 0.5,
            connect_timeout: Optional[float] = None,
            once: bool = False) -> Dict[str, Any]:
        """Serve campaigns until ``once`` completes one (or forever).

        Connection loss mid-campaign retries — the supervisor may have
        been restarted over its journal and will hand out only the
        remaining shards.  ``connect_timeout`` bounds how long the
        worker keeps retrying a refused/absent supervisor.
        """
        started = time.monotonic()
        served = False
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=10.0)
            except OSError:
                if once and served:
                    # A dedicated agent whose supervisor is gone: the
                    # campaign ended without us (a duplicate of our
                    # last shard won the steal race).  Nothing left to
                    # serve — exit instead of burning the retry budget.
                    return self.stats()
                if connect_timeout is not None and \
                        time.monotonic() - started > connect_timeout:
                    raise TimeoutError(
                        f"no supervisor at {host}:{port} "
                        f"within {connect_timeout}s")
                time.sleep(retry_delay)
                continue
            served = True
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = FrameChannel(sock)
            try:
                finished = self._serve_campaign(channel)
            except (ConnectionError, OSError, FabricProtocolError) as exc:
                self._emit(f"worker {self.name}: connection lost ({exc}); "
                           "retrying")
                finished = False
            finally:
                channel.close()
            if finished:
                self.campaigns += 1
                started = time.monotonic()
                if once:
                    return self.stats()
            time.sleep(retry_delay)

    # ------------------------------------------------------------------
    def _serve_campaign(self, channel: FrameChannel) -> bool:
        """One connection's dialogue; True if the campaign completed."""
        channel.send(frame("hello", worker=self.name,
                           host=socket.gethostname(), pid=os.getpid(),
                           version=FABRIC_VERSION))
        welcome = channel.recv(timeout=30.0)
        if welcome is None:
            raise FabricProtocolError("no welcome from supervisor")
        body = expect(welcome, "welcome", "error")
        if body["type"] == "error":
            raise FabricProtocolError(
                f"supervisor refused: {body.get('reason')}")
        config = dict(body["config"])
        mode = str(body["mode"])
        fork_batch = int(body.get("fork_batch", 32))
        heartbeat = float(body.get("heartbeat_interval", 0.25))
        idle_delay = float(body.get("idle_delay", 0.2))
        self._emit(f"worker {self.name}: joined campaign "
                   f"{body.get('campaign')} (mode={mode})")

        channel.send(frame("request"))
        while True:
            incoming = channel.recv(timeout=30.0)
            if incoming is None:
                raise FabricProtocolError("supervisor went quiet")
            task = expect(incoming, "task", "idle", "done", "error")
            kind = task["type"]
            if kind == "done":
                return True
            if kind == "error":
                raise FabricProtocolError(
                    f"supervisor error: {task.get('reason')}")
            if kind == "idle":
                time.sleep(idle_delay)
                channel.send(frame("heartbeat"))
                channel.send(frame("request"))
                continue
            self._run_task(channel, task, config, mode, fork_batch,
                           heartbeat)
            channel.send(frame("request"))

    def _run_task(self, channel: FrameChannel, task: Dict[str, Any],
                  config: Dict[str, Any], mode: str, fork_batch: int,
                  heartbeat: float) -> None:
        shard_id = int(task["shard"])
        schedule_dicts = list(task["schedules"])
        images_root: Optional[str] = None
        for prefix, digest in dict(task.get("blobs") or {}).items():
            self._ensure_image_set(channel, str(prefix), str(digest))
        if mode in ("warm", "flock"):
            images_root = str(self.images_dir)
        runner = _ShardThread(lambda: execute_shard(
            config, schedule_dicts, mode=mode, images_root=images_root,
            fork_batch=fork_batch))
        runner.start()
        while runner.is_alive():
            runner.join(timeout=heartbeat)
            if runner.is_alive():
                channel.send(frame("heartbeat", shard=shard_id))
        if runner.error is not None:
            channel.send(frame("shard-failed", shard=shard_id,
                               error=runner.error))
            return
        self.shards += 1
        self.schedules_run += len(schedule_dicts)
        channel.send(frame("result", shard=shard_id,
                           results=runner.results, stats=self.stats()))

    # ------------------------------------------------------------------
    def _ensure_image_set(self, channel: FrameChannel, prefix: str,
                          digest: str) -> None:
        """Make ``<images>/<prefix>.imgset`` exist, cheapest path first:
        already materialized > local CAS > one wire transfer."""
        target = self.images_dir / f"{prefix}.imgset"
        if target.is_file():
            self.cas_hits += 1
            return
        data = self.cas.get(digest)
        if data is not None:
            self.cas_hits += 1
        else:
            channel.send(frame("blob-get", digest=digest))
            header = channel.recv(timeout=60.0)
            if header is None:
                raise FabricProtocolError(f"no blob reply for {digest}")
            data = channel.recv_blob(expect(header, "blob"), timeout=60.0)
            self.cas.put(data)
            self.transfers += 1
            self._emit(f"worker {self.name}: fetched image set "
                       f"{prefix[:12]} ({len(data)} bytes)")
        self.images_dir.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, target)

    def stats(self) -> Dict[str, Any]:
        """Cumulative per-host counters (carried on result frames)."""
        return {"worker": self.name, "transfers": self.transfers,
                "cas_hits": self.cas_hits, "shards": self.shards,
                "schedules": self.schedules_run,
                "campaigns": self.campaigns}
