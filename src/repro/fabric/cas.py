"""Content-addressed blob store: the fabric's transfer-dedup layer.

Every payload the fabric ships between hosts — warm-start image sets,
result-cache entries — is stored as an immutable *blob* keyed by the
sha256 of its bytes.  Content addressing gives the fabric its transfer
economics for free:

* a blob digest names exactly one byte sequence forever, so a worker
  that already holds a digest never fetches it again — across shards,
  across campaigns, across supervisors;
* writes are atomic-rename (the :mod:`repro.parallel.cache` idiom) and
  idempotent, so concurrent writers of the same content cannot corrupt
  each other — last rename wins and both renames carry identical bytes;
* reads verify the digest before returning, so a torn or corrupted file
  counts as absent rather than poisoning a campaign.

Mutable names live beside the blobs as *refs*: tiny files mapping a
logical key (e.g. a warm-start prefix digest) to a blob digest, also
atomic-rename written.  The supervisor refs each exported image set by
its prefix, so a second campaign over the same configuration finds the
existing blob and re-announces the same digest — which every warm
worker already caches, making the re-transfer count exactly zero.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path
from typing import Dict, List, Optional

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")
_REF_RE = re.compile(r"^[0-9A-Za-z_.-]{1,128}$")


def blob_digest(data: bytes) -> str:
    """The content address of ``data``."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """A directory of sha256-addressed immutable blobs plus named refs.

    Layout::

        <root>/blobs/<digest>          the bytes themselves
        <root>/refs/<name>             one line: a blob digest

    All counters are per-instance (a process-lifetime view), not
    persisted: ``hits``/``misses`` count :meth:`get` outcomes,
    ``puts``/``dedup_puts`` distinguish new writes from content already
    present — the "transferred exactly once" assertions read them.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.dedup_puts = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def _blob_path(self, digest: str) -> Path:
        if not _DIGEST_RE.match(digest):
            raise ValueError(f"malformed blob digest {digest!r}")
        return self.root / "blobs" / digest

    def _ref_path(self, name: str) -> Path:
        if not _REF_RE.match(name):
            raise ValueError(f"malformed ref name {name!r}")
        return self.root / "refs" / name

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------
    def put(self, data: bytes) -> str:
        """Store ``data``; returns its digest.  Idempotent — content
        already present is not rewritten (``dedup_puts``)."""
        digest = blob_digest(data)
        path = self._blob_path(digest)
        if path.is_file():
            self.dedup_puts += 1
            return digest
        self._atomic_write(path, data)
        self.puts += 1
        self.bytes_written += len(data)
        return digest

    def get(self, digest: str) -> Optional[bytes]:
        """The blob's bytes, or ``None``.  A file whose content does not
        hash to its name (torn write, disk fault) counts as absent."""
        try:
            data = self._blob_path(digest).read_bytes()
        except OSError:
            self.misses += 1
            return None
        if blob_digest(data) != digest:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def has(self, digest: str) -> bool:
        """Whether the blob exists (no hit/miss accounting, no
        content verification — ``get`` still verifies on read)."""
        try:
            return self._blob_path(digest).is_file()
        except ValueError:
            return False

    def digests(self) -> List[str]:
        """Every blob digest currently on disk (sorted)."""
        blobs = self.root / "blobs"
        if not blobs.is_dir():
            return []
        return sorted(p.name for p in blobs.iterdir()
                      if _DIGEST_RE.match(p.name))

    # ------------------------------------------------------------------
    # refs
    # ------------------------------------------------------------------
    def set_ref(self, name: str, digest: str) -> None:
        """Point ref ``name`` at ``digest`` (atomic replace)."""
        if not _DIGEST_RE.match(digest):
            raise ValueError(f"malformed blob digest {digest!r}")
        self._atomic_write(self._ref_path(name), digest.encode("ascii"))

    def ref(self, name: str) -> Optional[str]:
        """The digest ref ``name`` points at, if the ref exists *and*
        its target blob is present (a dangling ref counts as absent)."""
        try:
            digest = self._ref_path(name).read_text("ascii").strip()
        except (OSError, ValueError):
            return None
        if not _DIGEST_RE.match(digest) or not self.has(digest):
            return None
        return digest

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters for reports and the bench's dedup assertions."""
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "dedup_puts": self.dedup_puts,
                "bytes_written": self.bytes_written,
                "blobs": len(self.digests())}
