"""The fabric supervisor: plan, dispatch, steal, survive.

One supervisor drives one campaign over any number of per-host worker
agents (:mod:`repro.fabric.worker`).  The dialogue is pull-based
work-stealing: workers *request* shards, so a fast host naturally
drains more of the queue, and an idle worker with nothing pending
steals the oldest outstanding lease — shard execution is a pure
function of ``(config, schedules)``, so duplicated executions return
identical results and the first one to land wins.

Failure policy (the :class:`~repro.parallel.supervisor.ShardSupervisor`
requeue semantics, lifted to real hosts):

* **liveness** — a worker is declared dead on connection loss or a
  missed heartbeat deadline; its leases requeue with the attempt count
  bumped;
* **bounded retry** — a shard that keeps dying requeues up to
  ``max_retries`` times, then degrades: the supervisor executes it
  in-process, so a campaign always completes;
* **exclusion** — a worker that kills shards repeatedly
  (``max_worker_strikes``) is excluded from the campaign: its current
  connection is dropped and later hellos under the same name refused.

Durability: every completed shard is appended to the
:class:`~repro.fabric.journal.DispatchJournal` before it counts, so a
``kill -9`` of the supervisor loses at most in-flight work — a
restarted supervisor over the same journal re-dispatches only the
shards without a ``done`` record and reassembles the identical report.

Transfer economics: warm/flock campaigns export each prefix's image
set once into the content-addressed :class:`~repro.fabric.cas
.BlobStore` and announce ``(prefix digest, blob digest)`` pairs in
every task; workers fetch each blob at most once per host, ever —
re-campaigns re-announce the same content address (the supervisor refs
exported sets by prefix), so the re-transfer count is zero.
"""

from __future__ import annotations

import collections
import dataclasses
import selectors
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..runtime.wire import FrameReader, WireIntegrityError, encode_frame
from ..warmstart.engine import MIN_GROUP, WarmRunner
from ..warmstart.store import ImageStore, PrefixKey
from .cas import BlobStore
from .journal import DispatchJournal, campaign_key
from .plan import DEFAULT_SHARD_SIZE, Shard, plan_prefixes, plan_shards
from .protocol import FABRIC_VERSION, FabricProtocolError, blob_frames, frame

#: Execution modes a campaign may dispatch under.
MODES = ("cold", "warm", "flock")


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Fabric-layer policy for one campaign (not part of the campaign's
    identity — results are mode- and policy-invariant)."""

    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 2.0
    #: Requeues a shard may survive before the supervisor runs it
    #: in-process (the degradation path).
    max_retries: int = 3
    #: Shard deaths a worker may cause before exclusion.
    max_worker_strikes: int = 2
    shard_size: int = DEFAULT_SHARD_SIZE
    #: Seconds an idle worker waits before re-requesting work.
    idle_delay: float = 0.2
    #: Per-send socket timeout; a worker that cannot drain a task or
    #: blob within this is treated as dead.
    send_timeout: float = 30.0
    fsync_journal: bool = False


class _Conn:
    """One connected worker (pre- or post-hello)."""

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.reader = FrameReader()
        self.worker: Optional[str] = None
        self.last_heard = time.monotonic()


class FabricSupervisor:
    """Plan and run one campaign over the worker fleet."""

    def __init__(self, config, schedules, *, mode: str = "cold",
                 fork_batch: int = 32,
                 cas: Optional[BlobStore] = None,
                 cas_root: Optional[str] = None,
                 journal_path: Optional[str] = None,
                 fabric: FabricConfig = FabricConfig(),
                 timeline=None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown fabric mode {mode!r}")
        if cas is None and cas_root is None:
            raise ValueError("supervisor needs a cas= store or cas_root=")
        self.config = config
        self.schedules = list(schedules)
        self.mode = mode
        self.fork_batch = int(fork_batch)
        self.cas = cas if cas is not None else BlobStore(cas_root)
        self.fabric = fabric
        self.timeline = timeline
        self._emit = log or (lambda _msg: None)

        self.plan: List[Shard] = []
        #: ``prefix digest -> blob digest`` for exported image sets.
        self.blob_map: Dict[str, str] = {}
        self.journal: Optional[DispatchJournal] = None
        self._journal_path = journal_path
        self.key: Optional[str] = None

        # Dispatch state.
        self._pending: "collections.deque[int]" = collections.deque()
        self._attempts: Dict[int, int] = {}
        #: shard id -> workers currently executing it (steals included).
        self._leases: Dict[int, List[str]] = {}
        self._lease_since: Dict[Tuple[int, str], float] = {}
        self._done: Dict[int, List[Dict[str, Any]]] = {}
        self._conns: Dict[socket.socket, _Conn] = {}
        self._by_worker: Dict[str, _Conn] = {}
        self._excluded: Set[str] = set()
        self._strikes: Dict[str, int] = {}
        self._worker_stats: Dict[str, Dict[str, Any]] = {}

        # Counters for the report.
        self.steals = 0
        self.requeues = 0
        self.local_runs = 0
        self.blob_serves: Dict[str, int] = {}
        self.sets_exported = 0
        self.export_seconds = 0.0
        self._listen: Optional[socket.socket] = None
        self.port: Optional[int] = None
        self._wall_start: Optional[float] = None

    # ------------------------------------------------------------------
    # preparation: plan, export, journal, bind
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Plan shards, export image sets, open the journal, bind."""
        self.plan = plan_shards(self.config, self.schedules,
                                shard_size=self.fabric.shard_size,
                                min_group=MIN_GROUP)
        self.key = campaign_key(self.config, self.schedules, self.mode)
        if self.mode in ("warm", "flock"):
            self._export_image_sets()
        if self._journal_path is not None:
            self.journal = DispatchJournal(self._journal_path,
                                           fsync=self.fabric.fsync_journal)
            self.journal.open(self.key)
            for shard_id, results in self.journal.recovered.items():
                if 0 <= shard_id < len(self.plan):
                    self._done[shard_id] = results
            if self.journal.resumed:
                self._emit(f"fabric: resumed journal with "
                           f"{len(self._done)}/{len(self.plan)} shards done")
        self._pending.extend(shard.shard_id for shard in self.plan
                             if shard.shard_id not in self._done)
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((self.fabric.host, self.fabric.port))
        self._listen.listen(16)
        self.port = self._listen.getsockname()[1]
        self._emit(f"fabric: supervising {len(self.plan)} shards "
                   f"({len(self.schedules)} schedules, mode={self.mode}) "
                   f"on {self.fabric.host}:{self.port}")

    @property
    def images_dir(self) -> Path:
        """Where image-set files materialize (shared CAS layout: the
        same place workers materialize fetched blobs)."""
        return self.cas.root / "images"

    def _export_image_sets(self) -> None:
        """Build (or reuse) each shared prefix's image set and publish
        it as a content-addressed blob, ref'd by prefix digest."""
        prefixes = plan_prefixes(self.plan)
        if not prefixes:
            return
        begin = time.monotonic()
        store = ImageStore(root=self.images_dir)
        runner = WarmRunner(self.config, store=store, timeline=self.timeline)
        by_prefix: Dict[str, Any] = {}
        for sched in self.schedules:
            by_prefix.setdefault(
                PrefixKey.for_schedule(self.config, sched).digest(), sched)
        for prefix in prefixes:
            ref_name = f"imgset-{prefix}"
            existing = self.cas.ref(ref_name)
            if existing is not None:
                self.blob_map[prefix] = existing
                continue
            sched = by_prefix[prefix]
            key = PrefixKey.for_schedule(self.config, sched)
            if not store.has(key):
                # ensure_images takes the store's build_lock itself, so
                # a co-located sibling supervisor can't double-build.
                runner.ensure_images(sched, force=True)
                self.sets_exported += 1
            data = store._path(key).read_bytes()
            digest = self.cas.put(data)
            self.cas.set_ref(ref_name, digest)
            self.blob_map[prefix] = digest
        self.export_seconds = time.monotonic() - begin
        self._emit(f"fabric: {len(prefixes)} image sets published "
                   f"({self.sets_exported} built, "
                   f"{len(prefixes) - self.sets_exported} reused, "
                   f"{self.export_seconds:.2f}s)")

    # ------------------------------------------------------------------
    # the serve loop
    # ------------------------------------------------------------------
    def serve(self) -> List[Dict[str, Any]]:
        """Run the campaign to completion; results in schedule order."""
        assert self._listen is not None, "call prepare() first"
        self._wall_start = time.monotonic()
        selector = selectors.DefaultSelector()
        selector.register(self._listen, selectors.EVENT_READ, "accept")
        try:
            while len(self._done) < len(self.plan):
                timeout = self.fabric.heartbeat_interval / 2.0
                for key, _mask in selector.select(timeout):
                    if key.data == "accept":
                        self._accept(selector)
                    else:
                        self._readable(selector, key.fileobj)
                self._check_liveness(selector)
                self._degrade_exhausted()
            self._broadcast_done(selector)
        finally:
            for sock in list(self._conns):
                self._drop(selector, sock)
            selector.unregister(self._listen)
            self._listen.close()
            selector.close()
            if self.journal is not None:
                self.journal.close()
        return self._assemble()

    # -- connection plumbing -------------------------------------------
    def _accept(self, selector) -> None:
        try:
            sock, addr = self._listen.accept()
        except OSError:
            return
        sock.settimeout(self.fabric.send_timeout)
        conn = _Conn(sock, addr)
        self._conns[sock] = conn
        selector.register(sock, selectors.EVENT_READ, "conn")

    def _drop(self, selector, sock: socket.socket,
              worker_died: bool = True) -> None:
        conn = self._conns.pop(sock, None)
        try:
            selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass
        if conn is None:
            return
        if conn.worker is not None:
            self._by_worker.pop(conn.worker, None)
            if worker_died:
                self._worker_failed(conn.worker, "connection lost")

    def _readable(self, selector, sock: socket.socket) -> None:
        conn = self._conns.get(sock)
        if conn is None:
            return
        try:
            chunk = sock.recv(65536)
        except (OSError, socket.timeout):
            self._drop(selector, sock)
            return
        if not chunk:
            self._drop(selector, sock)
            return
        conn.last_heard = time.monotonic()
        try:
            bodies = conn.reader.feed(chunk)
        except WireIntegrityError as exc:
            self._emit(f"fabric: dropping {conn.addr}: {exc}")
            self._drop(selector, sock)
            return
        for body in bodies:
            try:
                self._handle(selector, conn, body)
            except (FabricProtocolError, KeyError, TypeError,
                    ValueError) as exc:
                self._send(conn, frame("error", reason=str(exc)))
                self._drop(selector, sock)
                return

    def _send(self, conn: _Conn, body: Dict[str, Any]) -> bool:
        try:
            conn.sock.sendall(encode_frame(body))
            return True
        except (OSError, socket.timeout):
            return False

    # -- frame handlers ------------------------------------------------
    def _handle(self, selector, conn: _Conn, body: Any) -> None:
        if not isinstance(body, dict):
            raise FabricProtocolError(f"not a fabric frame: {body!r}")
        kind = body.get("type")
        if kind == "hello":
            self._on_hello(selector, conn, body)
        elif kind == "request":
            self._on_request(conn)
        elif kind == "heartbeat":
            pass  # last_heard already updated
        elif kind == "result":
            self._on_result(conn, body)
        elif kind == "shard-failed":
            self._on_shard_failed(conn, body)
        elif kind == "blob-get":
            self._on_blob_get(conn, body)
        else:
            raise FabricProtocolError(f"unexpected frame {kind!r}")

    def _on_hello(self, selector, conn: _Conn, body: Dict[str, Any]) -> None:
        worker = str(body.get("worker", ""))
        if not worker:
            raise FabricProtocolError("hello without a worker name")
        if body.get("version") != FABRIC_VERSION:
            raise FabricProtocolError(
                f"fabric version mismatch: {body.get('version')!r}")
        if worker in self._excluded:
            self._send(conn, frame("error", reason="worker excluded"))
            self._drop(selector, conn.sock, worker_died=False)
            return
        stale = self._by_worker.get(worker)
        if stale is not None and stale is not conn:
            # A reconnect (e.g. after a supervisor-side stall verdict):
            # the old socket is dead weight, and any lease it carried
            # must requeue — the worker's new life won't finish it.
            self._drop(selector, stale.sock, worker_died=False)
        for shard_id in [s for s, holders in self._leases.items()
                         if worker in holders]:
            self._release_lease(shard_id, worker, requeue=True)
        conn.worker = worker
        self._by_worker[worker] = conn
        self._send(conn, frame(
            "welcome", campaign=self.key, mode=self.mode,
            config=self.config.to_dict(), fork_batch=self.fork_batch,
            heartbeat_interval=self.fabric.heartbeat_interval,
            idle_delay=self.fabric.idle_delay,
            shards=len(self.plan)))
        self._emit(f"fabric: worker {worker} joined from {conn.addr}")

    def _on_request(self, conn: _Conn) -> None:
        worker = self._require_worker(conn)
        shard_id = self._next_shard(worker)
        if shard_id is None:
            if len(self._done) >= len(self.plan):
                self._send(conn, frame("done"))
            else:
                self._send(conn, frame("idle"))
            return
        shard = self.plan[shard_id]
        self._leases.setdefault(shard_id, []).append(worker)
        self._lease_since[(shard_id, worker)] = time.monotonic()
        blobs = {}
        if shard.prefix is not None and shard.prefix in self.blob_map:
            blobs[shard.prefix] = self.blob_map[shard.prefix]
        ok = self._send(conn, frame(
            "task", shard=shard_id,
            indices=list(shard.indices),
            schedules=[self.schedules[i].to_dict() for i in shard.indices],
            blobs=blobs,
            attempt=self._attempts.get(shard_id, 0)))
        if not ok:
            self._release_lease(shard_id, worker, requeue=True)

    def _next_shard(self, worker: str) -> Optional[int]:
        while self._pending:
            shard_id = self._pending.popleft()
            if shard_id not in self._done:
                return shard_id
        # Nothing pending: steal the longest-outstanding lease this
        # worker is not already executing (pure-function shards make
        # speculative duplicates free — first result wins).
        candidates = [
            (since, shard_id)
            for (shard_id, holder), since in self._lease_since.items()
            if holder != worker and shard_id not in self._done
            and worker not in self._leases.get(shard_id, ())]
        if not candidates:
            return None
        _since, shard_id = min(candidates)
        self.steals += 1
        if self.journal is not None:
            self.journal.note("steal", shard=shard_id, worker=worker)
        return shard_id

    def _on_result(self, conn: _Conn, body: Dict[str, Any]) -> None:
        worker = self._require_worker(conn)
        shard_id = int(body["shard"])
        if isinstance(body.get("stats"), dict):
            self._worker_stats[worker] = body["stats"]
        self._release_lease(shard_id, worker, requeue=False)
        if shard_id in self._done:
            return  # a steal landed first; identical by construction
        results = body["results"]
        shard = self.plan[shard_id]
        if (not isinstance(results, list)
                or len(results) != len(shard.indices)):
            raise FabricProtocolError(
                f"shard {shard_id}: {len(results) if isinstance(results, list) else '?'} "
                f"results for {len(shard.indices)} schedules")
        self._complete(shard_id, worker, results)

    def _on_shard_failed(self, conn: _Conn, body: Dict[str, Any]) -> None:
        worker = self._require_worker(conn)
        shard_id = int(body["shard"])
        self._release_lease(shard_id, worker, requeue=False)
        if shard_id not in self._done:
            self._requeue(shard_id, f"worker {worker} reported: "
                                    f"{body.get('error', 'unknown')}")
        self._strike(worker, f"shard {shard_id} failed")

    def _on_blob_get(self, conn: _Conn, body: Dict[str, Any]) -> None:
        worker = self._require_worker(conn)
        digest = str(body["digest"])
        data = self.cas.get(digest)
        if data is None:
            raise FabricProtocolError(f"unknown blob {digest}")
        self.blob_serves[worker] = self.blob_serves.get(worker, 0) + 1
        for piece in blob_frames(digest, data):
            if not self._send(conn, piece):
                return

    @staticmethod
    def _require_worker(conn: _Conn) -> str:
        if conn.worker is None:
            raise FabricProtocolError("frame before hello")
        return conn.worker

    # -- failure policy ------------------------------------------------
    def _release_lease(self, shard_id: int, worker: str,
                       requeue: bool) -> None:
        holders = self._leases.get(shard_id)
        if holders and worker in holders:
            holders.remove(worker)
            if not holders:
                del self._leases[shard_id]
        self._lease_since.pop((shard_id, worker), None)
        if requeue and shard_id not in self._done \
                and not self._leases.get(shard_id):
            self._requeue(shard_id, f"lease released by {worker}")

    def _requeue(self, shard_id: int, reason: str) -> None:
        self._attempts[shard_id] = self._attempts.get(shard_id, 0) + 1
        self.requeues += 1
        if shard_id not in self._pending:
            self._pending.append(shard_id)
        self._emit(f"fabric: requeue shard {shard_id} "
                   f"(attempt {self._attempts[shard_id]}): {reason}")
        if self.journal is not None:
            self.journal.note("requeue", shard=shard_id, reason=reason,
                              attempt=self._attempts[shard_id])

    def _worker_failed(self, worker: str, reason: str) -> None:
        leased = [shard_id for shard_id, holders in self._leases.items()
                  if worker in holders]
        for shard_id in leased:
            self._release_lease(shard_id, worker, requeue=True)
        if leased:
            self._strike(worker, reason)

    def _strike(self, worker: str, reason: str) -> None:
        self._strikes[worker] = self._strikes.get(worker, 0) + 1
        if self._strikes[worker] >= self.fabric.max_worker_strikes \
                and worker not in self._excluded:
            self._excluded.add(worker)
            self._emit(f"fabric: excluding worker {worker} "
                       f"after {self._strikes[worker]} strikes ({reason})")
            if self.journal is not None:
                self.journal.worker_excluded(worker, reason)
            conn = self._by_worker.get(worker)
            if conn is not None:
                self._send(conn, frame("error", reason="excluded"))

    def _check_liveness(self, selector) -> None:
        deadline = time.monotonic() - self.fabric.heartbeat_timeout
        for sock, conn in list(self._conns.items()):
            if conn.worker is not None and conn.last_heard < deadline:
                self._emit(f"fabric: worker {conn.worker} missed its "
                           "heartbeat deadline")
                self._drop(selector, sock)

    def _degrade_exhausted(self) -> None:
        """Shards past the retry budget run in-process — the campaign
        always completes (the ShardSupervisor degradation rule)."""
        for shard_id in list(self._pending):
            if self._attempts.get(shard_id, 0) <= self.fabric.max_retries:
                continue
            try:
                self._pending.remove(shard_id)
            except ValueError:
                continue
            if shard_id in self._done:
                continue
            self._emit(f"fabric: shard {shard_id} exhausted "
                       f"{self.fabric.max_retries} retries; "
                       "running in-process")
            shard = self.plan[shard_id]
            results = self._run_local(shard)
            self.local_runs += 1
            self._complete(shard_id, "supervisor", results)

    def _run_local(self, shard: Shard) -> List[Dict[str, Any]]:
        from .worker import execute_shard
        return execute_shard(
            self.config.to_dict(),
            [self.schedules[i].to_dict() for i in shard.indices],
            mode=self.mode,
            images_root=(str(self.images_dir)
                         if self.mode in ("warm", "flock") else None),
            fork_batch=self.fork_batch)

    def _complete(self, shard_id: int, worker: str,
                  results: List[Dict[str, Any]]) -> None:
        self._done[shard_id] = results
        if self.journal is not None:
            self.journal.shard_done(shard_id, worker, results)
        if len(self._done) % 8 == 0 or len(self._done) == len(self.plan):
            self._emit(f"fabric: {len(self._done)}/{len(self.plan)} "
                       "shards done")

    def _broadcast_done(self, selector) -> None:
        for sock, conn in list(self._conns.items()):
            if conn.worker is not None:
                self._send(conn, frame("done"))

    # ------------------------------------------------------------------
    def _assemble(self) -> List[Dict[str, Any]]:
        ordered: List[Optional[Dict[str, Any]]] = [None] * len(self.schedules)
        for shard in self.plan:
            results = self._done[shard.shard_id]
            for index, result in zip(shard.indices, results):
                ordered[index] = result
        missing = [i for i, r in enumerate(ordered) if r is None]
        if missing:
            raise RuntimeError(f"fabric lost results for schedules {missing}")
        return [r for r in ordered if r is not None]

    def stats(self) -> Dict[str, Any]:
        """The fabric counters an :class:`AuditReport` carries."""
        wall = (time.monotonic() - self._wall_start
                if self._wall_start is not None else 0.0)
        return {
            "mode": f"fabric-{self.mode}",
            "shards": len(self.plan),
            "schedules": len(self.schedules),
            "workers": sorted(self._worker_stats),
            "worker_stats": dict(self._worker_stats),
            "steals": self.steals,
            "requeues": self.requeues,
            "local_runs": self.local_runs,
            "excluded": sorted(self._excluded),
            "recovered_shards": (len(self.journal.recovered)
                                 if self.journal is not None else 0),
            "sets_exported": self.sets_exported,
            "export_seconds": round(self.export_seconds, 6),
            "blob_serves": dict(self.blob_serves),
            "cas": self.cas.stats(),
            "serve_seconds": round(wall, 6),
        }
