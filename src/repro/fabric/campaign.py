"""One-call fabric campaigns: supervisor + spawned local workers.

:func:`run_fabric_campaign` is the in-process entry the audit layer and
the benches use: it prepares a :class:`FabricSupervisor` on an
ephemeral localhost port, optionally spawns ``workers`` real worker
*processes* (each its own interpreter — same isolation as a remote
host, minus the network distance), serves the campaign to completion,
and returns results in schedule order plus the fabric stats.

Workers are real subprocesses on purpose: the acceptance tests
``kill -9`` them mid-campaign, and only a separate PID makes that an
honest experiment.  :func:`spawn_worker` is exported so tests and the
smoke harness can manage worker lifetimes (and death) themselves.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .supervisor import FabricConfig, FabricSupervisor


def _worker_env() -> Dict[str, str]:
    """An environment whose ``PYTHONPATH`` can import this repro tree."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p and p != src]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def spawn_worker(host: str, port: int, cas_dir: str, *,
                 name: Optional[str] = None,
                 once: bool = True,
                 connect_timeout: float = 30.0) -> subprocess.Popen:
    """Start one worker agent process against ``host:port``."""
    cmd = [sys.executable, "-m", "repro", "fabric-worker",
           "--connect", f"{host}:{port}", "--cas-dir", cas_dir,
           "--connect-timeout", str(connect_timeout)]
    if name:
        cmd += ["--name", name]
    if once:
        cmd.append("--once")
    return subprocess.Popen(cmd, env=_worker_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def run_fabric_campaign(config, schedules: Sequence, *,
                        mode: str = "cold",
                        workers: int = 2,
                        fork_batch: int = 32,
                        cas_dir: Optional[str] = None,
                        worker_cas_dirs: Optional[Sequence[str]] = None,
                        journal: Optional[str] = None,
                        timeline=None,
                        fabric: Optional[FabricConfig] = None,
                        log: Optional[Callable[[str], None]] = None,
                        ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Run one campaign over the fabric; results in schedule order.

    ``workers == 0`` serves external workers only (the two-host /
    CLI-supervisor shape); otherwise ``workers`` local worker processes
    are spawned against the supervisor's ephemeral port.  Spawned
    workers share the supervisor's CAS directory unless
    ``worker_cas_dirs`` gives each its own (the distinct-host shape the
    transfer-accounting bench uses).
    """
    tmp = None
    if cas_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        cas_dir = tmp.name
    supervisor = FabricSupervisor(
        config, schedules, mode=mode, fork_batch=fork_batch,
        cas_root=cas_dir, journal_path=journal,
        fabric=fabric or FabricConfig(), timeline=timeline, log=log)
    procs: List[subprocess.Popen] = []
    try:
        supervisor.prepare()
        host = supervisor.fabric.host
        for rank in range(max(0, int(workers))):
            worker_dir = (worker_cas_dirs[rank]
                          if worker_cas_dirs is not None else cas_dir)
            procs.append(spawn_worker(host, supervisor.port, worker_dir,
                                      name=f"w{rank}"))
        results = supervisor.serve()
        stats = supervisor.stats()
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        if tmp is not None:
            tmp.cleanup()
    return results, stats
