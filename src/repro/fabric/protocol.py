"""Supervisor <-> worker dialogue over the shared wire format.

The fabric speaks :mod:`repro.runtime.wire` length-prefixed
canonical-JSON frames with sha256 body checksums — the same bytes-level
contract the live protocol backend uses, so one framing/fuzz test suite
covers both.  Every fabric frame body is ``{"type": <str>, ...}``:

worker -> supervisor
    ``hello``      register: worker name, host, pid, protocol version
    ``request``    ask for a shard (sent when idle)
    ``heartbeat``  liveness beacon; carries the shard being executed
    ``result``     one completed shard's result dicts + worker counters
    ``blob-get``   fetch a blob by digest

supervisor -> worker
    ``welcome``    campaign id, config dict, execution mode, timing knobs
    ``task``       one shard: schedule dicts, attempt, needed blob refs
    ``idle``       nothing to hand out right now; re-request after delay
    ``done``       campaign complete — drop the connection
    ``blob``       header for a requested blob, then ``blob-chunk`` *n*,
                   then ``blob-end`` (digest re-verified by the receiver)
    ``error``      protocol violation; the connection is dropped

Blobs ride inside ordinary frames as base64 chunks sized so that every
chunk stays well under :data:`repro.runtime.wire.MAX_FRAME_BYTES` —
image sets can exceed one frame's cap, and the chunking keeps a slow
blob transfer from starving heartbeats on the same connection.
"""

from __future__ import annotations

import base64
import socket
from typing import Any, Dict, Iterator, List, Optional

from ..runtime.wire import FrameReader, WireIntegrityError, encode_frame
from .cas import blob_digest

#: Fabric dialogue version; bumped when frame semantics change.
FABRIC_VERSION = 1

#: Raw bytes per ``blob-chunk`` frame (base64 expands by 4/3; 1 MiB of
#: payload frames at ~1.37 MiB, comfortably under the 4 MiB wire cap).
BLOB_CHUNK_BYTES = 1024 * 1024


class FabricProtocolError(WireIntegrityError):
    """A structurally valid frame that violates the fabric dialogue."""


def frame(type_: str, **fields: Any) -> Dict[str, Any]:
    """A fabric frame body."""
    body = {"type": type_}
    body.update(fields)
    return body


def expect(body: Any, *types: str) -> Dict[str, Any]:
    """Validate that ``body`` is a fabric frame of one of ``types``."""
    if not isinstance(body, dict) or not isinstance(body.get("type"), str):
        raise FabricProtocolError(f"not a fabric frame: {body!r}")
    if types and body["type"] not in types:
        raise FabricProtocolError(
            f"expected {'/'.join(types)}, got {body['type']!r}")
    return body


def blob_frames(digest: str, data: bytes) -> Iterator[Dict[str, Any]]:
    """The frame sequence carrying one blob (header, chunks, trailer)."""
    yield frame("blob", digest=digest, size=len(data),
                chunks=(len(data) + BLOB_CHUNK_BYTES - 1) // BLOB_CHUNK_BYTES)
    for seq, at in enumerate(range(0, len(data), BLOB_CHUNK_BYTES)):
        chunk = data[at:at + BLOB_CHUNK_BYTES]
        yield frame("blob-chunk", digest=digest, seq=seq,
                    data=base64.b64encode(chunk).decode("ascii"))
    yield frame("blob-end", digest=digest)


class BlobAssembler:
    """Reassemble one blob from its frame sequence, verifying order,
    size, and — content addressing's gift — the digest itself."""

    def __init__(self, header: Dict[str, Any]) -> None:
        body = expect(header, "blob")
        self.digest = str(body["digest"])
        self.size = int(body["size"])
        self.expected_chunks = int(body["chunks"])
        self._parts: List[bytes] = []

    def feed(self, body: Dict[str, Any]) -> Optional[bytes]:
        """Consume one ``blob-chunk``/``blob-end`` frame; returns the
        verified bytes when complete, ``None`` while in flight."""
        body = expect(body, "blob-chunk", "blob-end")
        if body.get("digest") != self.digest:
            raise FabricProtocolError("interleaved blob transfer")
        if body["type"] == "blob-chunk":
            if int(body["seq"]) != len(self._parts):
                raise FabricProtocolError(
                    f"blob chunk out of order: got {body['seq']}, "
                    f"expected {len(self._parts)}")
            try:
                self._parts.append(base64.b64decode(body["data"],
                                                    validate=True))
            except (ValueError, TypeError) as exc:
                raise FabricProtocolError(f"undecodable blob chunk: {exc}")
            return None
        if len(self._parts) != self.expected_chunks:
            raise FabricProtocolError(
                f"blob truncated: {len(self._parts)}/{self.expected_chunks} "
                "chunks")
        data = b"".join(self._parts)
        if len(data) != self.size or blob_digest(data) != self.digest:
            raise FabricProtocolError("blob content does not match digest")
        return data


class FrameChannel:
    """A blocking request/response view of one framed TCP connection.

    The worker side of the dialogue is sequential (ask, wait, act), so
    a thin blocking wrapper is the right shape there; the supervisor
    multiplexes many connections and drives :class:`FrameReader`
    directly off a selector instead.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = FrameReader()
        self._ready: List[Any] = []

    def send(self, body: Dict[str, Any]) -> None:
        self.sock.sendall(encode_frame(body))

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The next frame body; ``None`` on timeout.  A closed peer
        raises :class:`ConnectionError`."""
        if self._ready:
            return self._ready.pop(0)
        self.sock.settimeout(timeout)
        while True:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                raise ConnectionError("peer closed the connection")
            bodies = self.reader.feed(chunk)
            if bodies:
                self._ready.extend(bodies[1:])
                return bodies[0]

    def recv_blob(self, header: Dict[str, Any],
                  timeout: Optional[float] = None) -> bytes:
        """Complete a blob transfer whose ``blob`` header was already
        received; returns the verified bytes."""
        assembler = BlobAssembler(header)
        while True:
            body = self.recv(timeout)
            if body is None:
                raise FabricProtocolError("blob transfer stalled")
            data = assembler.feed(body)
            if data is not None:
                return data

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
