"""repro.fabric — multi-host work-stealing campaign fabric.

The fabric scales audit campaigns past one host without changing what
any schedule computes: a :class:`~repro.fabric.supervisor
.FabricSupervisor` plans flock-aware shards and serves them to
per-host :class:`~repro.fabric.worker.FabricWorker` agents over the
:mod:`repro.runtime.wire` framed-TCP contract, with work-stealing
dispatch, heartbeat liveness, bounded-retry requeue, and a
crash-survivable :class:`~repro.fabric.journal.DispatchJournal`.
Warm-start image sets ship through a content-addressed
:class:`~repro.fabric.cas.BlobStore`, so each set crosses the wire to
a given host at most once — ever.
"""

from .cas import BlobStore, blob_digest
from .campaign import run_fabric_campaign, spawn_worker
from .journal import DispatchJournal, JournalMismatch, campaign_key, \
    read_journal
from .plan import DEFAULT_SHARD_SIZE, Shard, plan_prefixes, plan_shards
from .protocol import FABRIC_VERSION, FabricProtocolError
from .supervisor import FabricConfig, FabricSupervisor
from .worker import FabricWorker, execute_shard

__all__ = [
    "BlobStore", "blob_digest",
    "run_fabric_campaign", "spawn_worker",
    "DispatchJournal", "JournalMismatch", "campaign_key", "read_journal",
    "DEFAULT_SHARD_SIZE", "Shard", "plan_prefixes", "plan_shards",
    "FABRIC_VERSION", "FabricProtocolError",
    "FabricConfig", "FabricSupervisor",
    "FabricWorker", "execute_shard",
]
