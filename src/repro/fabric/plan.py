"""Flock-aware shard planning for fabric campaigns.

The planner turns a campaign's schedule list into dispatchable shards.
Grouping follows the suffix-fork layer's economics
(:mod:`repro.flock`): schedules sharing a warm-start prefix —
``PrefixKey`` digest over (config fingerprint, system seed, timing
overrides) — land in the same shard wherever possible, so the worker
that executes the shard decodes **one** resident
:class:`~repro.flock.template.ForkTemplate` (or thaws one image) and
forks every schedule from it.  Groups larger than ``shard_size`` split
into chunks (one resident template per chunk, the
``FlockRunner.shards`` rule); singleton prefixes coalesce into mixed
cold shards so tiny groups don't degenerate into per-schedule dispatch
round-trips.

Shards are ordered largest-prefix-group first — the work-stealing
queue hands the expensive, amortizable work out while every worker is
still alive, leaving the cheap mixed tail for the end-of-campaign
steal phase.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..warmstart.store import PrefixKey

#: Default schedules per shard: small enough that stealing a dead
#: worker's shard is cheap, large enough to amortize dispatch and one
#: template decode.
DEFAULT_SHARD_SIZE = 16


@dataclasses.dataclass(frozen=True)
class Shard:
    """One dispatchable unit of campaign work."""

    #: Stable shard id (index into the plan; the journal's key).
    shard_id: int
    #: Indices into the campaign's schedule list, execution order.
    indices: tuple
    #: The shared warm-start prefix digest, or ``None`` for a mixed
    #: shard of singleton prefixes (always executed cold).
    prefix: Optional[str]

    def to_dict(self) -> Dict:
        return {"shard_id": self.shard_id, "indices": list(self.indices),
                "prefix": self.prefix}


def plan_shards(config, schedules: Sequence, *,
                shard_size: int = DEFAULT_SHARD_SIZE,
                min_group: int = 2) -> List[Shard]:
    """The campaign's shard plan (deterministic in its inputs).

    ``min_group`` mirrors :data:`repro.warmstart.engine.MIN_GROUP`:
    prefixes shared by fewer schedules than this are not worth an image
    set, so their schedules pool into mixed shards instead of carrying
    a useless prefix tag.
    """
    shard_size = max(1, int(shard_size))
    by_prefix: Dict[str, List[int]] = {}
    for index, sched in enumerate(schedules):
        digest = PrefixKey.for_schedule(config, sched).digest()
        by_prefix.setdefault(digest, []).append(index)

    grouped = sorted(
        (item for item in by_prefix.items() if len(item[1]) >= min_group),
        key=lambda item: (-len(item[1]), item[1][0]))
    singles: List[int] = sorted(
        index for _digest, idxs in by_prefix.items()
        if len(idxs) < min_group for index in idxs)

    shards: List[Shard] = []
    for digest, idxs in grouped:
        # Divergence-ascending execution order inside a group is the
        # resident template's monotone-advancement order.
        from ..warmstart.engine import divergence_time
        idxs = sorted(idxs, key=lambda i: (divergence_time(schedules[i]), i))
        for at in range(0, len(idxs), shard_size):
            shards.append(Shard(shard_id=len(shards),
                                indices=tuple(idxs[at:at + shard_size]),
                                prefix=digest))
    for at in range(0, len(singles), shard_size):
        shards.append(Shard(shard_id=len(shards),
                            indices=tuple(singles[at:at + shard_size]),
                            prefix=None))
    return shards


def plan_prefixes(plan: Sequence[Shard]) -> List[str]:
    """The distinct prefix digests a plan references (sorted) — the
    image sets a warm campaign must export before dispatch."""
    return sorted({shard.prefix for shard in plan
                   if shard.prefix is not None})
