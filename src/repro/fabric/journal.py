"""Dispatch journal: the supervisor's crash-survivable campaign state.

The fabric must tolerate the failure modes it injects — including a
``kill -9`` of the supervisor itself.  Everything the supervisor cannot
recompute is appended to one JSONL journal, flushed (and optionally
fsynced) record by record:

* a ``campaign`` header pinning the campaign key (config fingerprint +
  schedule-list digest + execution mode), so a restarted supervisor
  refuses to resume a journal that belongs to a different campaign;
* one ``done`` record per completed shard, carrying the shard's result
  dicts verbatim;
* ``exclude`` records for workers struck out by the liveness policy
  (advisory: a restarted supervisor starts workers at zero strikes —
  results, not grudges, are the durable state).

Everything else — the shard plan, the pending queue, leases — is a
deterministic function of the campaign config or pure runtime state,
and is rebuilt on restart: shards with a ``done`` record are complete,
the rest are re-dispatched.  Re-execution is safe because every shard
is a pure function of ``(config, schedules)``; the determinism
discipline makes replayed results bit-for-bit identical, which the
resume tests assert.

A ``kill -9`` mid-append can tear the final line; :meth:`load`
tolerates exactly one undecodable trailing line and treats the shard as
never finished.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional


def campaign_key(config, schedules, mode: str) -> str:
    """The identity of one campaign: what was run, over which
    schedules, in which execution mode (modes share results but not
    shard plans, so a journal never resumes across modes)."""
    payload = json.dumps(
        [config.fingerprint(),
         [sched.to_dict() for sched in schedules], mode],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class JournalMismatch(RuntimeError):
    """An existing journal belongs to a different campaign."""


class DispatchJournal:
    """Append-only JSONL dispatch state for one campaign."""

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._fh = None
        #: Results of shards completed in a previous life, by shard id.
        self.recovered: Dict[int, List[Dict[str, Any]]] = {}
        #: Whether :meth:`open` found a resumable previous journal.
        self.resumed = False

    # ------------------------------------------------------------------
    def open(self, key: str) -> None:
        """Open for appending; load any previous life's records.

        ``key`` must match an existing journal's campaign header
        (:class:`JournalMismatch` otherwise — resuming someone else's
        journal would silently mix campaigns).
        """
        existing = self._read_records()
        if existing:
            header = existing[0]
            if (header.get("type") != "campaign"
                    or header.get("key") != key):
                raise JournalMismatch(
                    f"journal {self.path} belongs to campaign "
                    f"{header.get('key')!r}, not {key!r}")
            for record in existing[1:]:
                if record.get("type") == "done":
                    self.recovered[int(record["shard"])] = record["results"]
            self.resumed = True
        self._fh = open(self.path, "a", encoding="utf-8")
        if not existing:
            self._append({"type": "campaign", "key": key})

    def _read_records(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return []
        records: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    break  # torn tail from a kill -9 mid-append
                raise
        return records

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        assert self._fh is not None, "journal not open"
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def shard_done(self, shard: int, worker: str,
                   results: List[Dict[str, Any]]) -> None:
        """Record one shard's completion (the durable event)."""
        self._append({"type": "done", "shard": shard, "worker": worker,
                      "results": results})

    def worker_excluded(self, worker: str, reason: str) -> None:
        """Record a worker strike-out (diagnostic, not authoritative)."""
        self._append({"type": "exclude", "worker": worker,
                      "reason": reason})

    def note(self, kind: str, **fields: Any) -> None:
        """Free-form diagnostic record (lease/steal/requeue traces)."""
        record = {"type": kind}
        record.update(fields)
        self._append(record)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DispatchJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Every intact record of a journal file (artifact inspection)."""
    return DispatchJournal(path)._read_records()
