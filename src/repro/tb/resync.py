"""Timer resynchronization service.

Time-based checkpointing relies on *periodically resynchronized* timers:
between resynchronizations clocks drift apart at up to ``2*rho`` per
second, inflating the blocking periods (which contain the
``2*rho*t_elapsed`` term).  The TB engines call
:meth:`ResyncService.request` when the Fig. 5 guard trips; the service
resynchronizes every registered clock (subject to a cooldown so that
three engines tripping the guard in the same interval trigger one
resynchronization, not three — the paper's protocols never need
per-request coordination).
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime import DriftingClock, Simulator, TraceRecorder


class ResyncService:
    """Resynchronizes a set of drifting clocks on request.

    Parameters
    ----------
    cooldown:
        Minimum true-time spacing between resynchronizations; requests
        arriving sooner are coalesced into the previous one.
    """

    def __init__(self, sim: Simulator, clocks: List[DriftingClock],
                 trace: Optional[TraceRecorder] = None,
                 cooldown: float = 1.0) -> None:
        self.sim = sim
        self.clocks = list(clocks)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.cooldown = cooldown
        self.resync_count = 0
        self.coalesced_count = 0
        self._last_resync: Optional[float] = None

    def register(self, clock: DriftingClock) -> None:
        """Add a clock to the synchronized set."""
        self.clocks.append(clock)

    def request(self, reason: str = "") -> bool:
        """Resynchronize all clocks now (unless within the cooldown).

        Returns whether a resynchronization actually ran.
        """
        if (self._last_resync is not None
                and self.sim.now - self._last_resync < self.cooldown):
            self.coalesced_count += 1
            return False
        self._last_resync = self.sim.now
        reference = self.sim.now
        for clock in self.clocks:
            clock.resync(reference_local=reference)
        self.resync_count += 1
        self.trace.record(self.sim.now, "resync", None,
                          reason=reason, clocks=len(self.clocks))
        return True

    def max_elapsed_since_resync(self) -> float:
        """Largest elapsed-since-resync over the registered clocks —
        the quantity that bounds current skew."""
        return max((c.elapsed_since_resync() for c in self.clocks), default=0.0)
