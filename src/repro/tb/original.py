"""The original time-based checkpointing protocol (Neves & Fuchs 1998;
paper Section 2.2).

On timer expiry the *current* process state is written to stable
storage; a blocking period of ``delta + 2*rho*tau - t_min`` covers the
write and blocks **all** messages, ensuring basic global-state
consistency.  Recoverability needs no blocking: every unacknowledged
message is part of the snapshot and is re-sent during hardware recovery.
The protocol is confidence-oblivious — it ignores MDCD dirty bits —
which is exactly why naively combining it with MDCD loses
non-contaminated states (paper Fig. 4(a); reproduced by
``repro.coordination.naive``).
"""

from __future__ import annotations

from ..messages.message import Message
from ..types import CheckpointKind, MessageKind, StableContent
from .base import PendingEstablishment, TbEngineBase


class OriginalTbEngine(TbEngineBase):
    """The unmodified Neves-Fuchs engine."""

    variant = "tb-original"

    def should_buffer(self, message: Message) -> bool:
        """The original protocol blocks every message during a blocking
        period — including "passed AT" notifications, which is one half
        of the naive-combination interference."""
        return self.in_blocking and self.config.blocking_enabled

    def _begin_establishment(self) -> PendingEstablishment:
        epoch = self.ndc + 1
        initial = self._capture_stable(epoch, StableContent.CURRENT_STATE)
        # Blocking for consistency only; dirty bit plays no role, so the
        # length is tau(0) = delta + 2*rho*tau - t_min.
        return PendingEstablishment(
            epoch=epoch, initial=initial, match_bit=0,
            started_at=self.sim.now,
            blocking_len=self._blocking_len(0, initial))
