"""Hardware error recovery for the TB protocols.

When a node fails and restarts, *all* processes roll back to their
stable-storage checkpoints (paper Sections 2.2/3): the coordinator picks
the most recent epoch every process has completed (the recovery line),
restores each process from its checkpoint of that epoch, bumps the
recovery incarnation (fencing pre-crash in-flight traffic), re-sends
every message the restored states record as unacknowledged, and re-arms
the TB engines at the line's epoch.

Rollback distances — the Fig. 7 metric — are recorded per process per
recovery and exposed for the experiment layer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..checkpoint import Checkpoint
from ..errors import RecoveryError
from ..runtime import Node, TraceRecorder
from ..types import ProcessId


@dataclasses.dataclass(frozen=True)
class RollbackRecord:
    """One process's rollback in one hardware recovery."""

    time: float
    process_id: ProcessId
    distance: float
    epoch: int
    crashed_node: str


class HardwareRecoveryCoordinator:
    """Runs the global rollback after every node restart.

    Parameters
    ----------
    processes:
        All :class:`~repro.host.FtProcess` instances of the system
        (deposed processes are skipped at recovery time).
    incarnation:
        The shared recovery incarnation counter.
    """

    def __init__(self, processes: List, incarnation,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.processes = list(processes)
        self.incarnation = incarnation
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: Every rollback performed, in order.
        self.records: List[RollbackRecord] = []
        #: Number of hardware recoveries executed.
        self.recoveries = 0

    def install(self) -> None:
        """Subscribe to restarts of every distinct node."""
        seen = set()
        for proc in self.processes:
            node = proc.node
            if id(node) in seen:
                continue
            seen.add(id(node))
            node.on_restart(self._on_restart)

    # ------------------------------------------------------------------
    def _on_restart(self, node: Node) -> None:
        self.recover_all(crashed_node=str(node.node_id))

    def recover_all(self, crashed_node: str = "?") -> None:
        """Roll every in-service process back to the recovery line."""
        active = [p for p in self.processes if not p.deposed]
        if not active:
            return
        line = self._recovery_line(active)
        sim = active[0].sim
        self.recoveries += 1
        self.trace.record(sim.now, "recovery.hardware.start", None,
                          epoch=line, crashed=crashed_node)
        # Fence first: every re-executed or re-sent message must carry
        # the new incarnation, and every pre-crash in-flight delivery
        # must be rejected.
        self.incarnation.bump()
        restored: List = []
        for proc in active:
            checkpoint = self._line_checkpoint(proc, line)
            # Checkpoints beyond the line belong to the timeline this
            # rollback abandons; drop them so no later recovery (or
            # audit) can mix them with post-rollback establishments.
            stale = proc.node.stable.discard_after_epoch(proc.process_id, line)
            if stale:
                proc.counters.bump("recovery.stale_epochs_discarded", stale)
            distance = proc.restore_from(checkpoint, "hardware")
            self.records.append(RollbackRecord(
                time=sim.now, process_id=proc.process_id, distance=distance,
                epoch=line, crashed_node=crashed_node))
            restored.append((proc, checkpoint))
        # Re-align the TB engines before resending: resends piggyback
        # the post-recovery Ndc.  All engines must restart on the SAME
        # interval boundary — local clocks straddling a boundary at this
        # instant would otherwise re-arm an interval apart and produce
        # same-epoch checkpoints bracketing live traffic — so agree on
        # the latest next-boundary any of them sees.
        engines = [proc.hardware for proc, _ckpt in restored
                   if proc.hardware is not None]
        indices = [eng.next_boundary_index() for eng in engines
                   if hasattr(eng, "next_boundary_index")]
        boundary_index = max(indices) if indices else None
        for eng in engines:
            if hasattr(eng, "next_boundary_index"):
                eng.reset_after_recovery(line, boundary_index)
            else:
                eng.reset_after_recovery(line)
        for proc, _ckpt in restored:
            if proc.node.crashed:
                # Overlapping crashes: a process whose own node is still
                # down was rolled back to the line like everyone else
                # (its stable chain survives the crash), but it can
                # neither transmit nor run right now — its resends and
                # driver resume ride on the recovery that fires at its
                # own restart.
                proc.counters.bump("recovery.resend_deferred_crashed")
                continue
            for message in proc.acks.unacknowledged():
                receiver = self._find(message.receiver)
                if receiver is not None and receiver.deposed:
                    proc.acks.acked(message.msg_id)
                    continue
                proc.resend(message)
            proc.driver.resume()
        self.trace.record(sim.now, "recovery.hardware.done", None, epoch=line)

    # ------------------------------------------------------------------
    def _recovery_line(self, active: List) -> int:
        epochs = []
        for proc in active:
            latest = proc.node.stable.peek(proc.process_id)
            if latest is None or latest.epoch is None:
                raise RecoveryError(
                    f"{proc.process_id} has no stable checkpoint (no genesis?)")
            epochs.append(latest.epoch)
        return min(epochs)

    def _line_checkpoint(self, proc, line: int) -> Checkpoint:
        checkpoint = proc.node.stable.at_epoch(proc.process_id, line)
        if checkpoint is None:
            # The line epoch fell out of this process's retained history
            # (possible only after pathological epoch divergence); fall
            # back to its oldest retained checkpoint, which is the most
            # conservative state available.
            history = proc.node.stable.history(proc.process_id)
            if not history:
                raise RecoveryError(f"{proc.process_id} has no stable checkpoints")
            proc.counters.bump("recovery.line_fallback")
            checkpoint = history[0]
        return checkpoint

    def _find(self, process_id: ProcessId):
        for proc in self.processes:
            if proc.process_id == process_id:
                return proc
        return None

    # ------------------------------------------------------------------
    def distances(self, process_id: Optional[ProcessId] = None) -> List[float]:
        """Rollback distances recorded so far (optionally one process)."""
        return [r.distance for r in self.records
                if process_id is None or r.process_id == process_id]

    def distances_by_process(self) -> Dict[ProcessId, List[float]]:
        """Distances grouped by process."""
        out: Dict[ProcessId, List[float]] = {}
        for rec in self.records:
            out.setdefault(rec.process_id, []).append(rec.distance)
        return out
