"""The adapted TB checkpointing protocol (paper Section 4.2, Fig. 5).

The ``createCKPT`` logic, verbatim from the paper:

.. code-block:: c

    createCKPT() {
        if (dirty_bit == 0) write_disk(current_state, 0, null);
        else                write_disk(rCKPT, 1, current_state);
        Ndc++;
        dCKPT_time = dCKPT_time + Delta;
        set_timer(createCKPT, dCKPT_time);
        if ((delta + 2*rho*(Ndc*Delta) + Tm(dirty_bit)) >
            (getTime() - (dCKPT_time - Delta)))
            requestResyncTimers();
    }

``write_disk(contents, match, alt)`` starts writing ``contents``, blocks
for ``tau(b)``, and — if the dirty bit diverges from ``match`` before the
blocking ends — aborts and writes ``alt`` (the current state) instead.
For ``P1_act`` the pseudo dirty bit substitutes for the dirty bit
(footnote 2); :meth:`repro.host.FtProcess.confidence_bit` encapsulates
that.

During the blocking period application messages are buffered but
"passed AT" notifications pass through to the (modified) MDCD engine,
whose ``Ndc``-gated handling is what can flip the bit mid-blocking.
The *alternative* contents are captured at swap-decision time: the
application state cannot have changed (application messages were
blocked), and the snapshot then includes the knowledge update the
notification delivered — the paper's "equivalent to the state at the
moment the blocking period starts".
"""

from __future__ import annotations

from ..checkpoint import Checkpoint
from ..errors import StorageError
from ..messages.message import Message
from ..types import CheckpointKind, MessageKind, StableContent
from .base import PendingEstablishment, TbEngineBase


class AdaptedTbEngine(TbEngineBase):
    """The coordination-aware engine."""

    variant = "tb-adapted"

    def should_buffer(self, message: Message) -> bool:
        """Block everything except "passed AT" notifications — the
        adapted protocol monitors confidence changes mid-blocking."""
        return (self.in_blocking and self.config.blocking_enabled
                and message.kind is not MessageKind.PASSED_AT)

    def _begin_establishment(self) -> PendingEstablishment:
        epoch = self.ndc + 1
        bit = self.process.confidence_bit()
        if bit == 0:
            initial = self._capture_stable(epoch, StableContent.CURRENT_STATE)
        else:
            rckpt = self.process.volatile_checkpoint()
            if rckpt is None:
                # Defensive: a dirty process always has a volatile
                # checkpoint (Type-1/pseudo establishment precedes every
                # contamination), but fall back to the current state
                # rather than fail the establishment.
                self.process.counters.bump("tb.missing_volatile")
                self.trace("tb.missing_volatile")
                initial = self._capture_stable(epoch,
                                               StableContent.CURRENT_STATE)
                bit = 0
            else:
                initial = self._apply_save_unacked(rckpt.rewritten(
                    kind=CheckpointKind.STABLE, epoch=epoch,
                    content=StableContent.VOLATILE_COPY,
                    meta={**rckpt.meta, "copied_from": rckpt.kind.value,
                          "copied_taken_at": rckpt.taken_at}))
        return PendingEstablishment(
            epoch=epoch, initial=initial, match_bit=bit,
            started_at=self.sim.now,
            blocking_len=self._blocking_len(bit, initial))

    def _final_checkpoint(self, pending: PendingEstablishment) -> Checkpoint:
        """The ``write_disk`` third-argument semantics: if the bit no
        longer matches, replace the volatile copy with the current
        state (which now reflects the validation that flipped the bit)."""
        bit_now = self.process.confidence_bit()
        if (bit_now != pending.match_bit
                and self.config.swap_on_confidence_change
                and pending.match_bit == 1):
            pending.swap = True
            self.process.counters.bump("tb.swapped")
            return self._capture_stable(
                pending.epoch, StableContent.SWAPPED_TO_CURRENT,
                meta={"swapped_at": self.sim.now})
        return pending.initial
