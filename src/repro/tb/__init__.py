"""The time-based (TB) checkpointing protocol family.

``original`` is the Neves-Fuchs protocol (paper Section 2.2);
``adapted`` is the coordination-aware version (Section 4.2, Fig. 5);
``blocking`` holds the Table 1 blocking-period formulas; ``resync`` the
timer resynchronization service; ``hardware_recovery`` the global
rollback coordinator.
"""

from .adapted import AdaptedTbEngine
from .base import PendingEstablishment, TbEngineBase
from .blocking import TbConfig, blocking_period, message_delay_term, worst_case_blocking
from .hardware_recovery import HardwareRecoveryCoordinator, RollbackRecord
from .original import OriginalTbEngine
from .resync import ResyncService

__all__ = [
    "AdaptedTbEngine",
    "HardwareRecoveryCoordinator",
    "OriginalTbEngine",
    "PendingEstablishment",
    "ResyncService",
    "RollbackRecord",
    "TbConfig",
    "TbEngineBase",
    "blocking_period",
    "message_delay_term",
    "worst_case_blocking",
]
