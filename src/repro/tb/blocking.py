"""Blocking-period policy — the quantitative heart of Table 1.

The original TB protocol blocks for ``delta + 2*rho*tau - t_min`` after
a checkpoint write starts (long enough that a message sent after my
checkpoint cannot reach a peer before the peer's own timer expires);
the adapted protocol keeps that length for *clean* processes and extends
it to ``delta + 2*rho*tau + t_max`` for *dirty* ones, so that any
in-flight "passed AT" notification sent before the notifier's timer
expiry is guaranteed to arrive within the blocking window and can flip
the in-progress checkpoint's contents (paper Section 4.2):

    tau(b) = delta + 2*rho*t_elapsed + Tm(b),
    Tm(b)  = b * t_max - (1 - b) * t_min.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..runtime import ClockConfig, NetworkConfig


@dataclasses.dataclass(frozen=True)
class TbConfig:
    """Configuration of a TB checkpointing engine.

    Attributes
    ----------
    interval:
        The checkpointing interval ``Delta`` (local-clock seconds
        between stable checkpoint establishments).
    resync_limit_fraction:
        Request a timer resynchronization when the worst-case blocking
        period of the *next* establishment would exceed this fraction of
        the interval (our reading of the guard at the end of the paper's
        Fig. 5: resynchronize before clock drift inflates blocking
        beyond usefulness).
    swap_on_confidence_change:
        The adapted protocol's responsiveness: abort a volatile-copy
        establishment and write the current state instead when the dirty
        bit flips to clean mid-blocking.  Disabling it reproduces the
        recoverability violation of paper Fig. 4(b) (ablation).
    blocking_enabled:
        Disabling the blocking period reproduces the consistency
        violations of paper Fig. 2(a) (ablation): the establishment
        completes after only the storage write latency and no deliveries
        are buffered.
    save_unacked:
        The Neves-Fuchs recoverability mechanism: save every
        unacknowledged message as part of the checkpoint and re-send
        during recovery.  Disabling it (ablation) reproduces the
        in-transit-message recoverability violation of Fig. 2(a) even
        when blocking is on — demonstrating that blocking alone ensures
        only consistency.
    """

    interval: float = 300.0
    resync_limit_fraction: float = 0.25
    swap_on_confidence_change: bool = True
    blocking_enabled: bool = True
    save_unacked: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be positive: {self}")
        if not 0 < self.resync_limit_fraction <= 1:
            raise ConfigurationError(
                f"resync_limit_fraction must be in (0, 1]: {self}")


def message_delay_term(dirty_bit: int, net: NetworkConfig) -> float:
    """The paper's ``Tm(b) = b*t_max - (1-b)*t_min``."""
    b = 1 if dirty_bit else 0
    return b * net.t_max - (1 - b) * net.t_min


def blocking_period(dirty_bit: int, clock: ClockConfig,
                    elapsed_since_resync: float, net: NetworkConfig,
                    floor: float = 0.0) -> float:
    """The adapted protocol's ``tau(b) = delta + 2*rho*t + Tm(b)``.

    ``floor`` lower-bounds the result (a stable write takes at least the
    storage latency; the blocking period overlaps the write).  With
    ``dirty_bit == 0`` this coincides with the original TB protocol's
    blocking period.
    """
    skew = clock.delta + 2.0 * clock.rho * elapsed_since_resync
    return max(floor, skew + message_delay_term(dirty_bit, net))


def worst_case_blocking(clock: ClockConfig, elapsed_since_resync: float,
                        net: NetworkConfig) -> float:
    """``tau(1)`` — the dirty-process blocking period, used by the
    resynchronization guard."""
    return blocking_period(1, clock, elapsed_since_resync, net)
