"""Shared machinery of the TB checkpointing engines.

Both the original and adapted protocols follow the same skeleton
(paper Fig. 5):

1. a local-clock timer expires at ``dCKPT_time``;
2. the engine begins a stable-checkpoint *establishment*: it picks the
   initial checkpoint contents, starts the write, and enters a blocking
   period;
3. at the end of the blocking period the establishment *completes*: the
   (possibly swapped) contents are durably saved, ``Ndc`` is
   incremented, buffered deliveries and deferred sends are released, the
   next timer is armed at ``dCKPT_time + Delta``, and the
   resynchronization guard runs.

``Ndc`` therefore counts *completed* establishments — the paper's
``write_disk`` is synchronous over the blocking window, with ``Ndc++``
after it returns — which is exactly the convention the "passed AT"
epoch gate needs (see DESIGN.md, "Epoch convention").
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..checkpoint import Checkpoint
from ..messages.message import Message
from ..runtime import ClockConfig, EventPriority, NetworkConfig
from ..snapshot.sections import split_sections
from ..types import CheckpointKind, StableContent
from .blocking import TbConfig, blocking_period, worst_case_blocking


@dataclasses.dataclass
class PendingEstablishment:
    """An in-progress stable-checkpoint establishment."""

    epoch: int
    initial: Checkpoint
    match_bit: int
    started_at: float
    blocking_len: float
    swap: bool = False
    aborted: bool = False


class TbEngineBase:
    """Base class for the TB checkpointing engines.

    Parameters
    ----------
    process:
        The hosting :class:`~repro.host.FtProcess`.
    config, clock_config, net_config:
        Protocol and substrate parameters (the blocking formula needs
        the clock and delay bounds).
    resync:
        Optional :class:`~repro.tb.resync.ResyncService` the engine asks
        for timer resynchronization.
    """

    variant = "tb"

    def __init__(self, process, config: TbConfig, clock_config: ClockConfig,
                 net_config: NetworkConfig, resync=None) -> None:
        self.process = process
        self.config = config
        self.clock_config = clock_config
        self.net_config = net_config
        self.resync = resync
        #: Number of *completed* stable-checkpoint establishments.
        self.ndc = 0
        self.in_blocking = False
        self.stopped = False
        self._pending: Optional[PendingEstablishment] = None
        self._alarm = None
        self._next_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # shortcuts
    # ------------------------------------------------------------------
    @property
    def sim(self):
        """The simulator the hosting node lives on."""
        return self.process.sim

    @property
    def clock(self):
        """The local (drifting) clock that drives the timer."""
        return self.process.node.timers.clock

    def trace(self, category: str, **data) -> None:
        """Record a trace entry attributed to this engine's process."""
        recorder = self.process.trace
        if recorder.enabled:
            recorder.record(self.sim.now, category,
                            self.process.process_id, **data)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Save the genesis (epoch-0) checkpoint if none exists and arm
        the first checkpointing timer at the next interval boundary of
        the local clock — approximately simultaneous across processes,
        which is the premise of time-based checkpointing."""
        store = self.process.node.stable
        if store.peek(self.process.process_id) is None:
            genesis = self.process.capture_checkpoint(
                CheckpointKind.STABLE, epoch=0,
                content=StableContent.CURRENT_STATE, meta={"genesis": True})
            store.save(genesis)
        local_now = self.clock.now()
        boundary = (int(local_now / self.config.interval) + 1) * self.config.interval
        self._arm(boundary)

    def stop(self) -> None:
        """Permanently stop the engine (deposed process)."""
        self.stopped = True
        self._cancel_alarm()
        self._abort_pending("stopped")

    def on_crash(self) -> None:
        """Node crash: the in-progress establishment (if any) is lost
        with the node; the alarm was cancelled by the timer service."""
        self._abort_pending("crash")
        self._alarm = None

    def next_boundary_index(self) -> int:
        """Index of the next interval boundary on the local clock."""
        return int(self.clock.now() / self.config.interval) + 1

    def trigger_round(self) -> None:
        """Run one checkpoint establishment now, out of band.

        Scripted cross-backend workloads park the periodic timer far in
        the future and drive establishments explicitly, so both backends
        checkpoint at the same points of the causal history.  The next
        periodic deadline re-anchors to the current local time, keeping
        the parked timer parked.
        """
        if (self.stopped or self.process.node.crashed or self.process.deposed
                or self._pending is not None):
            return
        self._cancel_alarm()
        self._next_deadline = self.clock.now()
        self._on_timer()

    def reset_after_recovery(self, epoch: int,
                             boundary_index: Optional[int] = None) -> None:
        """Re-align after a hardware recovery: adopt the recovery line's
        epoch, abandon any in-progress establishment, and re-arm the
        timer at an interval boundary.

        ``boundary_index`` is the restart boundary the recovery
        coordinator agreed for *all* processes.  Without it, a recovery
        landing within clock skew of a boundary splits the processes:
        local clocks straddling the boundary re-arm a full interval
        apart, and the resulting same-epoch checkpoints — taken an
        interval apart, with application traffic in between — form a
        genuinely inconsistent recovery line (found by the schedule
        audit).  In a real system the agreed boundary piggybacks on the
        recovery/restart message.
        """
        if self.stopped:
            return
        self._abort_pending("hardware-recovery")
        self.ndc = epoch
        self._cancel_alarm()
        if boundary_index is None:
            boundary_index = self.next_boundary_index()
        self._arm(boundary_index * self.config.interval)
        self.trace("tb.reset", epoch=epoch)

    # ------------------------------------------------------------------
    # policy points implemented by subclasses
    # ------------------------------------------------------------------
    def should_buffer(self, message: Message) -> bool:  # pragma: no cover
        """Whether a delivery must wait out the blocking period."""
        raise NotImplementedError

    def _begin_establishment(self) -> PendingEstablishment:  # pragma: no cover
        """Choose the initial contents / match bit / blocking length."""
        raise NotImplementedError

    def _final_checkpoint(self, pending: PendingEstablishment) -> Checkpoint:
        """Decide what actually lands on disk (subclasses may swap)."""
        return pending.initial

    # ------------------------------------------------------------------
    # the createCKPT() skeleton
    # ------------------------------------------------------------------
    def _arm(self, local_deadline: float) -> None:
        self._next_deadline = local_deadline
        self._alarm = self.process.node.timers.set_alarm(
            local_deadline, self._on_timer, label=f"tb:{self.process.process_id}")

    def _on_timer(self) -> None:
        if self.stopped or self.process.node.crashed or self.process.deposed:
            return
        pending = self._begin_establishment()
        self._pending = pending
        # With blocking disabled (Fig. 2(a) ablation) the establishment
        # still takes the write latency, but the process neither buffers
        # deliveries nor defers its own sends.
        self.in_blocking = self.config.blocking_enabled
        self.trace("tb.establish.start", epoch=pending.epoch,
                   content=pending.initial.content.value,
                   blocking=pending.blocking_len,
                   dirty=pending.match_bit)
        self.trace("blocking.start", length=pending.blocking_len)
        self.sim.schedule_after(pending.blocking_len, self._complete,
                                args=(pending,), priority=EventPriority.CONTROL,
                                label=f"tb-complete:{self.process.process_id}")

    def _complete(self, pending: PendingEstablishment) -> None:
        if pending.aborted or pending is not self._pending:
            return
        if self.process.node.crashed or self.stopped:
            return
        final = self._final_checkpoint(pending)
        self.process.node.stable.save(final)
        self.ndc = pending.epoch
        self._pending = None
        self.in_blocking = False
        self.trace("tb.establish.done", epoch=final.epoch,
                   content=final.content.value if final.content else None,
                   swapped=pending.swap)
        self.trace("blocking.end", length=pending.blocking_len)
        self.process.counters.bump("checkpoint.stable")
        # Epoch caught up: first replay any validation notifications the
        # Ndc gate deferred, then release buffered application traffic.
        self.process.reprocess_notifications()
        self.process.release_buffer()
        self.process.compact_journals()
        self._arm(self._next_deadline + self.config.interval)
        self._check_resync()

    def _check_resync(self) -> None:
        """The Fig. 5 guard: resynchronize before drift inflates the
        worst-case blocking period past the configured fraction of the
        checkpoint interval."""
        if self.resync is None:
            return
        elapsed_next = self.clock.elapsed_since_resync() + self.config.interval
        tau_worst = worst_case_blocking(self.clock_config, elapsed_next,
                                        self.net_config)
        if tau_worst > self.config.resync_limit_fraction * self.config.interval:
            self.resync.request(reason=f"tb:{self.process.process_id}")

    # ------------------------------------------------------------------
    def _capture_stable(self, epoch: int, content: StableContent,
                        meta: Optional[dict] = None) -> Checkpoint:
        """Capture the current state as stable-checkpoint contents,
        honouring the ``save_unacked`` ablation flag."""
        checkpoint = self.process.capture_checkpoint(
            CheckpointKind.STABLE, epoch=epoch, content=content, meta=meta)
        return self._apply_save_unacked(checkpoint)

    def _apply_save_unacked(self, checkpoint: Checkpoint) -> Checkpoint:
        """Strip the unacknowledged-message set from stable contents when
        the ``save_unacked`` ablation is off.  Every checkpoint an engine
        saves to stable storage must pass through here — captures that
        bypass it silently neutralize the ablation."""
        if self.config.save_unacked:
            return checkpoint
        # Rewrite only the counters section (where ``unacked``
        # lives); the other sections — including any delta-encoded
        # journals — keep their payloads.
        snapshot = checkpoint.restore_state()
        snapshot.unacked = []
        counters = split_sections(snapshot).get("counters", {})
        return checkpoint.with_section("counters", counters)

    def _blocking_len(self, dirty_bit: int,
                      checkpoint: Optional[Checkpoint] = None) -> float:
        write_latency = self.process.node.stable.write_latency_for(checkpoint)
        if not self.config.blocking_enabled:
            # Fig. 2(a) ablation: the write still takes its latency, but
            # no message blocking protects the establishment.
            return write_latency
        return blocking_period(dirty_bit, self.clock_config,
                               self.clock.elapsed_since_resync(),
                               self.net_config,
                               floor=write_latency)

    def _abort_pending(self, reason: str) -> None:
        if self._pending is not None:
            self._pending.aborted = True
            self.trace("tb.establish.abort", epoch=self._pending.epoch,
                       reason=reason)
            self._pending = None
        self.in_blocking = False

    def _cancel_alarm(self) -> None:
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None
