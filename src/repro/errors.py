"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies separate simulation
substrate problems (scheduling, clocks, storage) from protocol-level
problems (configuration, invariant violations detected at runtime).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event substrate."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class ClockError(SimulationError):
    """A local-clock conversion was requested outside its valid range."""


class StorageError(SimulationError):
    """A checkpoint store was used incorrectly (e.g. read of a missing
    snapshot, or access to volatile storage on a crashed node)."""


class NetworkError(SimulationError):
    """A message was sent to an unknown endpoint or over a closed channel."""


class NodeCrashedError(SimulationError):
    """An operation touched a node that is currently crashed."""


class ProtocolError(ReproError):
    """Base class for protocol-level errors."""


class ConfigurationError(ProtocolError):
    """A protocol or experiment was configured with invalid parameters."""


class RecoveryError(ProtocolError):
    """Error recovery could not complete (e.g. no stable checkpoint)."""


class AcceptanceTestFailure(ProtocolError):
    """Raised internally when an acceptance test rejects an external
    message and no recovery handler is installed."""


class InvariantViolation(ProtocolError):
    """A global-state invariant (consistency / recoverability) was found
    to be violated by an invariant checker.

    The analysis checkers normally *report* violations as data rather
    than raising; this exception is used by the ``strict`` checking mode
    and by tests that assert a violation is impossible.
    """

    def __init__(self, message: str, violations=None):
        super().__init__(message)
        #: The list of :class:`repro.analysis.invariants.Violation`
        #: records that triggered the exception (possibly empty).
        self.violations = list(violations or [])


class AuditViolation(InvariantViolation):
    """Raised by the online auditor (:mod:`repro.audit`) in fail-fast
    mode: an invariant check failed at a protocol event while the
    simulation was still running.  Carries the full
    :class:`repro.audit.auditor.AuditFinding` — including the offending
    global-state line — as :attr:`finding`."""

    def __init__(self, message: str, violations=None, finding=None):
        super().__init__(message, violations=violations)
        #: The :class:`repro.audit.auditor.AuditFinding` that fired.
        self.finding = finding
