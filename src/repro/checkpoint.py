"""Checkpoint records.

A :class:`Checkpoint` freezes a process state through the
:mod:`~repro.snapshot` pipeline so that restoring it cannot alias live
objects — exactly the isolation property real volatile/stable
checkpoints have.  The same record type is used for the MDCD protocol's
volatile checkpoints (Type-1 / Type-2 / pseudo) and the TB protocols'
stable checkpoints; the ``kind``, ``epoch`` and ``content`` fields say
which flavour a given record is.

The record no longer holds raw pickled bytes: it wraps a
:class:`~repro.snapshot.sections.SnapshotPayload` — per-section encoded
data tagged with the codec id that produced it — so stores can account
bytes per section, incremental captures can chain deltas, and the codec
can change between runs without changing this record type.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Union

from .snapshot import Codec, SnapshotPayload, decode_payload, encode_full
from .snapshot.sections import SnapshotEncoder
from .types import CheckpointKind, ProcessId, StableContent


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of one process's checkpointable state.

    Attributes
    ----------
    process_id:
        Owner of the snapshot.
    kind:
        Volatile Type-1/Type-2/pseudo or stable (see
        :class:`~repro.types.CheckpointKind`).
    taken_at:
        True time at which the snapshot was taken.
    work_done:
        The process's accumulated computation (in work-seconds) at the
        moment of the snapshot — the quantity rollback distance is
        measured in (paper Fig. 7).
    payload:
        The encoded state: one
        :class:`~repro.snapshot.sections.SectionPayload` per snapshot
        section, each carrying its codec id and accounted byte size.
    epoch:
        For stable checkpoints, the TB epoch number ``Ndc`` this
        establishment belongs to; ``None`` for volatile checkpoints.
    content:
        For stable checkpoints written by the adapted TB protocol, which
        contents ended up on disk (current state / volatile copy /
        swapped); ``None`` otherwise.
    meta:
        Free-form annotations (dirty bit at snapshot time, trigger
        message sn, ...), used by traces and the analysis package.
    """

    process_id: ProcessId
    kind: CheckpointKind
    taken_at: float
    work_done: float
    payload: SnapshotPayload
    epoch: Optional[int] = None
    content: Optional[StableContent] = None
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def capture(cls, process_id: ProcessId, kind: CheckpointKind, state: Any,
                taken_at: float, work_done: float, epoch: Optional[int] = None,
                content: Optional[StableContent] = None,
                meta: Optional[Dict[str, Any]] = None,
                codec: Union[str, Codec, None] = None,
                encoder: Optional[SnapshotEncoder] = None) -> "Checkpoint":
        """Encode ``state`` and wrap it in a checkpoint record.

        ``codec`` selects the byte-level encoding (default: pickle, the
        seed behaviour).  ``encoder`` is the owning process's
        :class:`~repro.snapshot.sections.SnapshotEncoder`; when given,
        the journal and message-log sections may encode as deltas
        against the process's previous capture.  Without it, the state
        is encoded whole — arbitrary (non-snapshot) states always are.
        """
        if encoder is not None:
            payload = encoder.encode_snapshot(state, codec)
        else:
            payload = encode_full(state, codec)
        return cls(process_id=process_id, kind=kind, taken_at=taken_at,
                   work_done=work_done, payload=payload,
                   epoch=epoch, content=content, meta=dict(meta or {}))

    def restore_state(self) -> Any:
        """Decode a *fresh copy* of the snapshotted state, replaying
        any delta chains back to their full base sections."""
        return decode_payload(self.payload)

    def rewritten(self, **changes: Any) -> "Checkpoint":
        """A copy with some fields replaced (used when the adapted TB
        protocol swaps checkpoint contents mid-blocking)."""
        return dataclasses.replace(self, **changes)

    def with_section(self, section: str, value: Any,
                     codec: Union[str, Codec, None] = None) -> "Checkpoint":
        """A copy with one payload section re-encoded from ``value``
        (the ``save_unacked`` ablation rewrites the counters section
        without disturbing the rest)."""
        return dataclasses.replace(
            self, payload=self.payload.replace_section(section, value, codec))

    @property
    def size_bytes(self) -> int:
        """Accounted size of the encoded state — a proxy for
        checkpoint cost."""
        return self.payload.nbytes

    @property
    def codec_id(self) -> str:
        """Codec id of the payload (sections share one codec per
        capture)."""
        return self.payload.sections[0].codec_id

    def section_sizes(self) -> Dict[str, int]:
        """Accounted bytes per snapshot section."""
        return self.payload.section_sizes()
