"""Checkpoint records.

A :class:`Checkpoint` freezes a process state via :mod:`pickle` so that
restoring it cannot alias live objects — exactly the isolation property
real volatile/stable checkpoints have.  The same record type is used for
the MDCD protocol's volatile checkpoints (Type-1 / Type-2 / pseudo) and
the TB protocols' stable checkpoints; the ``kind``, ``epoch`` and
``content`` fields say which flavour a given record is.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any, Dict, Optional

from .types import CheckpointKind, ProcessId, StableContent


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of one process's checkpointable state.

    Attributes
    ----------
    process_id:
        Owner of the snapshot.
    kind:
        Volatile Type-1/Type-2/pseudo or stable (see
        :class:`~repro.types.CheckpointKind`).
    taken_at:
        True time at which the snapshot was taken.
    work_done:
        The process's accumulated computation (in work-seconds) at the
        moment of the snapshot — the quantity rollback distance is
        measured in (paper Fig. 7).
    state_bytes:
        The pickled process state.
    epoch:
        For stable checkpoints, the TB epoch number ``Ndc`` this
        establishment belongs to; ``None`` for volatile checkpoints.
    content:
        For stable checkpoints written by the adapted TB protocol, which
        contents ended up on disk (current state / volatile copy /
        swapped); ``None`` otherwise.
    meta:
        Free-form annotations (dirty bit at snapshot time, trigger
        message sn, ...), used by traces and the analysis package.
    """

    process_id: ProcessId
    kind: CheckpointKind
    taken_at: float
    work_done: float
    state_bytes: bytes
    epoch: Optional[int] = None
    content: Optional[StableContent] = None
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def capture(cls, process_id: ProcessId, kind: CheckpointKind, state: Any,
                taken_at: float, work_done: float, epoch: Optional[int] = None,
                content: Optional[StableContent] = None,
                meta: Optional[Dict[str, Any]] = None) -> "Checkpoint":
        """Pickle ``state`` and wrap it in a checkpoint record."""
        return cls(process_id=process_id, kind=kind, taken_at=taken_at,
                   work_done=work_done,
                   state_bytes=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
                   epoch=epoch, content=content, meta=dict(meta or {}))

    def restore_state(self) -> Any:
        """Unpickle a *fresh copy* of the snapshotted state."""
        return pickle.loads(self.state_bytes)

    def rewritten(self, **changes: Any) -> "Checkpoint":
        """A copy with some fields replaced (used when the adapted TB
        protocol swaps checkpoint contents mid-blocking)."""
        return dataclasses.replace(self, **changes)

    @property
    def size_bytes(self) -> int:
        """Size of the pickled state — a proxy for checkpoint cost."""
        return len(self.state_bytes)
