"""The discrete-event backend for scripted cross-backend workloads.

``SimBackend`` wraps the existing :class:`~repro.coordination.scheme.System`
(which already runs entirely on the runtime ports — the sim adapters)
and drives it with a :class:`~repro.runtime.script.WorkloadScript`:
advance the kernel one quiet step, inject the op, repeat.  The TB
interval is parked far beyond the script duration so establishments
happen only at scripted ``tb-round`` ops, and the Poisson workload
rates are near-zero so the action streams stay empty — the script is
the entire workload, exactly as on the live backend.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..tb.blocking import TbConfig
from .decisions import decisions_from_trace
from .script import ScriptOp, WorkloadScript, member_targets

#: TB interval used by scripted runs on BOTH backends: long enough that
#: the periodic timer never fires on its own within a scripted run.
SCRIPTED_TB_INTERVAL = 10_000.0

#: Near-zero Poisson rate (the config forbids all-zero rates); the
#: first generated arrival lands ~1e12 seconds out.
_IDLE_RATE = 1e-12

#: Sim-time advanced between barriers — ample for every in-flight
#: message, ack, and blocking period of one op to drain.
STEP_SECONDS = 5.0


def scripted_config(seed: int = 0, horizon: float = 1_000.0,
                    topology: str = "paper") -> SystemConfig:
    """The system configuration scripted runs use on the sim backend.

    The live agents mirror the protocol-relevant parts (scheme, TB
    interval, acceptance-test coverage, seed-derived RNG streams); the
    substrate parts (delays, drift) legitimately differ.
    """
    idle = WorkloadConfig(internal_rate=_IDLE_RATE, external_rate=_IDLE_RATE,
                          step_rate=_IDLE_RATE, horizon=horizon)
    return SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        tb=TbConfig(interval=SCRIPTED_TB_INTERVAL),
        workload1=idle, workload2=idle,
        trace_enabled=True,
        topology=topology,
    )


class SimBackend:
    """Run a scripted workload on the discrete-event substrate."""

    name = "sim"

    def __init__(self, seed: int = 0, step: float = STEP_SECONDS,
                 topology: str = "paper") -> None:
        self.seed = seed
        self.step = step
        horizon = 1_000.0
        self.system = build_system(scripted_config(seed=seed, horizon=horizon,
                                                   topology=topology))

    # ------------------------------------------------------------------
    def run_script(self, script: WorkloadScript) -> Dict[str, List[Dict[str, Any]]]:
        """Execute the script and return per-process decision traces."""
        system = self.system
        system.start()
        now = 0.0
        for sequence, op in script.numbered():
            now += self.step
            system.sim.run(until=now)
            self._apply(op, sequence)
        system.sim.run(until=now + self.step)
        return decisions_from_trace(system.trace)

    # ------------------------------------------------------------------
    def _apply(self, op: ScriptOp, sequence: int) -> None:
        if op.op == "settle":
            return
        if op.op == "tb-round":
            for process in self.system.process_list():
                if process.hardware is not None:
                    process.hardware.trigger_round()
            return
        if op.op == "crash":
            self.system.nodes[op.target].crash()
            return
        if op.op == "restart":
            # Node.restart notifies the hardware recovery coordinator,
            # which rolls every in-service process to the recovery line.
            self.system.nodes[op.target].restart()
            return
        action = op.action(sequence)
        for member_id in member_targets(op.target, self.system.topology):
            process = self.system.members[member_id]
            if process.deposed or process.node.crashed:
                continue
            process.perform_action(action)
