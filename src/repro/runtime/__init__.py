"""Transport-agnostic protocol runtime: ports and substrate adapters.

The protocol layer (``host``, ``mdcd``, ``tb``, ``coordination``,
``middleware``) imports its substrate *only* from this package.  The
names re-exported here are the sim adapters — the default backend, and
the verification oracle — re-exported under substrate-neutral names so
protocol modules carry no ``repro.sim`` imports; ``repro.live``
provides the real-process adapters for the same ports.

Class definitions stay in their original ``repro.sim`` modules: pickled
artifacts (warm-start images, checkpoint payloads) reference classes by
their defining module, and those paths must stay stable.

Submodules (imported explicitly, not at package import time — they pull
in the protocol layer and would cycle):

* :mod:`repro.runtime.script` — scripted cross-backend workloads;
* :mod:`repro.runtime.sim_backend` — the discrete-event script runner;
* :mod:`repro.runtime.crosscheck` — the sim-vs-live equivalence driver.
"""

from ..sim.clock import ClockConfig, DriftingClock
from ..sim.events import Event, EventPriority
from ..sim.kernel import Simulator
from ..sim.monitor import CounterSet
from ..sim.network import Endpoint, Network, NetworkConfig, Transmission
from ..sim.node import Node
from ..sim.process import SimProcess
from ..sim.rng import RngRegistry, derive_seed
from ..sim.storage import StableStore, VolatileStore
from ..sim.timers import Alarm, TimerService
from ..sim.trace import TraceRecord, TraceRecorder
from .decisions import decisions_from_trace, diff_decisions, record_to_decision
from .ports import (CancellableEvent, ClockSource, CrashPort, SchedulerPort,
                    StablePort, TimerPort, TraceSink, TransportPort,
                    VolatilePort, verify_ports)
from .wire import (FrameReader, WireIntegrityError, checksum_of, encode_frame,
                   decode_frame_payload, encode_message_frame,
                   message_from_dict, message_to_dict)

__all__ = [
    "Alarm",
    "CancellableEvent",
    "ClockConfig",
    "ClockSource",
    "CounterSet",
    "CrashPort",
    "DriftingClock",
    "Endpoint",
    "Event",
    "EventPriority",
    "FrameReader",
    "Network",
    "NetworkConfig",
    "Node",
    "RngRegistry",
    "SchedulerPort",
    "SimProcess",
    "Simulator",
    "StablePort",
    "StableStore",
    "TimerPort",
    "TimerService",
    "TraceRecord",
    "TraceRecorder",
    "TraceSink",
    "Transmission",
    "TransportPort",
    "VolatilePort",
    "VolatileStore",
    "WireIntegrityError",
    "checksum_of",
    "decisions_from_trace",
    "decode_frame_payload",
    "derive_seed",
    "diff_decisions",
    "encode_frame",
    "encode_message_frame",
    "message_from_dict",
    "message_to_dict",
    "record_to_decision",
    "verify_ports",
]
