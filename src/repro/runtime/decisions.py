"""Backend-neutral decision traces.

The cross-backend equivalence claim is about protocol *decisions* — the
checkpoint/recovery choices the paper's algorithms make — not about
substrate bookkeeping.  Message ids, wall-clock timestamps, blocking
lengths, and rollback distances differ legitimately between a
discrete-event run and three OS processes; the decision *sequence* must
not.

This module normalizes :class:`~repro.sim.trace.TraceRecord` entries to
plain dictionaries over a whitelist of decision categories, keeping only
the substrate-independent fields of each.  Both backends use the same
function — the sim extracts from its in-memory recorder, the live
agents stream each record through it into a JSONL file — so the two
traces are comparable by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim.trace import TraceRecord, TraceRecorder

#: The decision categories compared across backends, with the fields of
#: each that are substrate-independent.
_FIELDS_BY_CATEGORY = {
    "tb.establish.done": ("epoch", "content", "swapped"),
    "tb.reset": ("epoch",),
}
_FIELDS_BY_PREFIX = (
    # checkpoint.volatile.{pseudo,type-1,type-2}: the kind travels in the
    # category; work/meta amounts are timing-dependent.
    ("checkpoint.volatile.", ()),
    # recovery.rollback.{software,hardware}: the rollback target is the
    # decision; the distance is timing.
    ("recovery.rollback.", ("kind", "epoch")),
    ("recovery.rollforward.", ()),
    ("confidence.", ("bit", "reason")),
)
_BARE_CATEGORIES = frozenset({"at.pass", "at.fail", "recovery.depose"})


def record_to_decision(record: TraceRecord) -> Optional[Dict[str, Any]]:
    """Normalize one trace record, or ``None`` if it is not a decision."""
    category = record.category
    fields = _FIELDS_BY_CATEGORY.get(category)
    if fields is None:
        if category in _BARE_CATEGORIES:
            fields = ()
        else:
            for prefix, prefix_fields in _FIELDS_BY_PREFIX:
                if category.startswith(prefix):
                    fields = prefix_fields
                    break
            else:
                return None
    decision: Dict[str, Any] = {"event": category}
    for field in fields:
        decision[field] = record.data.get(field)
    return decision


def decisions_from_trace(trace: TraceRecorder) -> Dict[str, List[Dict[str, Any]]]:
    """Per-process ordered decision sequences from a trace recorder.

    Cross-process interleaving is *not* part of the equivalence claim
    (two backends may resolve concurrent establishments in either
    order), so decisions are grouped by process.
    """
    out: Dict[str, List[Dict[str, Any]]] = {}
    for record in trace:
        if record.process is None:
            continue
        decision = record_to_decision(record)
        if decision is not None:
            out.setdefault(str(record.process), []).append(decision)
    return out


def diff_decisions(expected: Dict[str, List[Dict[str, Any]]],
                   actual: Dict[str, List[Dict[str, Any]]],
                   expected_name: str = "sim",
                   actual_name: str = "live") -> List[str]:
    """Human-readable differences between two decision-trace sets
    (empty when equivalent)."""
    problems: List[str] = []
    for process in sorted(set(expected) | set(actual)):
        left = expected.get(process, [])
        right = actual.get(process, [])
        if left == right:
            continue
        if len(left) != len(right):
            problems.append(
                f"{process}: {len(left)} decisions on {expected_name}, "
                f"{len(right)} on {actual_name}")
        for index, (a, b) in enumerate(zip(left, right)):
            if a != b:
                problems.append(
                    f"{process}[{index}]: {expected_name}={a} {actual_name}={b}")
                break
        else:
            longer, name = ((left, expected_name) if len(left) > len(right)
                            else (right, actual_name))
            index = min(len(left), len(right))
            if index < len(longer):
                problems.append(
                    f"{process}[{index}]: only on {name}: {longer[index]}")
    return problems
