"""The ports the protocol layer runs against.

The MDCD/TB coordination logic (``host``, ``mdcd``, ``tb``,
``coordination``, ``middleware``) never talks to a concrete substrate.
It talks to a small set of *ports* — structural interfaces — and a
backend supplies adapters:

============  =====================================  ==========================
Port          Sim adapter                            Live adapter
============  =====================================  ==========================
SchedulerPort :class:`repro.sim.kernel.Simulator`    :class:`repro.live.loop.LiveScheduler`
ClockSource   :class:`repro.sim.clock.DriftingClock` :class:`repro.live.clock.WallClock`
TimerPort     :class:`repro.sim.timers.TimerService` (shared — runs on any SchedulerPort)
TransportPort :class:`repro.sim.network.Network`     :class:`repro.live.transport.LiveTransport`
StablePort    :class:`repro.sim.storage.StableStore` :class:`repro.live.storage.FileStableStore`
VolatilePort  :class:`repro.sim.storage.VolatileStore` (shared — plain memory)
CrashPort     :class:`repro.sim.node.Node`           :class:`repro.live.node.LiveNode`
TraceSink     :class:`repro.sim.trace.TraceRecorder` (shared — feeds decision logs)
============  =====================================  ==========================

The interfaces are :class:`typing.Protocol` classes, checked
structurally: the sim classes predate this module and satisfy the ports
as-is, which is exactly the point — the sim backend stays bit-for-bit
unchanged and serves as the verification oracle for any other backend
(see DESIGN.md, "Ports and adapters").
"""

from __future__ import annotations

from typing import (Any, Callable, Iterable, List, Optional, Protocol,
                    Sequence, Tuple, runtime_checkable)


@runtime_checkable
class CancellableEvent(Protocol):
    """A scheduled callback that can be revoked before it fires."""

    def cancel(self) -> None: ...


@runtime_checkable
class SchedulerPort(Protocol):
    """Orders and fires callbacks in (true-)time order.

    ``now`` is the substrate's authoritative true time: simulated time
    for the sim kernel, wall-clock seconds for the live loop.  Events
    carry a priority (see :class:`repro.sim.events.EventPriority`) and a
    diagnostic label; ``schedule_many`` is the bulk form timer resyncs
    use.
    """

    @property
    def now(self) -> float: ...

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    args: tuple = ..., priority: Any = ...,
                    label: str = ...) -> CancellableEvent: ...

    def schedule_after(self, delay: float, callback: Callable[..., Any],
                       args: tuple = ..., priority: Any = ...,
                       label: str = ...) -> CancellableEvent: ...

    def schedule_many(self, specs: Sequence[Tuple]) -> List[CancellableEvent]: ...


@runtime_checkable
class ClockSource(Protocol):
    """A local clock with a (possibly imperfect) mapping to true time.

    The TB protocols set alarms at *local* deadlines; the timer service
    converts them through ``true_time_of`` and re-converts on resync.
    """

    def now(self) -> float: ...

    def true_time_of(self, local_time: float) -> float: ...

    def elapsed_since_resync(self) -> float: ...

    def resync(self, reference_local: Optional[float] = ...) -> float: ...

    def on_resync(self, listener: Callable[..., None]) -> None: ...


@runtime_checkable
class TimerPort(Protocol):
    """Local-deadline alarms on top of a :class:`ClockSource`."""

    @property
    def clock(self) -> ClockSource: ...

    def set_alarm(self, local_deadline: float, callback: Callable[..., Any],
                  args: tuple = ..., label: str = ...) -> Any: ...

    def cancel_all(self) -> None: ...


@runtime_checkable
class TransportPort(Protocol):
    """Message transport between registered endpoints.

    The contract the protocol layer relies on (mirrored by both
    backends, asserted by ``tests/runtime/``):

    * FIFO per (sender, receiver) pair;
    * ``deliver`` returning ``False`` suppresses the automatic
      acknowledgement — the receiver acks later via :meth:`ack` once the
      message is actually *read* (TB buffering, deferred MDCD acks);
    * messages to a dead receiver are never acknowledged (the sender's
      unacknowledged set is exactly what recovery must re-send);
    * messages to ``DEVICE`` land in ``device_log``.
    """

    device_log: List[Any]

    def register(self, endpoint: Any) -> None: ...

    def send(self, message: Any) -> Any: ...

    def ack(self, message: Any) -> None: ...


@runtime_checkable
class StablePort(Protocol):
    """Durable checkpoint storage with per-process bounded history.

    ``save`` must be durable once it returns (fsync semantics in a real
    backend; the sim models the latency via ``write_latency_for``).
    """

    def save(self, checkpoint: Any) -> None: ...

    def latest(self, process_id: Any) -> Any: ...

    def peek(self, process_id: Any) -> Optional[Any]: ...

    def at_epoch(self, process_id: Any, epoch: int) -> Optional[Any]: ...

    def discard_after_epoch(self, process_id: Any, epoch: Optional[int]) -> int: ...

    def epochs(self, process_id: Any) -> List[int]: ...

    def history(self, process_id: Any) -> List[Any]: ...

    def write_latency_for(self, checkpoint: Optional[Any] = ...) -> float: ...


@runtime_checkable
class VolatilePort(Protocol):
    """Single-slot volatile (RAM) checkpoint storage."""

    def save(self, checkpoint: Any) -> None: ...

    def load(self) -> Any: ...

    def peek(self) -> Optional[Any]: ...

    def erase(self) -> None: ...


@runtime_checkable
class CrashPort(Protocol):
    """Fail-stop node semantics: crash notification, restart-with-
    recovery notification, and the liveness flag deliveries check."""

    crashed: bool

    def on_crash(self, listener: Callable[..., None]) -> None: ...

    def on_restart(self, listener: Callable[..., None]) -> None: ...


@runtime_checkable
class TraceSink(Protocol):
    """Receives protocol decision/trace records."""

    enabled: bool

    def wants(self, category: str) -> bool: ...

    def record(self, time: float, category: str,
               process: Optional[Any] = ..., **data: Any) -> Any: ...


def verify_ports(node: Any, transport: Any, scheduler: Any) -> List[str]:
    """Structural sanity check a backend can run at build time: returns
    the list of port violations (empty when everything conforms)."""
    problems: List[str] = []
    checks: Iterable[Tuple[str, Any, type]] = (
        ("scheduler", scheduler, SchedulerPort),
        ("transport", transport, TransportPort),
        ("node", node, CrashPort),
        ("node.stable", getattr(node, "stable", None), StablePort),
        ("node.volatile", getattr(node, "volatile", None), VolatilePort),
        ("node.timers.clock", getattr(getattr(node, "timers", None),
                                      "clock", None), ClockSource),
    )
    for name, obj, port in checks:
        if obj is None or not isinstance(obj, port):
            problems.append(f"{name} does not satisfy {port.__name__}")
    return problems
