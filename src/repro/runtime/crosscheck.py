"""Sim-as-oracle cross-check: one scripted workload, two backends.

Runs the same :class:`~repro.runtime.script.WorkloadScript` on the
discrete-event backend and on three real OS processes, then compares
the normalized per-process decision sequences.  Equivalence means the
protocol logic — which is byte-identical on both backends — made the
same checkpoint/recovery choices under real concurrency as under the
verified simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..topology.model import parse_topology
from .decisions import diff_decisions
from .script import WorkloadScript, standard_script, topology_script
from .sim_backend import SimBackend


@dataclasses.dataclass
class CrosscheckResult:
    """Outcome of one cross-backend run."""

    equivalent: bool
    seed: int
    ops: int
    differences: List[str]
    sim_decisions: Dict[str, List[Dict[str, Any]]]
    live_decisions: Dict[str, List[Dict[str, Any]]]
    topology: str = "paper"

    def summary(self) -> Dict[str, Any]:
        return {
            "equivalent": self.equivalent,
            "seed": self.seed,
            "ops": self.ops,
            "topology": self.topology,
            "differences": self.differences,
            "decisions_per_process": {
                process: len(seq)
                for process, seq in sorted(self.sim_decisions.items())},
        }


def run_crosscheck(seed: int = 0, script: Optional[WorkloadScript] = None,
                   workdir: Optional[str] = None,
                   topology: str = "paper") -> CrosscheckResult:
    """Run the script on both backends and diff the decision traces.

    ``workdir`` keeps the live backend's artifacts (decision JSONL
    files, stable-storage directories, agent logs) for inspection;
    otherwise a temporary directory is used and cleaned up.  A
    non-paper ``topology`` spawns one live OS process per member and
    defaults the script to the generalized :func:`topology_script`.
    """
    from ..live.harness import LiveHarness  # deferred: OS-process backend

    topo = parse_topology(topology)
    if script is None:
        script = (standard_script() if topo.is_paper
                  else topology_script(topo))
    sim_decisions = SimBackend(seed=seed, topology=topology).run_script(script)
    live_decisions = LiveHarness(seed=seed, workdir=workdir,
                                 topology=topology).run_script(script)
    differences = diff_decisions(sim_decisions, live_decisions)
    return CrosscheckResult(
        equivalent=not differences, seed=seed, ops=len(script),
        differences=differences, sim_decisions=sim_decisions,
        live_decisions=live_decisions, topology=topo.spec)
