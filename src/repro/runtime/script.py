"""Scripted cross-backend workloads.

A :class:`WorkloadScript` is an ordered list of operations applied at
quiesced barriers: every op runs only after the previous one's effects
have fully propagated (no in-flight messages, no pending protocol
events).  Under that discipline both backends execute the *same*
causal history, so the per-process decision sequences must match —
the basis of the sim-as-oracle cross-check.

Op vocabulary
-------------
``internal``/``external``/``step`` target a *component*: ``C1`` applies
the same :class:`~repro.app.workload.Action` to every replica of
component 1 (an active and its shadows share one action stream, paper
Section 2.1); a peer role id (``P2`` in the paper shape, ``P1``..``PU``
generally) applies it to that peer.  ``tb-round`` triggers one
checkpoint establishment on every in-service engine (the engines'
periodic timers are parked far in the future so rounds happen only when
scripted).  ``crash``/``restart`` name a node; restart implies the
coordinated hardware recovery.  ``settle`` is a pure barrier.

Targets resolve against a :class:`~repro.topology.model.Topology` via
:func:`member_targets`; the legacy :meth:`ScriptOp.roles` API keeps
working for the paper shape.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

from ..app.workload import Action, ActionKind
from ..topology.model import MemberKind, Topology
from ..types import Role

#: Component targets and the process roles each op fans out to.
COMPONENT_TARGETS = {
    "C1": (Role.ACTIVE_1, Role.SHADOW_1),
    "P2": (Role.PEER_2,),
}

#: Script-injected actions use indices far past any generated stream.
SCRIPT_ACTION_BASE = 20_000_000

_ACTION_KINDS = {
    "internal": ActionKind.SEND_INTERNAL,
    "external": ActionKind.SEND_EXTERNAL,
    "step": ActionKind.LOCAL_STEP,
}


@dataclasses.dataclass(frozen=True)
class ScriptOp:
    """One scripted operation.

    ``target`` is a component name for application ops, a node name for
    ``crash``/``restart``, and empty for ``tb-round``/``settle``.
    ``stimulus`` is the deterministic application input.
    """

    op: str
    target: str = ""
    stimulus: int = 0

    def is_application(self) -> bool:
        return self.op in _ACTION_KINDS

    def action(self, sequence: int) -> Action:
        """The workload action this op injects (identical on every
        backend and every replica it fans out to)."""
        if not self.is_application():
            raise ValueError(f"op {self.op!r} carries no action")
        return Action(index=SCRIPT_ACTION_BASE + sequence,
                      kind=_ACTION_KINDS[self.op], gap=0.0,
                      stimulus=self.stimulus)

    def roles(self) -> Tuple[Role, ...]:
        """The process roles an application op targets (paper shape)."""
        try:
            return COMPONENT_TARGETS[self.target]
        except KeyError:
            raise ValueError(f"unknown component target {self.target!r}") from None


def member_targets(target: str, topology: Topology) -> Tuple[str, ...]:
    """Resolve an application-op target to member role ids.

    ``C{n}`` fans out to component ``n``'s active and all its shadows
    (one shared action stream); a peer's role id targets that peer.
    """
    if target.startswith("C") and target[1:].isdigit():
        component = int(target[1:])
        active = topology.active_of(component)
        return (active.role_id,) + tuple(
            s.role_id for s in topology.shadows_of(component))
    member = topology.member(target)
    if member.kind is not MemberKind.PEER:
        raise ValueError(f"target {target!r} names a guarded replica; "
                         f"use C{member.component} for its component")
    return (member.role_id,)


@dataclasses.dataclass(frozen=True)
class WorkloadScript:
    """An ordered, barrier-separated op sequence."""

    ops: Tuple[ScriptOp, ...]

    def __iter__(self) -> Iterator[ScriptOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def numbered(self) -> List[Tuple[int, ScriptOp]]:
        """Ops with their injection sequence numbers (used as action
        indices, so both backends construct identical actions)."""
        return list(enumerate(self.ops))


def standard_script() -> WorkloadScript:
    """The canonical cross-check script: contamination build-up, dirty
    and clean establishments, an external validation round each way, one
    node crash + coordinated hardware recovery, and post-recovery
    traffic — every decision family the equivalence claim covers.
    """
    return WorkloadScript(ops=(
        # Contaminate: active takes its pseudo checkpoint, P2 its Type-1.
        ScriptOp("internal", "C1", stimulus=11),
        ScriptOp("internal", "C1", stimulus=12),
        # Dirty establishment (volatile-copy contents).
        ScriptOp("tb-round"),
        # Active passes its AT: passed-AT fan-out cleans the system.
        ScriptOp("external", "C1", stimulus=13),
        # Clean establishment (current-state contents).
        ScriptOp("tb-round"),
        # Re-contaminate, then validate from the peer side.
        ScriptOp("internal", "C1", stimulus=14),
        ScriptOp("external", "P2", stimulus=15),
        ScriptOp("tb-round"),
        # Crash the peer's node; recovery rolls everyone to the line.
        ScriptOp("crash", "N2"),
        ScriptOp("settle"),
        ScriptOp("restart", "N2"),
        # Post-recovery traffic and a final establishment.
        ScriptOp("internal", "C1", stimulus=16),
        ScriptOp("external", "C1", stimulus=17),
        ScriptOp("tb-round"),
    ))


def smoke_script() -> WorkloadScript:
    """A short crash-free script for quick conformance smokes."""
    return WorkloadScript(ops=(
        ScriptOp("internal", "C1", stimulus=1),
        ScriptOp("tb-round"),
        ScriptOp("external", "C1", stimulus=2),
        ScriptOp("tb-round"),
    ))


def topology_script(topology: Topology,
                    crash: bool = True) -> WorkloadScript:
    """The ``standard_script`` shape generalized over a topology.

    Every component contaminates and then validates (so each guarded
    pair and the whole peer mesh see dirty and clean establishments);
    the first peer validates from its own side; optionally the first
    peer's node crashes and the coordinated hardware recovery runs;
    post-recovery traffic closes the run.  Stimuli are deterministic so
    both backends construct identical actions.
    """
    components = [f"C{c}" for c in range(1, topology.n_components + 1)]
    first_peer = topology.peers()[0]
    ops: List[ScriptOp] = []
    stimulus = 10
    for target in components:
        ops.append(ScriptOp("internal", target, stimulus=stimulus + 1))
        ops.append(ScriptOp("internal", target, stimulus=stimulus + 2))
        stimulus += 2
    ops.append(ScriptOp("tb-round"))
    for target in components:
        stimulus += 1
        ops.append(ScriptOp("external", target, stimulus=stimulus))
    ops.append(ScriptOp("tb-round"))
    # Re-contaminate component 1, validate from the peer side.
    ops.append(ScriptOp("internal", "C1", stimulus=stimulus + 1))
    ops.append(ScriptOp("external", first_peer.role_id, stimulus=stimulus + 2))
    stimulus += 2
    ops.append(ScriptOp("tb-round"))
    if crash:
        ops.append(ScriptOp("crash", first_peer.node_id))
        ops.append(ScriptOp("settle"))
        ops.append(ScriptOp("restart", first_peer.node_id))
    ops.append(ScriptOp("internal", "C1", stimulus=stimulus + 1))
    ops.append(ScriptOp("external", "C1", stimulus=stimulus + 2))
    ops.append(ScriptOp("tb-round"))
    return WorkloadScript(ops=tuple(ops))
