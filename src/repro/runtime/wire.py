"""Shared message wire format: canonical JSON framing with per-message
integrity checksums.

Both backends describe a :class:`~repro.messages.message.Message` with
the same dictionary codec; the live backend additionally frames the
dictionaries for a byte stream:

``[4-byte big-endian length][canonical JSON envelope]``

where the envelope is ``{"v": version, "sum": sha256(body), "body": body}``
and the checksum covers the canonically serialized body (sorted keys,
minimal separators) — so encoding is *stable*: the same logical message
always produces the same bytes, and any corruption of the body is
detected before the payload reaches protocol code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
from typing import Any, Dict, List, Optional

from ..app.component import Payload
from ..errors import NetworkError
from ..messages.message import Message
from ..types import MessageKind, ProcessId

#: Wire protocol version; receivers reject envelopes they cannot parse.
WIRE_VERSION = 1

#: Upper bound on a single frame (checkpoint-free control plane; a
#: larger length prefix means a corrupt or hostile stream).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireIntegrityError(NetworkError):
    """A frame failed checksum, version, or structural verification."""


def canonical_bytes(obj: Any) -> bytes:
    """Canonical JSON serialization: key-sorted, minimal separators —
    the byte stability the checksum (and round-trip tests) rely on."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def body_checksum(body: Any) -> str:
    """sha256 over the canonical serialization of ``body``."""
    return hashlib.sha256(canonical_bytes(body)).hexdigest()


def encode_frame(body: Any) -> bytes:
    """Frame ``body`` (a JSON-able object) for a byte stream."""
    envelope = {"v": WIRE_VERSION, "sum": body_checksum(body), "body": body}
    data = canonical_bytes(envelope)
    if len(data) > MAX_FRAME_BYTES:
        raise WireIntegrityError(f"frame too large: {len(data)} bytes")
    return _LENGTH.pack(len(data)) + data


def decode_frame_payload(data: bytes) -> Any:
    """Verify and unwrap one frame's envelope (without length prefix)."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireIntegrityError(f"undecodable frame: {exc}") from exc
    if not isinstance(envelope, dict):
        raise WireIntegrityError(f"frame envelope is {type(envelope).__name__}, "
                                 "expected object")
    if envelope.get("v") != WIRE_VERSION:
        raise WireIntegrityError(f"unsupported wire version {envelope.get('v')!r}")
    if "sum" not in envelope or "body" not in envelope:
        raise WireIntegrityError("frame envelope missing 'sum'/'body'")
    body = envelope["body"]
    if body_checksum(body) != envelope["sum"]:
        raise WireIntegrityError("frame checksum mismatch")
    return body


class FrameReader:
    """Incremental frame decoder for a TCP byte stream.

    Feed it arbitrarily chopped chunks; it returns every completed
    frame's verified body.  Corruption raises
    :class:`WireIntegrityError` — callers drop the connection (the
    sender's retry path re-delivers).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[Any]:
        self._buffer.extend(chunk)
        bodies: List[Any] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return bodies
            (length,) = _LENGTH.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise WireIntegrityError(f"frame length {length} exceeds cap")
            if len(self._buffer) < _LENGTH.size + length:
                return bodies
            data = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
            del self._buffer[:_LENGTH.size + length]
            bodies.append(decode_frame_payload(data))

    def pending_bytes(self) -> int:
        """Bytes buffered awaiting frame completion."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# Message <-> dict codec
# ----------------------------------------------------------------------
def _encode_payload(payload: Any) -> Any:
    if payload is None:
        return None
    if isinstance(payload, Payload):
        return {"_payload": True, "value": payload.value,
                "corrupt": payload.corrupt}
    return payload


def _decode_payload(data: Any) -> Any:
    if isinstance(data, dict) and data.get("_payload"):
        return Payload(value=data["value"], corrupt=bool(data["corrupt"]))
    return data


def message_to_dict(message: Message) -> Dict[str, Any]:
    """Describe a :class:`Message` as a JSON-able dictionary.

    ``resend_of`` may be a dedup-key tuple; JSON turns tuples into
    lists, and :func:`message_from_dict` restores them.
    """
    resend_of = message.resend_of
    if isinstance(resend_of, tuple):
        resend_of = list(resend_of)
    return {
        "kind": message.kind.value,
        "sender": str(message.sender),
        "receiver": str(message.receiver),
        "payload": _encode_payload(message.payload),
        "sn": message.sn,
        "ndc": message.ndc,
        "dirty_bit": message.dirty_bit,
        "taint_sn": message.taint_sn,
        "taint_map": message.taint_map,
        "dsn": message.dsn,
        "corrupt": message.corrupt,
        "resend_of": resend_of,
        "incarnation": message.incarnation,
        "msg_id": message.msg_id,
        "send_time": message.send_time,
        "born_at": message.born_at,
    }


_MESSAGE_FIELDS = {f.name for f in dataclasses.fields(Message)}


def message_from_dict(data: Dict[str, Any]) -> Message:
    """Rebuild a :class:`Message` from its wire dictionary."""
    unknown = set(data) - _MESSAGE_FIELDS
    if unknown:
        raise WireIntegrityError(f"unknown message fields: {sorted(unknown)}")
    try:
        kind = MessageKind(data["kind"])
        sender = ProcessId(data["sender"])
        receiver = ProcessId(data["receiver"])
    except (KeyError, ValueError) as exc:
        raise WireIntegrityError(f"malformed message dict: {exc}") from exc
    resend_of = data.get("resend_of")
    if isinstance(resend_of, list):
        resend_of = tuple(resend_of)
    return Message(
        kind=kind, sender=sender, receiver=receiver,
        payload=_decode_payload(data.get("payload")),
        sn=data.get("sn"), ndc=data.get("ndc"),
        dirty_bit=data.get("dirty_bit"), taint_sn=data.get("taint_sn"),
        taint_map=(None if data.get("taint_map") is None
                   else {str(k): int(v)
                         for k, v in data["taint_map"].items()}),
        dsn=data.get("dsn"), corrupt=bool(data.get("corrupt", False)),
        resend_of=resend_of,
        incarnation=int(data.get("incarnation", 0)),
        msg_id=int(data["msg_id"]),
        send_time=float(data.get("send_time", 0.0)),
        born_at=float(data.get("born_at", 0.0)),
    )


def encode_message_frame(message: Message) -> bytes:
    """One-step message framing (codec + envelope + length prefix)."""
    return encode_frame(message_to_dict(message))


def verify_message_roundtrip(message: Message) -> bool:
    """Whether a message survives the wire codec unchanged (tuples in
    ``resend_of`` are restored; everything else must be JSON-stable)."""
    return message_from_dict(message_to_dict(message)) == message


def checksum_of(message: Message) -> str:
    """The integrity checksum a frame carrying ``message`` would bear."""
    return body_checksum(message_to_dict(message))
