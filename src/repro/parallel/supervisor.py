"""Worker supervision for sharded campaign execution.

The executor layer (:mod:`repro.parallel.pool`) hands this supervisor a
list of shard payloads and a picklable worker function; the supervisor
owns every failure mode between "submit" and "all results collected":

* **per-shard timeout** — a hung worker is abandoned (the pool is torn
  down; futures cannot kill a single process) and the shard retried;
* **bounded retry with exponential backoff** — crashes
  (``BrokenProcessPool``), timeouts and raised exceptions requeue the
  shard up to ``max_retries`` extra attempts;
* **graceful degradation** — a shard that keeps failing in workers, or
  a platform with no usable ``fork``/``spawn`` start method, runs
  in-process serially instead, so the campaign always completes (a
  deterministic error then surfaces with its real traceback).

The sleep function is injectable so retry/backoff logic is testable
without wall-clock delays.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import random
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .progress import ProgressReporter


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout policy for one campaign."""

    shard_timeout: Optional[float] = 600.0
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    #: Full jitter: each retry sleeps ``uniform(0, ceiling)`` instead of
    #: the ceiling itself, so the shards of one failed round don't
    #: resubmit in lockstep against whatever resource killed them.
    jitter: bool = True
    start_method: Optional[str] = None

    def backoff(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """Sleep before retry ``attempt`` (1-based).

        The exponential ceiling is ``base * factor**(attempt-1)``; with
        ``jitter`` the actual sleep is drawn uniformly from
        ``[0, ceiling)`` (full jitter — the variant that minimizes
        total contention for a fixed expected delay).  ``rng=None``
        uses module-level :mod:`random`; tests pass a seeded
        :class:`random.Random` for reproducible draws.
        """
        ceiling = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        if not self.jitter:
            return ceiling
        draw = (rng or random).uniform(0.0, ceiling)
        return draw


def multiprocessing_supported(start_method: Optional[str] = None) -> bool:
    """Whether this platform can actually start worker processes."""
    try:
        methods = multiprocessing.get_all_start_methods()
        if not methods:
            return False
        if start_method is not None and start_method not in methods:
            return False
        return True
    except (ImportError, OSError, ValueError):
        return False


def _pick_start_method(config: SupervisorConfig) -> Optional[str]:
    if config.start_method is not None:
        return config.start_method
    # fork avoids re-importing the package per worker, which matters for
    # the short shards the quick benches run; fall back to the default.
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return None


class ShardSupervisor:
    """Runs shards in a process pool and survives its failures."""

    def __init__(self, config: SupervisorConfig = SupervisorConfig(), *,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        self.config = config
        self._sleep = sleep
        self._rng = rng
        self.progress = progress
        self.events: List[str] = []

    def _note(self, event: str) -> None:
        self.events.append(event)

    def _retry_note(self, index: int, attempt: int, reason: str) -> None:
        self._note(f"retry shard {index} (attempt {attempt}): {reason}")
        if self.progress is not None:
            self.progress.shard_retried(index, attempt, reason)

    def _degrade_note(self, reason: str) -> None:
        self._note(f"degraded: {reason}")
        if self.progress is not None:
            self.progress.degraded(reason)

    def run(self, worker_fn: Callable[[Any], Any], shards: Sequence[Any],
            workers: int,
            on_shard_done: Optional[Callable[[int, Any], None]] = None
            ) -> List[Any]:
        """Evaluate ``worker_fn(shard)`` for every shard; results are
        returned aligned with ``shards``.

        ``on_shard_done(index, result)`` fires as each shard lands
        (from cache-of-failure retries too, exactly once per shard).
        """
        results: List[Any] = [None] * len(shards)

        def land(index: int, value: Any) -> None:
            results[index] = value
            if on_shard_done is not None:
                on_shard_done(index, value)

        if workers <= 1 or len(shards) <= 1 \
                or not multiprocessing_supported(self.config.start_method):
            if workers > 1 and len(shards) > 1:
                self._degrade_note("platform lacks multiprocessing support")
            for index, shard in enumerate(shards):
                land(index, worker_fn(shard))
            return results

        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(shards))]
        method = _pick_start_method(self.config)
        context = (multiprocessing.get_context(method)
                   if method is not None else None)

        while pending:
            exhausted = [(i, a) for i, a in pending
                         if a > self.config.max_retries]
            pending = [(i, a) for i, a in pending
                       if a <= self.config.max_retries]
            for index, _ in exhausted:
                self._degrade_note(
                    f"shard {index} exceeded {self.config.max_retries} "
                    "retries; running in-process")
                land(index, worker_fn(shards[index]))
            if not pending:
                break

            max_attempt = max(a for _, a in pending)
            if max_attempt > 0:
                self._sleep(self.config.backoff(max_attempt, self._rng))

            requeue: List[Tuple[int, int]] = []
            try:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)),
                    mp_context=context)
            except (OSError, ValueError) as exc:
                self._degrade_note(f"cannot start worker pool ({exc!r}); "
                                   "running in-process")
                for index, _ in pending:
                    land(index, worker_fn(shards[index]))
                return results

            futures = {executor.submit(worker_fn, shards[index]):
                       (index, attempt) for index, attempt in pending}
            abandoned = False
            try:
                for future in list(futures):
                    index, attempt = futures[future]
                    if abandoned:
                        # A hung shard poisoned this pool; anything not
                        # already finished goes to the next round.
                        if future.done() and not future.cancelled() \
                                and future.exception() is None:
                            land(index, future.result())
                        else:
                            requeue.append((index, attempt))
                        continue
                    try:
                        land(index,
                             future.result(timeout=self.config.shard_timeout))
                    except concurrent.futures.TimeoutError:
                        self._retry_note(index, attempt + 1,
                                         f"timeout after "
                                         f"{self.config.shard_timeout}s")
                        requeue.append((index, attempt + 1))
                        abandoned = True
                    except concurrent.futures.process.BrokenProcessPool:
                        self._retry_note(index, attempt + 1,
                                         "worker process died")
                        requeue.append((index, attempt + 1))
                        abandoned = True
                    except concurrent.futures.CancelledError:
                        requeue.append((index, attempt))
                    except Exception as exc:  # raised inside the worker
                        self._retry_note(index, attempt + 1,
                                         f"worker raised {type(exc).__name__}")
                        requeue.append((index, attempt + 1))
            finally:
                executor.shutdown(wait=not abandoned, cancel_futures=True)
            pending = requeue

        return results

    def run_serial(self, worker_fn: Callable[[Any], Any],
                   shards: Sequence[Any],
                   on_shard_done: Optional[Callable[[int, Any], None]] = None
                   ) -> List[Any]:
        """The in-process path, exposed for callers that degrade early
        (e.g. an unpicklable task)."""
        return self.run(worker_fn, shards, workers=1,
                        on_shard_done=on_shard_done)
