"""Sharded multi-process campaign execution.

A fault-tolerant executor for a fault-tolerance reproduction: campaigns
shard their replication seed list across worker processes, merge shard
statistics with the parallel Welford merge, cache completed cells on
disk, supervise workers (timeout, bounded retry, serial degradation)
and report progress telemetry.

* :mod:`~repro.parallel.pool` — :class:`ParallelCampaignRunner` and the
  generic :func:`parallel_map`.
* :mod:`~repro.parallel.cache` — :class:`ResultCache`, keyed by
  ``(label, master seed, replication, config fingerprint)``.
* :mod:`~repro.parallel.supervisor` — :class:`ShardSupervisor` retry /
  timeout / degradation policy.
* :mod:`~repro.parallel.progress` — :class:`ProgressReporter` stderr
  lines + JSON telemetry.
"""

from .cache import (
    CacheKey,
    ResultCache,
    campaign_fingerprint,
    config_fingerprint,
    default_cache_dir,
)
from .pool import (
    ParallelCampaignRunner,
    default_worker_count,
    make_shards,
    parallel_map,
)
from .progress import ProgressReporter
from .supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    multiprocessing_supported,
)

__all__ = [
    "CacheKey",
    "ParallelCampaignRunner",
    "ProgressReporter",
    "ResultCache",
    "ShardSupervisor",
    "SupervisorConfig",
    "campaign_fingerprint",
    "config_fingerprint",
    "default_cache_dir",
    "default_worker_count",
    "make_shards",
    "multiprocessing_supported",
    "parallel_map",
]
