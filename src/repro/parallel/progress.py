"""Progress and telemetry for sharded campaign execution.

The reporter is deliberately dependency-free: one line to stderr per
shard (throughput, ETA) plus a machine-readable JSON summary for
tooling.  The clock is injectable so the arithmetic is testable without
real sleeping.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TextIO


class ProgressReporter:
    """Tracks shard completion, throughput and ETA for one campaign."""

    def __init__(self, label: str = "", *, stream: Optional[TextIO] = None,
                 enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.label = label
        self.enabled = enabled
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.total_shards = 0
        self.shards_done = 0
        self.samples = 0
        self.replications_done = 0
        self.cache_hits = 0
        self.retries = 0
        self.fallbacks = 0
        self.shard_wall_times: List[float] = []
        self.events: List[str] = []
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------

    def start(self, total_shards: int, cached_replications: int = 0) -> None:
        """Begin a campaign of ``total_shards`` live shards."""
        self.total_shards = total_shards
        self.cache_hits = cached_replications
        self._started_at = self._clock()
        if cached_replications:
            self._emit(f"{cached_replications} replication(s) served "
                       "from cache")

    def shard_done(self, shard_index: int, replications: int,
                   samples: int, wall_time: float) -> None:
        """Record one completed shard and print a progress line."""
        self.shards_done += 1
        self.replications_done += replications
        self.samples += samples
        self.shard_wall_times.append(wall_time)
        snap = self.snapshot()
        eta = snap["eta_seconds"]
        eta_text = f"{eta:6.1f}s" if eta is not None else "    ? "
        self._emit(
            f"shard {shard_index:>3} done in {wall_time:6.2f}s  "
            f"[{self.shards_done}/{self.total_shards}]  "
            f"{snap['samples_per_sec']:8.1f} samples/s  eta {eta_text}")

    def shard_retried(self, shard_index: int, attempt: int,
                      reason: str) -> None:
        """Record a supervised retry."""
        self.retries += 1
        self.events.append(f"retry shard {shard_index} "
                           f"(attempt {attempt}): {reason}")
        self._emit(f"shard {shard_index} attempt {attempt} failed "
                   f"({reason}); retrying")

    def degraded(self, reason: str) -> None:
        """Record a fallback to in-process serial execution."""
        self.fallbacks += 1
        self.events.append(f"degraded to serial: {reason}")
        self._emit(f"falling back to in-process execution: {reason}")

    def finish(self) -> None:
        """Close the campaign and print the summary line."""
        self._finished_at = self._clock()
        snap = self.snapshot()
        self._emit(
            f"campaign done: {self.replications_done} replication(s), "
            f"{self.samples} samples in {snap['elapsed_seconds']:.2f}s "
            f"({snap['samples_per_sec']:.1f} samples/s; "
            f"{self.cache_hits} from cache)")

    # -- reporting ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable telemetry at this instant."""
        now = (self._finished_at if self._finished_at is not None
               else self._clock())
        started = self._started_at if self._started_at is not None else now
        elapsed = max(now - started, 0.0)
        rate = self.samples / elapsed if elapsed > 0 else 0.0
        remaining = self.total_shards - self.shards_done
        eta: Optional[float] = None
        if self.shards_done and remaining > 0:
            eta = elapsed / self.shards_done * remaining
        elif remaining == 0:
            eta = 0.0
        return {
            "label": self.label,
            "shards_done": self.shards_done,
            "total_shards": self.total_shards,
            "replications_done": self.replications_done,
            "samples": self.samples,
            "elapsed_seconds": elapsed,
            "samples_per_sec": rate,
            "eta_seconds": eta,
            "per_shard_wall_seconds": list(self.shard_wall_times),
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "events": list(self.events),
        }

    def write_json(self, path) -> None:
        """Dump :meth:`snapshot` to ``path``."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=2),
                              encoding="utf-8")

    def _emit(self, line: str) -> None:
        if not self.enabled:
            return
        prefix = f"[{self.label}] " if self.label else ""
        print(f"{prefix}{line}", file=self._stream)
