"""Sharded multi-process campaign execution.

:class:`ParallelCampaignRunner` turns a replicated campaign — the exact
workload :func:`repro.experiments.runner.run_campaign` runs serially —
into sharded multi-process execution:

* the replication seed list comes from the same
  :func:`~repro.experiments.runner.replication_seeds`, so seed pairing
  across configurations (the variance-reduction device behind paired
  comparisons like E[D_co] vs E[D_wt]) is preserved bit-for-bit;
* each worker runs a contiguous shard of replications and sends back
  the per-replication samples plus its shard
  :class:`~repro.sim.monitor.RunningStat`;
* the parent folds shard statistics together with the existing
  parallel Welford :meth:`~repro.sim.monitor.RunningStat.merge` and
  reassembles the sample list in replication order, so the sample
  multiset (in fact the sample *sequence*) is identical to a serial
  run; the merged mean agrees up to floating-point reassociation
  (≤ a few ulps).

Worker failures are owned by :class:`~repro.parallel.supervisor
.ShardSupervisor`; completed cells land in an optional
:class:`~repro.parallel.cache.ResultCache` so interrupted or repeated
sweeps only compute what is missing.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.monitor import RunningStat, summarize
from .cache import CacheKey, ResultCache, stable_dumps
from .progress import ProgressReporter
from .supervisor import ShardSupervisor, SupervisorConfig

# One work unit: (replication index, seed) pairs for one worker call.
Shard = List[Tuple[int, int]]


def default_worker_count() -> int:
    """Usable CPUs (respecting affinity masks), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _run_shard(payload: Tuple[Callable[[int], Iterable[float]], Shard]
               ) -> Dict[str, Any]:
    """Worker body: run every replication of one shard.

    Returns per-replication samples plus the shard's own Welford
    accumulation (serialized — instances cross process boundaries as
    plain dicts).
    """
    task, shard = payload
    cells: List[Tuple[int, List[float]]] = []
    stat = RunningStat()
    add = stat.add
    started = time.monotonic()
    for rep_index, seed in shard:
        samples = [float(v) for v in task(seed)]
        for value in samples:
            add(value)
        cells.append((rep_index, samples))
    return {
        "cells": cells,
        "stat": stat.to_dict(),
        "wall_seconds": time.monotonic() - started,
    }


def make_shards(cells: Sequence[Tuple[int, int]], workers: int,
                shards_per_worker: int = 2) -> List[Shard]:
    """Split ``(replication index, seed)`` cells into contiguous shards.

    More shards than workers (default 2×) keeps the pool busy when
    replication run times vary; contiguity keeps cache/file locality.
    """
    if not cells:
        return []
    target = max(1, min(len(cells), workers * shards_per_worker))
    size, extra = divmod(len(cells), target)
    shards: List[Shard] = []
    start = 0
    for k in range(target):
        end = start + size + (1 if k < extra else 0)
        shards.append(list(cells[start:end]))
        start = end
    return [s for s in shards if s]


class ParallelCampaignRunner:
    """Executes replicated campaigns across worker processes."""

    def __init__(self, workers: Optional[int] = None, *,
                 cache: Optional[ResultCache] = None,
                 supervisor: Optional[ShardSupervisor] = None,
                 progress: Optional[ProgressReporter] = None,
                 shards_per_worker: int = 2) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        self.cache = cache
        self.progress = progress
        self.supervisor = supervisor if supervisor is not None \
            else ShardSupervisor(SupervisorConfig(), progress=progress)
        if self.supervisor.progress is None:
            self.supervisor.progress = progress
        self.shards_per_worker = shards_per_worker

    def run(self, label: str, master_seed: int, replications: int,
            run_one: Callable[[int], Iterable[float]],
            fingerprint: str = "") -> "CampaignResult":
        """Parallel drop-in for
        :func:`repro.experiments.runner.run_campaign`."""
        from ..experiments.runner import CampaignResult, replication_seeds

        seeds = replication_seeds(master_seed, label, replications)
        by_rep: Dict[int, List[float]] = {}
        missing: List[Tuple[int, int]] = []
        cached_reps: List[int] = []
        for rep_index, seed in enumerate(seeds):
            cached = None
            if self.cache is not None:
                cached = self.cache.get(CacheKey(label, master_seed,
                                                 rep_index, fingerprint))
            if cached is None:
                missing.append((rep_index, seed))
            else:
                by_rep[rep_index] = cached
                cached_reps.append(rep_index)

        shards = make_shards(missing, self.workers, self.shards_per_worker)
        progress = self.progress
        if progress is not None:
            progress.start(len(shards), cached_replications=len(by_rep))

        shard_stats: List[RunningStat] = []

        def land(shard_index: int, outcome: Dict[str, Any]) -> None:
            for rep_index, samples in outcome["cells"]:
                by_rep[rep_index] = samples
                if self.cache is not None:
                    self.cache.put(CacheKey(label, master_seed, rep_index,
                                            fingerprint), samples)
            shard_stats.append(RunningStat.from_dict(outcome["stat"]))
            if progress is not None:
                progress.shard_done(
                    shard_index, replications=len(outcome["cells"]),
                    samples=sum(len(s) for _, s in outcome["cells"]),
                    wall_time=outcome["wall_seconds"])

        payloads = [(run_one, shard) for shard in shards]
        if payloads and not _picklable(payloads[0]):
            self.supervisor._degrade_note(
                "task is not picklable; running in-process")
            self.supervisor.run_serial(_run_shard, payloads,
                                       on_shard_done=land)
        elif payloads:
            self.supervisor.run(_run_shard, payloads, workers=self.workers,
                                on_shard_done=land)

        samples: List[float] = []
        for rep_index in range(replications):
            samples.extend(by_rep.get(rep_index, []))

        # Shard stats merge via the parallel Welford; cached cells (which
        # arrive as raw samples) contribute one accumulated stat as well.
        stat = RunningStat()
        cached_values = [v for rep_index in cached_reps
                         for v in by_rep[rep_index]]
        if cached_values:
            stat.merge(summarize(cached_values))
        for shard_stat in shard_stats:
            stat.merge(shard_stat)

        if progress is not None:
            progress.finish()
        return CampaignResult(label=label, stat=stat, samples=samples,
                              replications=replications)


def _picklable(obj: Any) -> bool:
    try:
        stable_dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any],
                 workers: Optional[int] = None,
                 supervisor: Optional[ShardSupervisor] = None) -> List[Any]:
    """Order-preserving supervised map over worker processes.

    Each item is one shard; with ``workers`` absent/1, an unpicklable
    ``fn``, or a platform without multiprocessing, this is a plain
    in-process map — callers never need a fallback path of their own.
    """
    if supervisor is None:
        supervisor = ShardSupervisor(SupervisorConfig())
    count = workers if workers is not None else 1
    if count > 1 and not _picklable((fn, list(items)[:1])):
        supervisor._degrade_note("map function is not picklable; "
                                 "running in-process")
        count = 1
    return supervisor.run(fn, list(items), workers=count)
