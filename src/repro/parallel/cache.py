"""On-disk result cache for experiment campaigns.

A campaign cell — one replication of one labelled configuration — is
pure: its samples are a deterministic function of ``(label, master
seed, replication index, configuration)``.  The cache stores each
cell's samples as one small JSON file keyed by a digest of exactly
those coordinates, so re-running a sweep after an interruption (or
re-running with one parameter changed) only computes the missing cells.

Invalidation is by construction: the configuration fingerprint feeds
the digest, so any change to the swept parameters — or to the package
version, which :func:`campaign_fingerprint` folds in — lands in a fresh
file and stale entries are simply never read again.  ``clear()`` (or
deleting the directory) reclaims the space.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional


def stable_dumps(obj: Any) -> bytes:
    """One shared ``dumps``: highest-protocol pickling of ``obj``.

    Used both for fingerprint digests (over :func:`_canonical` views,
    whose sorted plain containers pickle deterministically) and by
    :func:`repro.parallel.pool._picklable` to probe whether a task can
    cross a process boundary.
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _canonical(obj: Any) -> Any:
    """A JSON-stable view of ``obj`` for fingerprinting.

    Dataclasses become sorted field dicts, enums their values, mappings
    and sequences recurse; anything else falls back to ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value)
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def config_fingerprint(config: Any) -> str:
    """Stable hex digest of an arbitrary configuration object."""
    return hashlib.sha256(stable_dumps(_canonical(config))).hexdigest()[:16]


def campaign_fingerprint(config: Any) -> str:
    """Fingerprint of ``config`` plus the package version, so cached
    samples never survive a code upgrade silently."""
    from .. import __version__
    return config_fingerprint({"version": __version__,
                               "config": _canonical(config)})


@dataclasses.dataclass(frozen=True)
class CacheKey:
    """Coordinates of one campaign cell."""

    label: str
    master_seed: int
    replication: int
    fingerprint: str = ""

    def digest(self) -> str:
        """Filename-safe digest of the full key."""
        payload = json.dumps([self.label, self.master_seed,
                              self.replication, self.fingerprint],
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-campaigns``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-campaigns"


class ResultCache:
    """Directory of one-JSON-file-per-cell campaign results."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: CacheKey) -> Path:
        return self.root / f"{key.digest()}.json"

    def get(self, key: CacheKey) -> Optional[List[float]]:
        """Samples for ``key``, or ``None`` on a miss (including any
        unreadable/corrupt file, which is treated as absent)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            samples = [float(v) for v in data["samples"]]
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return samples

    def put(self, key: CacheKey, samples: List[float]) -> None:
        """Store ``samples`` for ``key`` (atomic rename write)."""
        self.root.mkdir(parents=True, exist_ok=True)
        record: Dict[str, Any] = {
            "label": key.label,
            "master_seed": key.master_seed,
            "replication": key.replication,
            "fingerprint": key.fingerprint,
            "samples": list(samples),
        }
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record), encoding="utf-8")
        os.replace(tmp, path)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached cell; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
