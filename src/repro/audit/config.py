"""Campaign configuration for the adversarial auditor.

:class:`AuditConfig` pins everything a worker process needs to rebuild
and audit one schedule: the scheme under test, the base seed, the
simulated horizon and TB interval, the workload rates, the generator's
fault-count budgets, and (for mutation testing) the name of a planted
protocol bug.  The defaults were tuned so one schedule simulates in a
few tens of milliseconds while still exercising many establishment
epochs — the shape that lets ``repro audit`` push through thousands of
schedules per campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional

from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig
from ..errors import ConfigurationError
from ..sim.clock import ClockConfig
from ..tb.blocking import TbConfig
from .schedule import FaultSchedule

#: Trace categories the auditor needs; everything else is filtered at
#: the recorder so audited runs stay fast.
AUDIT_TRACE_CATEGORIES = (
    "tb.establish",
    "blocking.",
    "recovery.",
    "confidence.",
    "fault.",
    "at.",
    "resync",
)

#: Schemes an audit campaign may target (MDCD_ONLY / WRITE_THROUGH have
#: no TB establishments, so the auditor's hooks would never fire).
AUDITABLE_SCHEMES = (Scheme.NAIVE, Scheme.COORDINATED,
                     Scheme.COORDINATED_NO_SWAP)


@dataclasses.dataclass(frozen=True)
class AuditConfig:
    """Everything one audit campaign (or one replayed schedule) needs."""

    scheme: str = "coordinated"
    seed: int = 0
    schedules: int = 120
    horizon: float = 600.0
    tb_interval: float = 30.0
    stable_history: int = 8
    #: Workload rates (internal / external / step, events per second).
    w1_internal: float = 0.08
    w1_external: float = 0.01
    w2_internal: float = 0.04
    w2_external: float = 0.005
    step_rate: float = 0.02
    #: Generator budgets: at most this many faults of each kind per
    #: random schedule.
    max_software: int = 2
    max_crashes: int = 3
    #: Fraction of a campaign drawn from the systematic boundary
    #: enumeration (the rest is seeded-random).
    boundary_fraction: float = 0.5
    #: Run the ground-truth (contamination) oracles too; turning this
    #: off restricts the audit to observable-state invariants.
    include_ground_truth: bool = True
    #: Name of a planted protocol bug (see :mod:`repro.audit.mutations`)
    #: or ``None`` for the unmutated protocol.
    mutation: Optional[str] = None
    #: Membership spec the audited systems are built with (``"paper"``
    #: or ``"NxK"``/``"NxK+U"``; see :mod:`repro.topology`).  Omitted
    #: from :meth:`to_dict` when left at the default so historical
    #: campaign fingerprints — and the warm-start caches and golden
    #: digests keyed by them — are unchanged.
    topology: str = "paper"
    #: Execute warm groups by suffix-forking off resident templates
    #: (:mod:`repro.flock`) instead of thawing one image per schedule.
    #: Pure execution strategy — findings, traces, and shrink results
    #: are bit-for-bit identical — so, like ``fork_batch``, it is
    #: excluded from :meth:`to_dict` and the campaign fingerprint.
    flock: bool = False
    #: Shard size for parallel flock campaigns: prefix groups larger
    #: than this split across workers, one resident template per shard.
    fork_batch: int = 32

    def __post_init__(self) -> None:
        from ..topology.model import parse_topology
        try:
            parse_topology(self.topology)
        except ValueError as exc:
            raise ConfigurationError(str(exc))
        if self.scheme_enum not in AUDITABLE_SCHEMES:
            raise ConfigurationError(
                f"scheme {self.scheme!r} is not auditable "
                f"(choose from {[s.value for s in AUDITABLE_SCHEMES]})")
        if self.schedules < 1:
            raise ConfigurationError("schedules must be >= 1")
        if self.horizon <= 2.0 * self.tb_interval:
            raise ConfigurationError(
                "horizon must cover at least two TB intervals")
        if not 0.0 <= self.boundary_fraction <= 1.0:
            raise ConfigurationError("boundary_fraction must be in [0, 1]")
        if self.fork_batch < 1:
            raise ConfigurationError("fork_batch must be >= 1")

    # ------------------------------------------------------------------
    @property
    def scheme_enum(self) -> Scheme:
        """The scheme as the coordination-layer enum."""
        return Scheme(self.scheme)

    def system_config(self, schedule: FaultSchedule) -> SystemConfig:
        """The :class:`SystemConfig` for one schedule of this campaign
        (the schedule's seed and timing overrides applied)."""
        overrides = schedule.override_map()
        clock = ClockConfig(
            delta=overrides.get("clock_delta", ClockConfig().delta),
            rho=overrides.get("clock_rho", ClockConfig().rho))
        return SystemConfig(
            scheme=self.scheme_enum,
            seed=schedule.system_seed,
            horizon=self.horizon,
            clock=clock,
            tb=TbConfig(interval=overrides.get("tb_interval",
                                               self.tb_interval)),
            workload1=WorkloadConfig(internal_rate=self.w1_internal,
                                     external_rate=self.w1_external,
                                     step_rate=self.step_rate),
            workload2=WorkloadConfig(internal_rate=self.w2_internal,
                                     external_rate=self.w2_external,
                                     step_rate=self.step_rate),
            trace_categories=AUDIT_TRACE_CATEGORIES,
            stable_history=self.stable_history,
            topology=self.topology)

    def fingerprint(self) -> str:
        """Short stable digest of the campaign parameters (cache keys,
        artifact provenance)."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = dataclasses.asdict(self)
        if data.get("topology") == "paper":
            # Default topology is omitted so pre-topology fingerprints
            # (pinned goldens, warm-start cache keys) stay stable.
            del data["topology"]
        # Execution-strategy knobs never enter a campaign's identity:
        # the same schedules produce the same results cold, warm, or
        # flocked, and fingerprints key caches and golden digests.
        data.pop("flock", None)
        data.pop("fork_batch", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "AuditConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
