"""Planted protocol bugs for mutation-testing the auditor.

Each mutation re-introduces one of the failure modes the paper's
coordination exists to prevent, by disabling a single protocol action
on an otherwise-correct built system.  The mutation tests assert that
the online auditor flags every one of them — i.e. that the audit's
oracles are strong enough to notice each protocol obligation being
dropped.

Mutations are applied *after* :func:`~repro.coordination.scheme.build_system`
and before ``start()``; they only monkey-patch instance attributes of
the one system under test (the protocol sources stay untouched, and
`TbConfig`'s existing ablation flags are reused where they exist).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..sim.rng import derive_seed
from .schedule import CrashSpec, FaultSchedule


class _PseudoDirtySuppressor:
    """``set_pseudo_dirty`` wrapper that drops the ``<- 1`` arm.

    A callable class (not a closure) wrapping the original bound
    method, so mutated systems stay picklable — warm-start images
    capture the whole system object graph, planted bugs included.
    """

    def __init__(self, original) -> None:
        self.original = original

    def __call__(self, value: int, reason: str = "") -> None:
        if value == 1:
            return  # the planted bug: never mark the state suspect
        self.original(value, reason)


def _skip_pseudo_dirty(system) -> None:
    """Drop the ``pseudo_dirty_bit <- 1`` on internal sends (modified
    MDCD, Appendix A step A2): contaminated state then reaches stable
    storage as a ``current-state`` checkpoint claiming validation —
    caught by the pseudo-conservatism oracle."""
    engine = system.active.software
    engine.set_pseudo_dirty = _PseudoDirtySuppressor(engine.set_pseudo_dirty)


def _drop_unacked_save(system) -> None:
    """Drop the unacknowledged-message set from TB checkpoints (the
    Neves-Fuchs protocol saves it so in-transit messages are re-sent
    after rollback): sent-but-unreceived messages in a stable line are
    then unrestorable — caught by the recoverability oracle."""
    for proc in system.process_list():
        engine = proc.hardware
        if engine is not None and hasattr(engine, "config"):
            engine.config = dataclasses.replace(engine.config,
                                                save_unacked=False)


def _skip_blocking(system) -> None:
    """Skip the TB blocking period (messages are sent while the local
    establishment is already underway): receivers record deliveries the
    sender's committing checkpoint has never sent — caught by the
    consistency (orphan-message) oracle."""
    for proc in system.process_list():
        engine = proc.hardware
        if engine is not None and hasattr(engine, "config"):
            engine.config = dataclasses.replace(engine.config,
                                                blocking_enabled=False)


#: name -> (apply(system), description) — the test-only knob registry.
MUTATIONS: Dict[str, Callable] = {
    "skip-pseudo-dirty": _skip_pseudo_dirty,
    "drop-unacked-save": _drop_unacked_save,
    "skip-blocking": _skip_blocking,
}


def mutation_names() -> list:
    """Registered mutation names, sorted."""
    return sorted(MUTATIONS)


def plant_mutation(system, name: str) -> None:
    """Apply the named planted bug to a built (not yet started) system."""
    try:
        apply = MUTATIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mutation {name!r} (known: {mutation_names()})") from None
    apply(system)


# ----------------------------------------------------------------------
# the sensitivity campaign
# ----------------------------------------------------------------------
#: Number of schedules in one sensitivity campaign.
SENSITIVITY_SCHEDULES = 16


def sensitivity_config(mutation: Optional[str] = None,
                       scheme: str = "coordinated", seed: int = 7):
    """The campaign configuration under which every registered mutation
    is observably faulty.

    The default audit workload leaves processes *dirty* at nearly every
    establishment (volatile-copy contents), so the unacked-save and
    blocking machinery is rarely load-bearing and bugs in it go
    unnoticed.  This configuration raises the acceptance-test rate until
    validations land between establishments (current-state contents,
    live unacked sets) and shortens the TB interval so each run crosses
    many establishment epochs.
    """
    from .config import AuditConfig
    return AuditConfig(scheme=scheme, seed=seed,
                       schedules=SENSITIVITY_SCHEDULES,
                       horizon=400.0, tb_interval=10.0,
                       w1_internal=0.3, w1_external=0.2,
                       w2_internal=0.3, w2_external=0.2,
                       mutation=mutation)


def sensitivity_schedules(config) -> List[FaultSchedule]:
    """The clock-skew-extreme schedules of one sensitivity campaign.

    Every schedule maximizes the clock deviation (``clock_delta=0.5``,
    the widest skew the model admits — the regime where the blocking
    period and the saved unacked sets actually protect something); even
    indices add a crash of the peer's node, staggered across the run so
    recovery lines form at many different epochs.
    """
    out: List[FaultSchedule] = []
    for i in range(config.schedules):
        crashes = ((CrashSpec(node_id="N2", crash_at=120.0 + 31.0 * (i % 6),
                              repair_time=2.0),)
                   if i % 2 == 0 else ())
        out.append(FaultSchedule(
            label=f"mut:{i}",
            system_seed=derive_seed(config.seed, f"mut:{i}") % (2 ** 31),
            software=(), crashes=crashes,
            overrides=(("clock_delta", 0.5),), origin="mutation"))
    return out
