"""Adversarial schedule generation.

Two complementary generators feed an audit campaign:

* :func:`boundary_schedules` — *systematic* enumeration.  A fault-free
  reference run of the configured system yields a
  :class:`ReferenceTimeline` (checkpoint commits, blocking windows,
  acceptance-test passes, resynchronizations); schedules are then built
  that pin faults exactly at the protocol's sensitive instants: crashes
  a hair before/after a stable commit, crashes inside a TB blocking
  period, software faults activated just before an acceptance-test
  pass, crashes landing mid-software-recovery, coincident software +
  hardware faults, double crashes, crashes at resynchronization times,
  and clock-skew-extreme variants.
* :func:`random_schedules` — *randomized* exploration from a seeded
  RNG, boundary-biased: a slice of the random fault times is snapped
  near commit instants so the random pool keeps hammering the same
  sensitive windows with otherwise-novel fault mixes.

Both are deterministic functions of the :class:`AuditConfig`; a
campaign of ``N`` schedules is reproducible from the config alone.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from ..sim.rng import derive_seed
from ..topology.model import parse_topology
from .config import AuditConfig
from .schedule import (
    SYSTEM_NODES,
    CrashSpec,
    FaultSchedule,
    SoftwareFaultSpec,
)

#: Epsilon used to land "just before"/"just after" a protocol instant.
BOUNDARY_EPS = 0.25

#: Clock-skew extremes explored by the override schedules.
SKEW_DELTAS = (0.0, 0.5)
SKEW_RHOS = (0.0, 1e-3)


def _schedule_seed(config: AuditConfig, index: int) -> int:
    """The system seed of the ``index``-th schedule (31-bit, stable)."""
    return derive_seed(config.seed, f"audit:{index}") % (2 ** 31)


def _campaign_nodes(config: AuditConfig):
    """Crash targets, derived from the campaign's topology (for the
    paper shape this is exactly the historical ``SYSTEM_NODES``)."""
    nodes = parse_topology(config.topology).node_ids()
    assert config.topology != "paper" or nodes == SYSTEM_NODES
    return nodes


@dataclasses.dataclass(frozen=True)
class ReferenceTimeline:
    """Protocol instants observed in a fault-free reference run."""

    #: ``(time, process_id, epoch)`` of every stable-commit.
    commits: Tuple[Tuple[float, str, int], ...]
    #: ``(start, end)`` of every observed blocking period.
    blocking: Tuple[Tuple[float, float], ...]
    #: Times of acceptance-test passes.
    at_passes: Tuple[float, ...]
    #: Times of clock resynchronizations.
    resyncs: Tuple[float, ...]

    def commit_times(self) -> List[float]:
        """Distinct commit instants, ascending."""
        return sorted({t for t, _p, _e in self.commits})


def reference_timeline(config: AuditConfig) -> ReferenceTimeline:
    """Run the configured system fault-free and extract its timeline."""
    from ..coordination.scheme import build_system
    probe = FaultSchedule(label="reference",
                          system_seed=_schedule_seed(config, 0),
                          origin="boundary")
    system = build_system(config.system_config(probe))
    system.run()

    commits: List[Tuple[float, str, int]] = []
    blocking: List[Tuple[float, float]] = []
    at_passes: List[float] = []
    resyncs: List[float] = []
    open_blocks: Dict[Optional[str], float] = {}
    for rec in system.trace:
        if rec.category == "tb.establish.done":
            epoch = rec.data.get("epoch")
            if epoch is not None:
                commits.append((rec.time, str(rec.process), epoch))
        elif rec.category == "blocking.start":
            open_blocks[rec.process] = rec.time
        elif rec.category == "blocking.end":
            start = open_blocks.pop(rec.process, None)
            if start is not None:
                blocking.append((start, rec.time))
        elif rec.category == "at.pass":
            at_passes.append(rec.time)
        elif rec.category == "resync":
            resyncs.append(rec.time)
    return ReferenceTimeline(commits=tuple(commits),
                             blocking=tuple(sorted(blocking)),
                             at_passes=tuple(at_passes),
                             resyncs=tuple(resyncs))


# ----------------------------------------------------------------------
# systematic boundary enumeration
# ----------------------------------------------------------------------
def boundary_schedules(config: AuditConfig,
                       timeline: Optional[ReferenceTimeline] = None
                       ) -> List[FaultSchedule]:
    """Every systematic boundary schedule, interleaved by category so a
    truncated prefix still covers all categories."""
    if timeline is None:
        timeline = reference_timeline(config)
    nodes = _campaign_nodes(config)
    n_components = parse_topology(config.topology).n_components
    horizon = config.horizon
    commit_times = [t for t in timeline.commit_times()
                    if BOUNDARY_EPS < t < horizon - 1.0]
    at_times = [t for t in timeline.at_passes
                if BOUNDARY_EPS < t < horizon - 1.0]
    # Any positive window qualifies: blocking is typically only the
    # stable-write latency (~tens of ms), and the crash must land
    # *inside* it — the midpoint does, for every length.
    mid_blocks = sorted({(a + b) / 2.0 for a, b in timeline.blocking if b > a})

    by_category: Dict[str, List[FaultSchedule]] = {}

    def add(category: str, *, software=(), crashes=(), overrides=()) -> None:
        group = by_category.setdefault(category, [])
        group.append(FaultSchedule(
            label=f"boundary:{category}:{len(group)}",
            system_seed=0,  # reassigned by the interleave below
            software=tuple(software), crashes=tuple(crashes),
            overrides=tuple(overrides), origin="boundary"))

    # Crashes pinned to checkpoint-commit boundaries: just before a
    # commit (the establishment is mid-flight) and just after (the new
    # line is the freshest possible recovery basis).
    for t in commit_times:
        for node in nodes:
            add("commit-edge",
                crashes=[CrashSpec(node_id=node, crash_at=t - BOUNDARY_EPS)])
            add("commit-edge",
                crashes=[CrashSpec(node_id=node, crash_at=t + BOUNDARY_EPS)])

    # Crashes inside a TB blocking period (buffered messages, content
    # swaps and establishment commits all in flight).
    for t in mid_blocks:
        for node in nodes:
            add("mid-blocking", crashes=[CrashSpec(node_id=node, crash_at=t)])

    # A software fault activated just before an acceptance-test pass:
    # contamination that the very next validation wave will (wrongly,
    # under the naive scheme) launder into the checkpoints.  With
    # several guarded components the enumeration cycles the defective
    # component (one per AT instant); the single-component paper shape
    # always targets component 1, exactly as before.
    for i, t in enumerate(at_times):
        comp = (i % n_components) + 1
        add("pre-at", software=[SoftwareFaultSpec(activate_at=t - BOUNDARY_EPS,
                                                  component=comp)])
        # ... with a crash landing mid-software-recovery (the fault's
        # eventual AT failure triggers rollback; crash it shortly after).
        for node in nodes:
            add("mid-recovery",
                software=[SoftwareFaultSpec(activate_at=t - BOUNDARY_EPS,
                                            component=comp)],
                crashes=[CrashSpec(node_id=node, crash_at=t + 2.0)])
        # ... and the coincident case: software fault and crash at
        # (essentially) the same instant.
        for node in nodes:
            add("coincident",
                software=[SoftwareFaultSpec(activate_at=t - BOUNDARY_EPS,
                                            component=comp)],
                crashes=[CrashSpec(node_id=node, crash_at=t)])

    # Double crashes around one commit: the recovery line must survive
    # losing two nodes in quick succession.
    for t in commit_times:
        for i, first in enumerate(nodes):
            for second in nodes[i + 1:]:
                add("double-crash",
                    crashes=[CrashSpec(node_id=first, crash_at=t - BOUNDARY_EPS),
                             CrashSpec(node_id=second, crash_at=t + 1.0)])

    # Crashes at resynchronization instants (timer resets in flight).
    for t in timeline.resyncs:
        if not BOUNDARY_EPS < t < horizon - 1.0:
            continue
        for node in nodes:
            add("resync-edge", crashes=[CrashSpec(node_id=node, crash_at=t)])

    # Clock-skew extremes: the same mid-horizon crash under the largest
    # and smallest clock deviations the model admits (the last node in
    # topology order — the paper's "N2").
    mid = horizon / 2.0
    for delta in SKEW_DELTAS:
        for rho in SKEW_RHOS:
            add("skew",
                crashes=[CrashSpec(node_id=nodes[-1], crash_at=mid)],
                overrides=[("clock_delta", delta), ("clock_rho", rho)])

    # Round-robin interleave so truncation keeps category diversity,
    # then assign each schedule its deterministic per-index system seed.
    interleaved: List[FaultSchedule] = []
    groups = [by_category[k] for k in sorted(by_category)]
    while any(groups):
        for group in groups:
            if group:
                interleaved.append(group.pop(0))
    out: List[FaultSchedule] = []
    for position, sched in enumerate(interleaved):
        out.append(dataclasses.replace(
            sched, system_seed=_schedule_seed(config, position)))
    return out


# ----------------------------------------------------------------------
# randomized exploration
# ----------------------------------------------------------------------
def random_schedules(config: AuditConfig, count: int, start_index: int = 0,
                     timeline: Optional[ReferenceTimeline] = None
                     ) -> List[FaultSchedule]:
    """``count`` seeded-random schedules (indices ``start_index..``).

    Fault times are boundary-biased: with probability 0.5 a time is
    snapped near a commit instant of the reference timeline.
    """
    commit_times = timeline.commit_times() if timeline is not None else []
    nodes = _campaign_nodes(config)
    n_components = parse_topology(config.topology).n_components
    horizon = config.horizon
    out: List[FaultSchedule] = []
    for offset in range(count):
        index = start_index + offset
        rng = random.Random(derive_seed(config.seed, f"audit:rng:{index}"))

        def pick_time(lo: float, hi: float) -> float:
            if commit_times and rng.random() < 0.5:
                base = rng.choice(commit_times)
                jitter = rng.uniform(-2.0, 2.0)
                return min(max(lo, base + jitter), hi)
            return rng.uniform(lo, hi)

        software: List[SoftwareFaultSpec] = []
        for _ in range(rng.randint(0, config.max_software)):
            activate = pick_time(10.0, horizon * 0.8)
            deactivate = (activate + rng.uniform(20.0, 200.0)
                          if rng.random() < 0.5 else None)
            # The component draw is guarded so single-component
            # campaigns (the paper shape) consume exactly the
            # historical RNG stream.
            comp = rng.randint(1, n_components) if n_components > 1 else 1
            software.append(SoftwareFaultSpec(activate_at=activate,
                                              deactivate_at=deactivate,
                                              component=comp))
        crashes: List[CrashSpec] = []
        for _ in range(rng.randint(0, config.max_crashes)):
            crashes.append(CrashSpec(
                node_id=rng.choice(nodes),
                crash_at=pick_time(10.0, horizon * 0.9),
                repair_time=rng.uniform(0.5, 5.0)))
        out.append(FaultSchedule(
            label=f"random:{index}",
            system_seed=_schedule_seed(config, index),
            software=tuple(sorted(software, key=lambda s: s.activate_at)),
            crashes=tuple(sorted(crashes, key=lambda c: c.crash_at)),
            origin="random"))
    return out


def generate_schedules(config: AuditConfig,
                       timeline: Optional[ReferenceTimeline] = None
                       ) -> List[FaultSchedule]:
    """The campaign's full schedule list: a boundary-enumeration prefix
    (up to ``boundary_fraction`` of the campaign) topped up with
    seeded-random schedules.

    ``timeline`` lets callers that already ran the reference (the
    campaign runner, the warm-start engine) pass it in; a campaign
    computes the reference timeline exactly once.
    """
    if timeline is None:
        timeline = reference_timeline(config)
    boundary = boundary_schedules(config, timeline)
    n_boundary = min(len(boundary),
                     int(round(config.schedules * config.boundary_fraction)))
    schedules = boundary[:n_boundary]
    schedules += random_schedules(config, config.schedules - n_boundary,
                                  start_index=n_boundary, timeline=timeline)
    return schedules
