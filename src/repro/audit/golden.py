"""Golden-trace fingerprints of the Fig. 6 coordination cases.

Each golden case is one deterministic coordinated run — fault-free,
crashed, software-faulted, coincident, and clock-skewed variants chosen
so the six Fig. 6 checkpoint-content situations all appear — reduced to
a canonical line-per-record text form and hashed.  The regression test
pins the hashes: any change to protocol event order, to checkpoint
content decisions, or to the determinism machinery (seeded RNG streams,
per-run message ids, worker-independent campaign execution) shows up as
a digest mismatch long before it would corrupt a statistic.

The canonical form keeps only protocol-meaningful fields (time,
category, process, and the data entries with stable scalar values), so
the digests are insensitive to incidental additions elsewhere in the
trace vocabulary but pinned hard on everything the paper's figures are
assertions over.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from .config import AuditConfig
from .schedule import CrashSpec, FaultSchedule, SoftwareFaultSpec

#: Trace categories included in the canonical form — the protocol
#: events the paper's figures are drawn from.
GOLDEN_CATEGORIES = ("tb.establish", "blocking.", "recovery.",
                     "confidence.", "fault.", "at.")

#: The campaign configuration every golden case runs under.
GOLDEN_CONFIG = AuditConfig(scheme="coordinated", seed=29, schedules=6,
                            horizon=240.0, tb_interval=20.0,
                            w1_internal=0.1, w1_external=0.05,
                            w2_internal=0.08, w2_external=0.04)


def golden_schedules() -> List[FaultSchedule]:
    """The six pinned Fig. 6-case schedules, in canonical order."""
    seeds = {name: 1000 + i for i, name in enumerate(
        ("clean", "crash-peer", "crash-active", "software",
         "coincident", "skew"))}
    return [
        # (a)/(c)/(d): the fault-free run crosses many establishments
        # whose dirty-bit configurations cover the non-swap cases.
        FaultSchedule(label="fig6:clean", system_seed=seeds["clean"],
                      origin="golden"),
        # (e)-shaped: a crash of the peer's node forces a hardware
        # recovery line between establishments.
        FaultSchedule(label="fig6:crash-peer", system_seed=seeds["crash-peer"],
                      crashes=(CrashSpec("N2", 95.0, 2.0),), origin="golden"),
        # ... and of the active's node, the other rollback topology.
        FaultSchedule(label="fig6:crash-active",
                      system_seed=seeds["crash-active"],
                      crashes=(CrashSpec("N1a", 115.0, 2.0),),
                      origin="golden"),
        # (f)-shaped: a software fault makes an acceptance test fail and
        # the shadow take over mid-campaign.
        FaultSchedule(label="fig6:software", system_seed=seeds["software"],
                      software=(SoftwareFaultSpec(activate_at=80.0),),
                      origin="golden"),
        # Coincident software + hardware fault (the deferred-takeover
        # path).
        FaultSchedule(label="fig6:coincident", system_seed=seeds["coincident"],
                      software=(SoftwareFaultSpec(activate_at=90.0),),
                      crashes=(CrashSpec("N1b", 90.5, 2.0),),
                      origin="golden"),
        # Clock-skew extreme: the same protocol under the widest
        # deviation the model admits.
        FaultSchedule(label="fig6:skew", system_seed=seeds["skew"],
                      crashes=(CrashSpec("N2", 120.0, 2.0),),
                      overrides=(("clock_delta", 0.5),), origin="golden"),
    ]


def _canonical_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def canonical_trace_lines(system) -> List[str]:
    """The run's protocol trace in canonical text form."""
    lines = []
    for rec in system.trace.records():
        if not rec.category.startswith(GOLDEN_CATEGORIES):
            continue
        data = ",".join(f"{k}={_canonical_value(v)}"
                        for k, v in sorted(rec.data.items()))
        lines.append(f"{rec.time:.6f} {rec.category} "
                     f"{rec.process or '-'} {data}")
    return lines


def trace_digest(lines: List[str]) -> str:
    """sha256 over the canonical lines (the pinned fingerprint)."""
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def run_golden_case(item: Tuple[Dict, Dict]) -> Dict:
    """Worker: run one golden schedule, return its digest and size.

    Module-level and dict-in/dict-out so
    :func:`repro.parallel.parallel_map` can ship it to worker processes
    — the regression test uses that to assert the digests are identical
    no matter where the run executes.
    """
    config_dict, schedule_dict = item
    config = AuditConfig.from_dict(config_dict)
    schedule = FaultSchedule.from_dict(schedule_dict)
    from .campaign import build_audit_system
    system = build_audit_system(config, schedule)
    system.run()
    lines = canonical_trace_lines(system)
    return {"label": schedule.label, "digest": trace_digest(lines),
            "records": len(lines)}


def golden_digests(workers=None) -> Dict[str, str]:
    """Digest every golden case, optionally across worker processes."""
    from ..parallel import parallel_map
    config_dict = GOLDEN_CONFIG.to_dict()
    items = [(config_dict, sched.to_dict()) for sched in golden_schedules()]
    results = parallel_map(run_golden_case, items, workers=workers)
    return {res["label"]: res["digest"] for res in results}
