"""Adversarial schedule exploration with online invariant auditing.

The audit subsystem turns the paper's Section 2.1 properties into a
continuously-enforced oracle: generate adversarial fault/timing
schedules (systematic boundary enumeration + seeded randomization),
run each one with the invariant checkers wired into the simulation's
protocol events, and shrink any violating schedule to a minimal,
replayable JSON counterexample.  Under the ``naive`` scheme this
machinery rediscovers the paper's Fig. 4 interference automatically;
under ``coordinated`` it demonstrates survival across thousands of
schedules.
"""

from .auditor import AuditFinding, OnlineAuditor, line_summary
from .campaign import (
    AuditReport,
    artifact_schedules,
    audit_schedule,
    build_audit_system,
    format_audit_report,
    read_artifact,
    run_audit,
    schedule_violates,
    write_artifact,
)
from .config import AUDIT_TRACE_CATEGORIES, AUDITABLE_SCHEMES, AuditConfig
from .generator import (
    ReferenceTimeline,
    boundary_schedules,
    generate_schedules,
    random_schedules,
    reference_timeline,
)
from .golden import (
    GOLDEN_CONFIG,
    canonical_trace_lines,
    golden_digests,
    golden_schedules,
    trace_digest,
)
from .mutations import (
    MUTATIONS,
    mutation_names,
    plant_mutation,
    sensitivity_config,
    sensitivity_schedules,
)
from .schedule import (
    SYSTEM_NODES,
    CrashSpec,
    FaultSchedule,
    SoftwareFaultSpec,
)
from .shrink import ShrinkResult, shrink_schedule

__all__ = [
    "AUDITABLE_SCHEMES",
    "AUDIT_TRACE_CATEGORIES",
    "AuditConfig",
    "AuditFinding",
    "AuditReport",
    "CrashSpec",
    "FaultSchedule",
    "GOLDEN_CONFIG",
    "MUTATIONS",
    "OnlineAuditor",
    "ReferenceTimeline",
    "SYSTEM_NODES",
    "ShrinkResult",
    "SoftwareFaultSpec",
    "artifact_schedules",
    "audit_schedule",
    "boundary_schedules",
    "build_audit_system",
    "canonical_trace_lines",
    "format_audit_report",
    "generate_schedules",
    "golden_digests",
    "golden_schedules",
    "line_summary",
    "mutation_names",
    "plant_mutation",
    "random_schedules",
    "read_artifact",
    "reference_timeline",
    "run_audit",
    "schedule_violates",
    "sensitivity_config",
    "sensitivity_schedules",
    "shrink_schedule",
    "trace_digest",
    "write_artifact",
]
