"""Audit campaigns: fan schedules out over workers, shrink violations.

The worker function is module-level and takes/returns plain dicts, so
:func:`repro.parallel.parallel_map` can ship it across process
boundaries (and degrade to in-process execution transparently).  Each
worker rebuilds the system from the :class:`AuditConfig` plus one
:class:`FaultSchedule` — both fully serializable — so a campaign is
deterministic regardless of worker count or placement.

Shrinking runs in the coordinator (each shrink step is a full replay of
one schedule, already fast); the shrunk minimal schedules are written
into the JSON artifact next to the raw violations so a failing CI run
uploads directly replayable counterexamples.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Callable, Dict, List, Optional

from ..errors import AuditViolation
from ..parallel import parallel_map
from .auditor import AuditFinding, OnlineAuditor
from .config import AuditConfig
from .generator import generate_schedules, reference_timeline
from .mutations import plant_mutation
from .schedule import FaultSchedule
from .shrink import ShrinkResult, shrink_schedule

#: Replay budget for shrinking one violating schedule.
SHRINK_MAX_REPLAYS = 60


def build_audit_system(config: AuditConfig, schedule: FaultSchedule):
    """Build (and mutate, and arm — but not start) one audited system."""
    from ..coordination.scheme import build_system
    system = build_system(config.system_config(schedule))
    if config.mutation is not None:
        plant_mutation(system, config.mutation)
    schedule.arm(system)
    return system


def audit_schedule(config: AuditConfig, schedule: FaultSchedule,
                   fail_fast: bool = True) -> List[AuditFinding]:
    """Run one schedule under the online auditor; returns its findings.

    ``fail_fast`` stops the simulation at the first violation (the
    campaign's mode); ``fail_fast=False`` runs to the horizon and
    collects every finding (the replay/diagnosis mode).
    """
    system = build_audit_system(config, schedule)
    auditor = OnlineAuditor(system, fail_fast=fail_fast,
                            include_ground_truth=config.include_ground_truth)
    try:
        system.run()
    except AuditViolation:
        pass  # the finding is already recorded
    try:
        auditor.finalize()
    except AuditViolation:
        pass  # end-of-run oracle fired; likewise recorded
    return auditor.findings


def schedule_violates(config: AuditConfig, schedule: FaultSchedule) -> bool:
    """The shrinker's predicate: does this schedule violate at all?

    A replay that *crashes* the simulator (an unmodelled corner a
    mutated candidate can reach, e.g. a crash pinned exactly onto a
    recovery action) counts as non-violating: the shrinker must only
    walk through candidates whose violation is an invariant finding.
    """
    try:
        return bool(audit_schedule(config, schedule, fail_fast=True))
    except Exception:
        return False


def _run_one_schedule(item) -> Dict:
    """Worker: audit one ``(config_dict, schedule_dict)`` pair."""
    config_dict, schedule_dict = item
    config = AuditConfig.from_dict(config_dict)
    schedule = FaultSchedule.from_dict(schedule_dict)
    try:
        findings = audit_schedule(config, schedule, fail_fast=True)
    except Exception as exc:  # simulation bug — report, don't kill the pool
        return {"schedule": schedule.to_dict(), "violated": False,
                "findings": [], "error": f"{type(exc).__name__}: {exc}"}
    return {"schedule": schedule.to_dict(),
            "violated": bool(findings),
            "findings": [f.to_dict() for f in findings],
            "error": None}


@dataclasses.dataclass
class AuditReport:
    """Outcome of one audit campaign."""

    config: AuditConfig
    schedules_run: int
    #: ``[{"schedule": ..., "findings": [...]}]`` for each violator.
    violations: List[Dict]
    #: ``[{"schedule": ..., "error": "..."}]`` for crashed replays.
    errors: List[Dict]
    #: ``[{"original": label, "schedule": ..., "replays": n}]``.
    shrunk: List[Dict]
    wall_seconds: float
    #: Warm-start execution counters (``None`` for cold campaigns).
    warmstart: Optional[Dict] = None

    @property
    def clean(self) -> bool:
        """No violations and no worker errors."""
        return not self.violations and not self.errors

    def to_dict(self) -> Dict:
        return {
            "config": self.config.to_dict(),
            "fingerprint": self.config.fingerprint(),
            "schedules_run": self.schedules_run,
            "violations": self.violations,
            "errors": self.errors,
            "shrunk": self.shrunk,
            "wall_seconds": self.wall_seconds,
            "warmstart": self.warmstart,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AuditReport":
        return cls(config=AuditConfig.from_dict(data["config"]),
                   schedules_run=int(data["schedules_run"]),
                   violations=list(data.get("violations", ())),
                   errors=list(data.get("errors", ())),
                   shrunk=list(data.get("shrunk", ())),
                   wall_seconds=float(data.get("wall_seconds", 0.0)),
                   warmstart=data.get("warmstart"))


def _run_warm_serial(runner, config: AuditConfig,
                     schedules: List[FaultSchedule]) -> List[Dict]:
    """Coordinator-side warm loop (same result dicts as the worker)."""
    results: List[Dict] = []
    for schedule in schedules:
        try:
            findings = runner.audit_schedule(schedule, fail_fast=True)
        except Exception as exc:
            results.append({"schedule": schedule.to_dict(), "violated": False,
                            "findings": [],
                            "error": f"{type(exc).__name__}: {exc}"})
            continue
        results.append({"schedule": schedule.to_dict(),
                        "violated": bool(findings),
                        "findings": [f.to_dict() for f in findings],
                        "error": None})
    return results


def run_audit(config: AuditConfig, workers: Optional[int] = None,
              shrink: bool = False,
              schedules: Optional[List[FaultSchedule]] = None,
              log: Optional[Callable[[str], None]] = None,
              warmstart: bool = False,
              image_store=None,
              timeline=None,
              flock: Optional[bool] = None,
              fork_batch: Optional[int] = None,
              fabric: Optional[int] = None,
              fabric_opts: Optional[Dict] = None) -> AuditReport:
    """Run a full campaign: generate, fan out, optionally shrink.

    ``warmstart=True`` executes schedules by prefix-resume from
    full-system reference images (:mod:`repro.warmstart`) wherever a
    usable image exists, falling back to cold replay otherwise — the
    findings are identical either way.  Warm-start pays off when
    schedules share a ``(seed, overrides)`` prefix (see
    ``repro.warmstart.share_schedule_seeds``) and always pays off for
    shrinking, whose replays all share the violator's prefix.  The
    reference timeline is computed at most once per campaign and
    threaded into generation and image capture; callers that already
    have it pass ``timeline``.

    ``flock`` (default: ``config.flock``) switches execution to
    suffix-fork batching (:mod:`repro.flock`): each prefix group keeps
    ONE resident template — thawed once from a warm-start image when
    ``warmstart`` is also on, otherwise built directly from the
    reference — and forks per-schedule copies from it.  Results stay
    bit-for-bit identical to warm and cold.  ``fork_batch`` (default:
    ``config.fork_batch``) shards large groups across workers.

    ``fabric`` dispatches execution over the multi-host campaign
    fabric (:mod:`repro.fabric`) instead of an in-process pool: the
    value is how many local worker *processes* to spawn (``0`` serves
    externally-started workers only).  The flock/warm flags choose the
    fabric's execution mode exactly as they do locally, and the
    results — hence violations, errors, shrunk forms — are bit-for-bit
    identical.  ``fabric_opts`` passes through to
    :func:`repro.fabric.run_fabric_campaign` (``journal=``,
    ``cas_dir=``, ``fabric=FabricConfig(...)``, ...).
    """
    emit = log or (lambda _msg: None)
    start = time.monotonic()
    use_flock = config.flock if flock is None else bool(flock)
    batch = config.fork_batch if fork_batch is None else int(fork_batch)
    if timeline is None and (schedules is None or warmstart):
        timeline = reference_timeline(config)
    if schedules is None:
        schedules = generate_schedules(config, timeline=timeline)
    mode = "flock" if use_flock else ("warm" if warmstart else "cold")
    emit(f"auditing {len(schedules)} schedules "
         f"(scheme={config.scheme}, seed={config.seed}, "
         f"workers={workers or 1}, mode={mode})")

    config_dict = config.to_dict()
    runner = None
    flock_runner = None
    builder = None
    fabric_stats: Optional[Dict] = None
    cleanup_root: Optional[str] = None
    if fabric is not None:
        pass  # the supervisor owns planning, stores, and image builds
    elif use_flock:
        from ..flock import FlockRunner
        store = image_store
        if warmstart and workers is not None and workers > 1 and (
                store is None or store.root is None):
            # Workers thaw their shard's template through the filesystem.
            import tempfile
            from ..warmstart import ImageStore
            cleanup_root = tempfile.mkdtemp(prefix="repro-flock-")
            store = ImageStore(root=cleanup_root)
        flock_runner = FlockRunner(config, store=store, timeline=timeline,
                                   fork_batch=batch)
        flock_runner.plan(schedules)
    elif warmstart:
        from ..warmstart import ImageStore, WarmRunner
        store = image_store
        if workers is not None and workers > 1 and (
                store is None or store.root is None):
            # Workers consume images through the filesystem.
            import tempfile
            cleanup_root = tempfile.mkdtemp(prefix="repro-warmstart-")
            store = ImageStore(root=cleanup_root)
        runner = WarmRunner(config, store=store, timeline=timeline)
        runner.plan(schedules)

    try:
        if fabric is not None:
            from ..fabric import run_fabric_campaign
            results, fabric_stats = run_fabric_campaign(
                config, schedules, mode=mode, workers=fabric,
                fork_batch=batch, timeline=timeline, log=emit,
                **(fabric_opts or {}))
        elif flock_runner is not None and workers is not None and workers > 1:
            from ..flock import _run_flock_shard
            root = None
            if warmstart and flock_runner.store is not None:
                # Build each shared prefix's image set once; workers
                # decode each image at most once per shard.
                from ..warmstart import WarmRunner
                builder = WarmRunner(config, store=flock_runner.store,
                                     timeline=timeline)
                builder.plan(schedules)
                built = set()
                for sched in schedules:
                    digest = builder._key(sched).digest()
                    if digest not in built:
                        built.add(digest)
                        builder.ensure_images(sched)
                if flock_runner.store.root is not None:
                    root = str(flock_runner.store.root)
            shards = flock_runner.shards(schedules)
            items = [(config_dict,
                      [schedules[i].to_dict() for i in shard], root, batch)
                     for shard in shards]
            shard_results = parallel_map(_run_flock_shard, items,
                                         workers=workers)
            ordered: List[Optional[Dict]] = [None] * len(schedules)
            for shard, outcome in zip(shards, shard_results):
                for idx, result in zip(shard, outcome or ()):
                    ordered[idx] = result
            results = [r for r in ordered if r is not None]
        elif flock_runner is not None:
            results = flock_runner.run_batch(schedules)
        elif runner is not None and workers is not None and workers > 1:
            # Build each shared prefix once here, fan consumption out.
            from ..warmstart.engine import _run_one_schedule_warm
            built = set()
            for sched in schedules:
                digest = runner._key(sched).digest()
                if digest not in built:
                    built.add(digest)
                    runner.ensure_images(sched)
            items = [(config_dict, sched.to_dict(), str(runner.store.root))
                     for sched in schedules]
            results = parallel_map(_run_one_schedule_warm, items,
                                   workers=workers)
        elif runner is not None:
            results = _run_warm_serial(runner, config, schedules)
        else:
            items = [(config_dict, sched.to_dict()) for sched in schedules]
            results = parallel_map(_run_one_schedule, items, workers=workers)

        violations: List[Dict] = []
        errors: List[Dict] = []
        for result in results:
            if result.get("error"):
                errors.append({"schedule": result["schedule"],
                               "error": result["error"]})
            elif result["violated"]:
                violations.append({"schedule": result["schedule"],
                                   "findings": result["findings"]})

        shrunk: List[Dict] = []
        if shrink and violations:
            for entry in violations:
                original = FaultSchedule.from_dict(entry["schedule"])
                emit(f"shrinking {original.describe()}")
                if flock_runner is not None:
                    # Candidates keep subsets of the violator's faults:
                    # one resident template, pre-dumped at its fault
                    # instants, serves every replay.
                    flock_runner.ensure_template(original)
                    predicate = flock_runner.violates
                elif runner is not None:
                    # Every shrink candidate shares the violator's
                    # prefix: always worth a reference image set.
                    runner.ensure_images(original, force=True)
                    predicate = runner.violates
                else:
                    predicate = lambda s: schedule_violates(config, s)  # noqa: E731
                result: ShrinkResult = shrink_schedule(
                    original,
                    violates=predicate,
                    horizon=config.horizon,
                    max_replays=SHRINK_MAX_REPLAYS)
                if result.violated:
                    emit(f"  -> {result.schedule.describe()} "
                         f"({result.replays} replays, "
                         f"{result.cache_hits} memo hits)")
                    shrunk.append({"original": original.label,
                                   "schedule": result.schedule.to_dict(),
                                   "replays": result.replays,
                                   "cache_hits": result.cache_hits})
    finally:
        if cleanup_root is not None:
            import shutil
            shutil.rmtree(cleanup_root, ignore_errors=True)

    warm_stats = None
    if fabric_stats is not None:
        warm_stats = fabric_stats
        emit(f"fabric: {fabric_stats['shards']} shards over "
             f"{len(fabric_stats['workers'])} workers, "
             f"{fabric_stats['steals']} steals, "
             f"{fabric_stats['requeues']} requeues, "
             f"{fabric_stats['recovered_shards']} recovered from journal")
    elif flock_runner is not None:
        warm_stats = flock_runner.stats()
        warm_stats["mode"] = "flock"
        warm_stats["fork_batch"] = batch
        if builder is not None:
            warm_stats["sets_built"] = builder.sets_built
            warm_stats["image_build_seconds"] = round(
                builder.build_seconds, 6)
        if workers is not None and workers > 1:
            warm_stats["worker_flock_runs"] = sum(
                1 for r in results if r.get("flock"))
        emit(f"flock: {flock_runner.flock_runs} forked / "
             f"{flock_runner.cold_runs} cold coordinator runs, "
             f"{flock_runner.templates_built} templates "
             f"({flock_runner.fork_seconds:.2f}s forking)")
    elif runner is not None:
        warm_stats = runner.stats()
        if workers is not None and workers > 1:
            warm_stats["worker_warm_runs"] = sum(
                1 for r in results if r.get("warm"))
        emit(f"warmstart: {runner.warm_runs} warm / {runner.cold_runs} cold "
             f"coordinator runs, {runner.sets_built} image sets "
             f"({runner.build_seconds:.2f}s building)")

    return AuditReport(config=config, schedules_run=len(schedules),
                       violations=violations, errors=errors, shrunk=shrunk,
                       wall_seconds=time.monotonic() - start,
                       warmstart=warm_stats)


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
def write_artifact(report: AuditReport, path: str) -> None:
    """Serialize a campaign report as a replayable JSON artifact."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_artifact(path: str) -> AuditReport:
    """Load a campaign artifact written by :func:`write_artifact`."""
    with open(path, "r", encoding="utf-8") as fh:
        return AuditReport.from_dict(json.load(fh))


def artifact_schedules(report: AuditReport) -> List[FaultSchedule]:
    """The replayable schedules of an artifact: every shrunk minimal
    counterexample, plus the raw violators that have no shrunk form."""
    shrunk_labels = {entry["original"] for entry in report.shrunk}
    schedules = [FaultSchedule.from_dict(entry["schedule"])
                 for entry in report.shrunk]
    schedules += [FaultSchedule.from_dict(entry["schedule"])
                  for entry in report.violations
                  if entry["schedule"]["label"] not in shrunk_labels]
    return schedules


def format_audit_report(report: AuditReport) -> str:
    """Human-readable campaign summary."""
    lines = [
        f"audit campaign: scheme={report.config.scheme} "
        f"seed={report.config.seed} schedules={report.schedules_run} "
        f"({report.wall_seconds:.1f}s)",
    ]
    if report.clean:
        lines.append("  PASS: no invariant violations")
        return "\n".join(lines)
    for entry in report.violations:
        sched = FaultSchedule.from_dict(entry["schedule"])
        lines.append(f"  VIOLATION {sched.describe()}")
        for finding in entry["findings"][:3]:
            f = AuditFinding.from_dict(finding)
            lines.append(f"    {f.describe()}")
    for entry in report.shrunk:
        sched = FaultSchedule.from_dict(entry["schedule"])
        lines.append(f"  SHRUNK {entry['original']} -> {sched.describe()} "
                     f"[{entry['replays']} replays]")
    for entry in report.errors:
        sched = FaultSchedule.from_dict(entry["schedule"])
        lines.append(f"  ERROR {sched.describe()}: {entry['error']}")
    return "\n".join(lines)
