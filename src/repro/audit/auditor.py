"""Online invariant auditing: checkers wired into a running simulation.

The :class:`OnlineAuditor` subscribes to a system's
:class:`~repro.sim.trace.TraceRecorder` and runs the invariant checkers
of :mod:`repro.analysis.invariants` at every protocol event where the
paper's properties must hold:

* ``tb.establish.done`` — once *every* in-service process has committed
  a stable checkpoint for an epoch, that epoch's line is the hardware
  recovery line: it must be consistent, recoverable, and conservative.
* ``recovery.hardware.start`` — the exact line the coordinator picked
  to restore is checked before the rollback happens.
* ``recovery.hardware.done`` / ``recovery.software.done`` /
  ``confidence.clean`` — the live global state is checked at each
  recovery completion and each validation commit (with in-flight and
  buffered messages exempted).

Every failure is captured as an :class:`AuditFinding` carrying the
violations *and* a per-process summary of the offending global-state
line; in fail-fast mode the finding is also raised as
:class:`~repro.errors.AuditViolation`, aborting the simulation at the
first inconsistent instant.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.global_state import ProcessView, live_line, stable_line
from ..analysis.invariants import (
    Violation,
    check_live_system,
    check_live_topology,
    check_system_line,
    check_topology_system_line,
    summarize_violations,
)
from ..errors import AuditViolation
from ..types import ProcessId

#: Live-state hook categories: instants where the healthy protocol
#: guarantees a consistent live global state.
LIVE_HOOKS = ("recovery.hardware.done", "recovery.software.done",
              "confidence.clean")

#: How many epochs behind the newest commit a never-completed epoch is
#: kept pending before being abandoned (a crashed node may simply never
#: commit it).
PENDING_WINDOW = 4


def _view_summary(view: ProcessView) -> Dict:
    """Compact, JSON-safe digest of one process's view in a line."""
    mdcd = view.snapshot.mdcd
    return {
        "epoch": view.epoch,
        "kind": view.kind,
        "content": view.content,
        "taken_at": view.taken_at,
        "work_done": view.work_done,
        "dirty_bit": mdcd.dirty_bit,
        "pseudo_dirty_bit": mdcd.pseudo_dirty_bit,
        "truly_corrupt": view.truly_corrupt,
        "sent_records": len(view.snapshot.journal_sent),
        "recv_records": len(view.snapshot.journal_recv),
        "unacked": sorted(m.dedup_key for m in view.snapshot.unacked),
    }


def line_summary(line: Dict[ProcessId, ProcessView]) -> Dict[str, Dict]:
    """Per-process digest of a global-state line (finding attachment)."""
    return {str(pid): _view_summary(view) for pid, view in line.items()}


@dataclasses.dataclass
class AuditFinding:
    """One invariant failure observed during a run."""

    time: float
    hook: str
    epoch: Optional[int]
    violations: List[Violation]
    line: Dict[str, Dict] = dataclasses.field(default_factory=dict)

    def summary(self) -> Dict[str, int]:
        """Violation counts by kind."""
        return summarize_violations(self.violations)

    def to_dict(self) -> Dict:
        return {
            "time": self.time,
            "hook": self.hook,
            "epoch": self.epoch,
            "violations": [dataclasses.asdict(v) for v in self.violations],
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AuditFinding":
        return cls(
            time=float(data["time"]),
            hook=str(data["hook"]),
            epoch=(int(data["epoch"]) if data.get("epoch") is not None
                   else None),
            violations=[Violation(kind=v["kind"], detail=v["detail"],
                                  message_key=v.get("message_key"),
                                  process=v.get("process"))
                        for v in data.get("violations", ())],
            line=dict(data.get("line", {})))

    def describe(self) -> str:
        """One-line human summary."""
        counts = ", ".join(f"{kind}×{n}" for kind, n in
                           sorted(self.summary().items()))
        at = f"epoch {self.epoch}" if self.epoch is not None else "live state"
        return f"t={self.time:.3f} {self.hook} ({at}): {counts}"


class OnlineAuditor:
    """Runs the invariant checkers at protocol events of one system.

    Attach before ``system.run()``; call :meth:`finalize` after the run
    for the end-of-run oracles.  Findings accumulate in
    :attr:`findings`; with ``fail_fast`` the first finding raises
    :class:`~repro.errors.AuditViolation` (the finding is recorded
    first, so callers can catch and still read it).
    """

    def __init__(self, system, fail_fast: bool = False,
                 include_ground_truth: bool = True) -> None:
        self.system = system
        self.fail_fast = fail_fast
        self.include_ground_truth = include_ground_truth
        self.pseudo_conservatism = system.config.scheme.uses_modified_mdcd
        # Non-paper topologies audit through the N-component checkers;
        # the paper shape keeps the historical specialised path.
        topology = getattr(system, "topology", None)
        self._topology = (topology if topology is not None
                          and not topology.is_paper else None)
        self.findings: List[AuditFinding] = []
        self.epochs_checked = 0
        self.live_checks = 0
        self._pending_epochs: set = set()
        self._checked_epochs: set = set()
        self._max_epoch_seen = -1
        # Subscribe the bound method and remember it (not the closure
        # subscribe() returns) so auditors pickle into warm-start images.
        self._listener = self._on_record
        system.trace.subscribe(self._listener)
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def violated(self) -> bool:
        """Whether any finding was recorded."""
        return bool(self.findings)

    def _report(self, finding: AuditFinding) -> None:
        self.findings.append(finding)
        if self.fail_fast:
            raise AuditViolation(
                f"audit failed: {finding.describe()}",
                violations=finding.violations, finding=finding)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _on_record(self, rec) -> None:
        if rec.category == "tb.establish.done":
            epoch = rec.data.get("epoch")
            if epoch is not None and epoch not in self._checked_epochs:
                self._pending_epochs.add(epoch)
                self._max_epoch_seen = max(self._max_epoch_seen, epoch)
            self._drain_pending(rec.time)
        elif rec.category == "recovery.hardware.start":
            epoch = rec.data.get("epoch")
            if epoch is not None:
                self._check_stable_epoch(rec.time, epoch,
                                         hook="recovery.hardware.start")
        elif rec.category in LIVE_HOOKS:
            self._check_live(rec.time, hook=rec.category)

    def _drain_pending(self, now: float) -> None:
        for epoch in sorted(self._pending_epochs):
            if self._line_complete(epoch):
                self._pending_epochs.discard(epoch)
                self._checked_epochs.add(epoch)
                self._check_stable_epoch(now, epoch,
                                         hook="tb.establish.done")
            elif epoch < self._max_epoch_seen - PENDING_WINDOW:
                # Abandoned: some process (crashed at the time) never
                # committed this epoch, and the system has moved on.
                self._pending_epochs.discard(epoch)

    def _line_complete(self, epoch: int) -> bool:
        for proc in self.system.process_list():
            if proc.deposed:
                continue
            if proc.node.stable.at_epoch(proc.process_id, epoch) is None:
                return False
        return True

    def _check_stable_epoch(self, now: float, epoch: int, hook: str) -> None:
        line = stable_line(self.system, epoch=epoch)
        if not line:
            return
        self.epochs_checked += 1
        if self._topology is not None:
            violations = check_topology_system_line(
                line, self._topology,
                include_ground_truth=self.include_ground_truth,
                pseudo_conservatism=self.pseudo_conservatism)
        else:
            violations = check_system_line(
                line, include_ground_truth=self.include_ground_truth,
                pseudo_conservatism=self.pseudo_conservatism)
        if violations:
            self._report(AuditFinding(
                time=now, hook=hook, epoch=epoch, violations=violations,
                line=line_summary(line)))

    def _check_live(self, now: float, hook: str) -> None:
        self.live_checks += 1
        if self._topology is not None:
            violations = check_live_topology(
                self.system, include_ground_truth=self.include_ground_truth)
        else:
            violations = check_live_system(
                self.system, include_ground_truth=self.include_ground_truth)
        if violations:
            self._report(AuditFinding(
                time=now, hook=hook, epoch=None, violations=violations,
                line=line_summary(live_line(self.system))))

    # ------------------------------------------------------------------
    def finalize(self) -> List[AuditFinding]:
        """End-of-run oracles (final live state, any still-complete
        pending epochs); detaches the trace listener.  Idempotent."""
        if self._finalized:
            return self.findings
        self._finalized = True
        self.system.trace.unsubscribe(self._listener)
        now = self.system.sim.now
        self._drain_pending(now)
        self._check_live(now, hook="end-of-run")
        return self.findings

    def stats(self) -> Dict[str, int]:
        """Counters for reports."""
        return {"epochs_checked": self.epochs_checked,
                "live_checks": self.live_checks,
                "findings": len(self.findings)}
