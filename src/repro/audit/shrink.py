"""Counterexample shrinking: reduce a violating schedule to a minimum.

Given a schedule that violates (per a caller-supplied ``violates``
predicate — in the campaign, "rebuild the system, replay, audit") the
shrinker searches for a *smaller* schedule that still violates, along
two axes in order:

1. **Fewest faults** — classic ddmin over the combined fault list:
   try dropping halves, then quarters, ... then single faults.
2. **Simplest faults** — drop ``deactivate_at`` windows (a fault that
   never deactivates is a simpler description).
3. **Latest injection times** — per surviving fault, binary-search the
   latest time (on a coarse grid) at which the violation still occurs;
   later injection means less of the run is fault-affected, so the
   counterexample isolates the sensitive instant.

Every candidate evaluation is one full deterministic replay, so the
total is bounded by ``max_replays``; the search is greedy and keeps the
last violating schedule seen, so interruption at the budget still
returns a valid (if not minimal) counterexample.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from .schedule import CrashSpec, FaultSchedule, SoftwareFaultSpec

#: Granularity of the latest-time binary search, in simulated seconds.
TIME_GRID = 1.0


@dataclasses.dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    schedule: FaultSchedule
    replays: int
    #: Whether the *input* schedule violated at all (when ``False`` the
    #: schedule is returned untouched — nothing to shrink).
    violated: bool
    #: Candidate evaluations answered from the verdict memo instead of
    #: a replay (ddmin restarts and ``_push_time`` revisit identical
    #: fault lists; hits spend none of the replay budget).
    cache_hits: int = 0

    def to_dict(self) -> dict:
        return {"schedule": self.schedule.to_dict(),
                "replays": self.replays, "violated": self.violated,
                "cache_hits": self.cache_hits}


class _Budget:
    """Replay counter with a hard cap and a verdict memo.

    ``violates`` is deterministic per canonical schedule, so a verdict,
    once paid for, is reused for free: repeat candidates (the ddmin
    sweep restarts, ``_simplify_windows`` re-proposing a ddmin result,
    ``_push_time`` landing on an already-tried grid point) neither
    replay nor spend budget — and stay answerable after exhaustion.
    """

    def __init__(self, violates: Callable[[FaultSchedule], bool],
                 max_replays: int) -> None:
        self._violates = violates
        self.max_replays = max_replays
        self.replays = 0
        self.cache_hits = 0
        self._memo: dict = {}

    @property
    def exhausted(self) -> bool:
        return self.replays >= self.max_replays

    def check(self, schedule: FaultSchedule) -> bool:
        key = schedule.to_json()
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        if self.exhausted:
            return False
        self.replays += 1
        verdict = bool(self._violates(schedule))
        self._memo[key] = verdict
        return verdict


def _faults_of(schedule: FaultSchedule) -> List:
    """The combined, ordered fault list (software first)."""
    return list(schedule.software) + list(schedule.crashes)


def _with_fault_list(schedule: FaultSchedule, faults: List) -> FaultSchedule:
    software = tuple(f for f in faults if isinstance(f, SoftwareFaultSpec))
    crashes = tuple(f for f in faults if isinstance(f, CrashSpec))
    return schedule.with_faults(software, crashes, origin="shrunk")


def _ddmin(schedule: FaultSchedule, budget: _Budget) -> FaultSchedule:
    """Minimize the fault list: greedy subset removal (ddmin)."""
    faults = _faults_of(schedule)
    chunk = max(1, len(faults) // 2)
    while len(faults) > 1 and not budget.exhausted:
        removed_any = False
        start = 0
        while start < len(faults) and not budget.exhausted:
            candidate = faults[:start] + faults[start + chunk:]
            if candidate and budget.check(_with_fault_list(schedule, candidate)):
                faults = candidate
                removed_any = True
                # restart the sweep at this position with the same chunk
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        if not removed_any:
            chunk = max(1, chunk // 2)
    return _with_fault_list(schedule, faults)


def _simplify_windows(schedule: FaultSchedule, budget: _Budget) -> FaultSchedule:
    """Drop software-fault deactivation windows where possible."""
    current = schedule
    for i, spec in enumerate(current.software):
        if spec.deactivate_at is None or budget.exhausted:
            continue
        software = list(current.software)
        software[i] = dataclasses.replace(spec, deactivate_at=None)
        candidate = current.with_faults(tuple(software), current.crashes,
                                        origin="shrunk")
        if budget.check(candidate):
            current = candidate
    return current


def _push_time(schedule: FaultSchedule, index: int, kind: str,
               horizon: float, budget: _Budget) -> FaultSchedule:
    """Binary-search the latest violating injection time of one fault."""

    def at_time(sched: FaultSchedule, t: float) -> FaultSchedule:
        if kind == "software":
            software = list(sched.software)
            spec = software[index]
            shift = t - spec.activate_at
            deactivate = (spec.deactivate_at + shift
                          if spec.deactivate_at is not None else None)
            software[index] = dataclasses.replace(
                spec, activate_at=t, deactivate_at=deactivate)
            return sched.with_faults(tuple(software), sched.crashes,
                                     origin="shrunk")
        crashes = list(sched.crashes)
        crashes[index] = dataclasses.replace(crashes[index], crash_at=t)
        return sched.with_faults(sched.software, tuple(crashes),
                                 origin="shrunk")

    current = schedule
    spec = (current.software[index] if kind == "software"
            else current.crashes[index])
    lo = spec.activate_at if kind == "software" else spec.crash_at
    hi = horizon - TIME_GRID
    # invariant: the fault at time `lo` violates; search (lo, hi].
    while hi - lo > TIME_GRID and not budget.exhausted:
        mid = (lo + hi) / 2.0
        candidate = at_time(current, mid)
        if budget.check(candidate):
            current = candidate
            lo = mid
        else:
            hi = mid
    return current


def shrink_schedule(schedule: FaultSchedule,
                    violates: Callable[[FaultSchedule], bool],
                    horizon: float,
                    max_replays: int = 60,
                    push_times: bool = True) -> ShrinkResult:
    """Shrink ``schedule`` to a minimal still-violating counterexample.

    ``violates`` must be deterministic for a given schedule (the
    campaign's replay is).  The input schedule is re-checked first; if
    it does not violate (flaky caller) it is returned unchanged with
    ``violated=False``.
    """
    budget = _Budget(violates, max_replays)
    if not budget.check(schedule):
        return ShrinkResult(schedule=schedule, replays=budget.replays,
                            violated=False, cache_hits=budget.cache_hits)

    current = _ddmin(schedule, budget)
    current = _simplify_windows(current, budget)
    if push_times:
        for i in range(len(current.software)):
            current = _push_time(current, i, "software", horizon, budget)
        for i in range(len(current.crashes)):
            current = _push_time(current, i, "crash", horizon, budget)
    return ShrinkResult(schedule=current, replays=budget.replays,
                        violated=True, cache_hits=budget.cache_hits)
