"""Adversarial fault/timing schedules.

A :class:`FaultSchedule` is the unit of work of an audit campaign: a
named, fully serializable description of *when the world misbehaves* —
software-fault activation windows, node crashes, and optional timing
overrides (clock-skew extremes) — that can be armed on any built
:class:`~repro.coordination.scheme.System` and replayed bit-for-bit
from its JSON form.  Schedules carry their own ``system_seed`` so a
shrunk or archived schedule reproduces the exact run that violated.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

from ..app.faults import HardwareFaultPlan, SoftwareFaultPlan
from ..errors import ConfigurationError

#: Node ids of the paper's three-process system, in role order.
SYSTEM_NODES = ("N1a", "N1b", "N2")

#: Timing-override keys a schedule may carry (applied to the
#: :class:`~repro.coordination.scheme.SystemConfig` at build time).
TIMING_OVERRIDE_KEYS = ("clock_delta", "clock_rho", "tb_interval")


@dataclasses.dataclass(frozen=True)
class SoftwareFaultSpec:
    """Activation (and optional deactivation) of the latent defect in
    one guarded component (component 1 in the paper's shape)."""

    activate_at: float
    deactivate_at: Optional[float] = None
    component: int = 1

    def plan(self) -> SoftwareFaultPlan:
        """The injectable plan."""
        return SoftwareFaultPlan(activate_at=self.activate_at,
                                 deactivate_at=self.deactivate_at,
                                 component=self.component)

    def to_dict(self) -> Dict:
        data = {"activate_at": self.activate_at,
                "deactivate_at": self.deactivate_at}
        if self.component != 1:
            # Omitted at the default so pre-topology artifacts replay
            # (and hash) identically.
            data["component"] = self.component
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SoftwareFaultSpec":
        return cls(activate_at=float(data["activate_at"]),
                   deactivate_at=(float(data["deactivate_at"])
                                  if data.get("deactivate_at") is not None
                                  else None),
                   component=int(data.get("component", 1)))


@dataclasses.dataclass(frozen=True)
class CrashSpec:
    """A fail-stop crash of one node, repaired after ``repair_time``."""

    node_id: str
    crash_at: float
    repair_time: float = 2.0

    def plan(self) -> HardwareFaultPlan:
        """The injectable plan."""
        return HardwareFaultPlan(node_id=self.node_id, crash_at=self.crash_at,
                                 repair_time=self.repair_time)

    def to_dict(self) -> Dict:
        return {"node_id": self.node_id, "crash_at": self.crash_at,
                "repair_time": self.repair_time}

    @classmethod
    def from_dict(cls, data: Dict) -> "CrashSpec":
        return cls(node_id=str(data["node_id"]),
                   crash_at=float(data["crash_at"]),
                   repair_time=float(data.get("repair_time", 2.0)))


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """One adversarial schedule: faults plus timing overrides.

    ``label`` names the schedule inside its campaign (and appears in
    reports and artifacts); ``origin`` says how it was produced
    (``"boundary"`` — systematic enumeration from a reference timeline,
    ``"random"`` — seeded randomized generation, ``"shrunk"`` — output
    of the delta-debugging shrinker, ``"replay"`` — loaded from an
    artifact).  ``system_seed`` seeds the system the schedule runs
    against — it is part of the schedule precisely so that shrinking
    and replay reproduce the identical run.
    """

    label: str
    system_seed: int
    software: Tuple[SoftwareFaultSpec, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()
    #: Optional timing overrides (see :data:`TIMING_OVERRIDE_KEYS`).
    overrides: Tuple[Tuple[str, float], ...] = ()
    origin: str = "random"

    def __post_init__(self) -> None:
        for key, _value in self.overrides:
            if key not in TIMING_OVERRIDE_KEYS:
                raise ConfigurationError(
                    f"unknown timing override {key!r} in schedule "
                    f"{self.label!r} (known: {TIMING_OVERRIDE_KEYS})")

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        """Total number of injected faults."""
        return len(self.software) + len(self.crashes)

    def override_map(self) -> Dict[str, float]:
        """The timing overrides as a dict."""
        return dict(self.overrides)

    def arm(self, system) -> None:
        """Arm every fault of this schedule on a built system."""
        for spec in self.software:
            system.inject_software_fault(spec.plan())
        for spec in self.crashes:
            system.inject_crash(spec.plan())

    def with_faults(self, software: Tuple[SoftwareFaultSpec, ...],
                    crashes: Tuple[CrashSpec, ...],
                    origin: Optional[str] = None) -> "FaultSchedule":
        """Same schedule, different fault set (the shrinker's move)."""
        return dataclasses.replace(self, software=tuple(software),
                                   crashes=tuple(crashes),
                                   origin=origin or self.origin)

    def describe(self) -> str:
        """One-line human summary."""
        parts: List[str] = []
        for spec in self.software:
            window = (f"..{spec.deactivate_at:.2f}"
                      if spec.deactivate_at is not None else "")
            comp = f"[c{spec.component}]" if spec.component != 1 else ""
            parts.append(f"sw{comp}@{spec.activate_at:.2f}{window}")
        for spec in self.crashes:
            parts.append(f"crash:{spec.node_id}@{spec.crash_at:.2f}"
                         f"+{spec.repair_time:.1f}")
        for key, value in self.overrides:
            parts.append(f"{key}={value:g}")
        return f"{self.label}[{' '.join(parts) or 'fault-free'}]"

    # ------------------------------------------------------------------
    # serialization (the replayable-artifact format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "system_seed": self.system_seed,
            "software": [s.to_dict() for s in self.software],
            "crashes": [c.to_dict() for c in self.crashes],
            "overrides": {k: v for k, v in self.overrides},
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSchedule":
        return cls(
            label=str(data["label"]),
            system_seed=int(data["system_seed"]),
            software=tuple(SoftwareFaultSpec.from_dict(s)
                           for s in data.get("software", ())),
            crashes=tuple(CrashSpec.from_dict(c)
                          for c in data.get("crashes", ())),
            overrides=tuple(sorted(
                (str(k), float(v))
                for k, v in (data.get("overrides") or {}).items())),
            origin=str(data.get("origin", "replay")),
        )

    def to_json(self) -> str:
        """Compact canonical JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))
