"""The modified MDCD error-containment algorithms (paper Section 3 and
Appendix A, Figs. 8-10).

Differences from the original protocol, all in support of coordination
with the adapted TB protocol:

* ``P1_act`` maintains a ``pseudo_dirty_bit`` and establishes a volatile
  *pseudo checkpoint* immediately before sending the first internal
  message after a validation, so it can participate in stable checkpoint
  lines (its actual dirty bit stays constant 1).
* Type-2 checkpoint establishment is **eliminated** — the coordination
  makes error recovery independent of Type-2 checkpoints (Fig. 3).
* "passed AT" handling is gated by the piggybacked stable-checkpoint
  epoch: the dirty (or pseudo dirty) bit is reset iff ``m.Ndc`` equals
  the local ``Ndc``.
* During a TB blocking period application messages are buffered (the
  host does this), but "passed AT" notifications are still monitored so
  an in-progress stable establishment can react to a confidence change.

Checkpoint-ordering note: Appendix A increments ``msg_SN`` *before* the
pseudo-checkpoint test and updates ``msg_SN_P1act`` *before* the Type-1
checkpoint.  We snapshot *before* either update so that a restored
process has not yet allocated the sequence number of (or recorded the
receipt of) a message the restored state does not reflect — the
"immediately before" semantics of Section 2.1.  DESIGN.md records this
as a deliberate deviation in bookkeeping order only.
"""

from __future__ import annotations

from typing import List, Optional

from ..app.acceptance import AcceptanceTest
from ..app.workload import Action
from ..messages.message import Message
from ..types import CheckpointKind, MessageKind, ProcessId, Role
from .base import MdcdEngineBase


class ModifiedActiveEngine(MdcdEngineBase):
    """``P1_act`` under the modified protocol (Appendix A, Fig. 8)."""

    variant = "mdcd-modified"

    def __init__(self, process, at: AcceptanceTest,
                 peer: ProcessId, shadow: ProcessId) -> None:
        super().__init__(process, at=at, ndc_gating=True)
        self.peer = peer
        self.shadow = shadow
        process.mdcd.dirty_bit = 1        # constant during guarded operation
        process.mdcd.pseudo_dirty_bit = 0
        self.trace("confidence.dirty", bit="dirty", reason="guarded-active")

    def on_send_external(self, action: Action) -> None:
        """Fig. 8: AT-test; on success reset the pseudo dirty bit and
        broadcast the validation with the local Ndc piggybacked."""
        payload = self.process.component.produce_external(action.stimulus)
        if not self.run_acceptance_test(payload):
            self.process.request_software_recovery(
                Message(kind=MessageKind.EXTERNAL, sender=self.process.process_id,
                        receiver=ProcessId("DEVICE"), payload=payload,
                        corrupt=payload.corrupt,
                        msg_id=self.process.msg_ids.allocate()))
            return
        self.set_pseudo_dirty(0, reason="own-at")
        self.process.sn.allocate()
        self.validate_knowledge(p1act_sn=self.process.sn.current)
        self.process.send_external(payload, validated=True)
        self.process.send_passed_at([self.shadow, self.peer],
                                    msg_sn=self.process.sn.current,
                                    ndc=self.process.current_ndc())
        self._notify_validation(type2=True)

    def on_send_internal(self, action: Action) -> None:
        """Fig. 8: establish the pseudo checkpoint before the first
        internal send of a suspicion window, then send flagged dirty."""
        if self.mdcd.pseudo_dirty_bit == 0:
            # First internal send since the last validation: establish
            # the pseudo checkpoint *before* the state's suspicion window
            # opens — before the production itself (a faulty version
            # contaminates the state while computing the message, and
            # the pseudo checkpoint must anchor the last *validated*
            # state) and before the sequence number is allocated (see
            # the module docstring).
            self.process.take_volatile_checkpoint(
                CheckpointKind.PSEUDO, meta={"trigger": "first-internal-send"})
        payload = self.process.component.produce_internal(action.stimulus)
        if self.mdcd.pseudo_dirty_bit == 0:
            self.set_pseudo_dirty(1, reason="internal-send")
        sn = self.process.sn.allocate()
        self.process.send_internal(payload, [self.peer], sn=sn, dirty_bit=1,
                                   validated=False,
                                   ndc=self.process.current_ndc())

    def on_passed_at(self, message: Message) -> None:
        """Fig. 8: reset the pseudo dirty bit iff the Ndc matches.

        Conservatism guard (a deviation the schedule audit forced — see
        DESIGN.md): the notification certifies our messages only up to
        its ``msg_SN``.  If we have allocated newer sequence numbers the
        current state already depends on a produce the AT has not seen
        (the contaminating send may literally still be in flight to
        ``P2``), so the pseudo bit must stay set: resetting it here
        would let the adapted TB write a ``current-state`` stable
        checkpoint of an unvalidated — possibly contaminated — state.
        The journals are still updated up to the certified bound.
        """
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        if (message.sn is not None and self.mdcd.pseudo_dirty_bit == 1
                and message.sn < self.process.sn.current):
            self.process.counters.bump("passed_at.stale_sn")
            self.validate_knowledge(p1act_sn=message.sn)
            return
        self.set_pseudo_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        self._notify_validation(type2=True)

    def on_incoming_app(self, message: Message) -> None:
        """Apply P2's message (no checkpoint on receipt)."""
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class ModifiedShadowEngine(MdcdEngineBase):
    """``P1_sdw`` under the modified protocol (Appendix A, Fig. 9).

    Identical to the original shadow except that validation no longer
    establishes a Type-2 checkpoint and "passed AT" handling is
    ``Ndc``-gated.
    """

    variant = "mdcd-modified"

    def __init__(self, process) -> None:
        super().__init__(process, at=None, ndc_gating=True)

    def _suppress(self, action: Action, kind: MessageKind) -> None:
        """Log the would-be message instead of transmitting it."""
        produce = (self.process.component.produce_internal
                   if kind is MessageKind.INTERNAL
                   else self.process.component.produce_external)
        payload = produce(action.stimulus)
        sn = self.process.sn.allocate()
        receiver = ProcessId(Role.PEER_2.value) if kind is MessageKind.INTERNAL \
            else ProcessId("DEVICE")
        suppressed = Message(kind=kind, sender=self.process.process_id,
                             receiver=receiver, payload=payload, sn=sn,
                             dirty_bit=self.mdcd.dirty_bit,
                             corrupt=payload.corrupt,
                             msg_id=self.process.msg_ids.allocate())
        self.process.msg_log.append(sn, suppressed)
        self.process.counters.bump("suppressed")

    def on_send_internal(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.INTERNAL)

    def on_send_external(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.EXTERNAL)

    def on_passed_at(self, message: Message) -> None:
        """Fig. 9: iff the Ndc matches - update VR, reclaim the log,
        clean the dirty bit; no Type-2 establishment."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        if message.sn is not None:
            self.mdcd.vr = message.sn
            self.process.msg_log.reclaim_up_to(message.sn)
        was_dirty = self.mdcd.dirty_bit == 1
        self.set_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        self._notify_validation(type2=was_dirty)

    def on_incoming_app(self, message: Message) -> None:
        """Type-1 checkpoint before the first contaminating receipt,
        then apply."""
        if message.dirty_bit == 1 and self.mdcd.dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
            self.set_dirty(1, reason="dirty-receive")
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class ModifiedPeerEngine(MdcdEngineBase):
    """``P2`` under the modified protocol (Appendix A, Fig. 10)."""

    variant = "mdcd-modified"

    def __init__(self, process, at: AcceptanceTest,
                 component1_recipients: Optional[List[ProcessId]] = None) -> None:
        super().__init__(process, at=at, ndc_gating=True)
        self.component1_recipients: List[ProcessId] = list(
            component1_recipients
            or [ProcessId(Role.ACTIVE_1.value), ProcessId(Role.SHADOW_1.value)])

    def on_send_external(self, action: Action) -> None:
        """Fig. 10: AT-test while dirty; on success clean, advance the
        valid bound and broadcast with the local Ndc; no Type-2."""
        payload = self.process.component.produce_external(action.stimulus)
        if self.mdcd.dirty_bit == 1:
            if not self.run_acceptance_test(payload):
                self.process.request_software_recovery(
                    Message(kind=MessageKind.EXTERNAL,
                            sender=self.process.process_id,
                            receiver=ProcessId("DEVICE"), payload=payload,
                            corrupt=payload.corrupt,
                            msg_id=self.process.msg_ids.allocate()))
                return
            self.set_dirty(0, reason="own-at")
            self._advance_valid_bound(self.mdcd.msg_sn_p1act)
            self.validate_knowledge(p1act_sn=self.mdcd.msg_sn_p1act)
            self.process.send_external(payload, validated=True)
            self.process.send_passed_at(
                list(self.component1_recipients),
                msg_sn=self.mdcd.msg_sn_p1act, ndc=self.process.current_ndc())
            self._notify_validation(type2=True)
        else:
            self.process.send_external(payload, validated=True)

    def on_send_internal(self, action: Action) -> None:
        """Multicast to component 1 with dirty bit and Ndc piggybacked."""
        payload = self.process.component.produce_internal(action.stimulus)
        dirty = self.mdcd.dirty_bit
        self.process.send_internal(payload, list(self.component1_recipients),
                                   sn=None, dirty_bit=dirty,
                                   validated=(dirty == 0),
                                   ndc=self.process.current_ndc())

    def on_passed_at(self, message: Message) -> None:
        """Fig. 10: iff the Ndc matches - record the bound, advance the
        valid-bound register, clean the dirty bit."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        if message.sn is not None:
            self.mdcd.msg_sn_p1act = message.sn
        self._advance_valid_bound(message.sn)
        was_dirty = self.mdcd.dirty_bit == 1
        self.set_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        self._notify_validation(type2=was_dirty)

    def on_incoming_app(self, message: Message) -> None:
        # A P1_act message whose sequence number is already covered by a
        # validation (its AT ran after it was sent, and the notification
        # overtook it through the blocking buffer) is *valid at
        # receipt*: applying it does not contaminate the state.  The
        # paper's synchronous pseudocode never faces this interleaving;
        # the valid-bound register makes the "not-yet-validated message"
        # test of Section 2.1 exact.
        """Fig. 10 receive with the valid-bound refinement (see below)."""
        validated_at_receipt = (message.sn is not None
                                and self.mdcd.vr is not None
                                and message.sn <= self.mdcd.vr)
        contaminating = message.dirty_bit == 1 and not validated_at_receipt
        if contaminating and self.mdcd.dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
            self.set_dirty(1, reason="dirty-receive")
        if message.sn is not None:
            self.mdcd.msg_sn_p1act = message.sn
        self.process.apply_app_message(
            message,
            validated=(message.dirty_bit in (0, None)) or validated_at_receipt)

    def _advance_valid_bound(self, sn) -> None:
        """Track the highest validated ``P1_act`` sequence number (P2's
        analogue of the shadow's valid message register)."""
        if sn is not None and (self.mdcd.vr is None or sn > self.mdcd.vr):
            self.mdcd.vr = sn
